//! Integration tests pinning the paper's headline claims on small
//! instances of the workloads (the bench binaries run the full-size
//! versions).

use slo::analysis::{analyze_program, correlation, relative_hotness, LegalityConfig, WeightScheme};
use slo::pipeline::{collect_profile, compile, evaluate, PipelineConfig};
use slo::vm::VmOptions;
use slo_workloads::{census, mcf, CENSUS_SPECS};

/// Table 1: every census benchmark reproduces its strict/relaxed counts.
#[test]
fn table1_census_counts_reproduce() {
    for spec in &CENSUS_SPECS {
        let p = census::generate(spec, 1);
        let strict = analyze_program(&p, &LegalityConfig::default());
        assert_eq!(strict.num_types(), spec.types, "{}: types", spec.name);
        assert_eq!(strict.num_legal(), spec.legal, "{}: legal", spec.name);
        let relaxed = analyze_program(
            &p,
            &LegalityConfig {
                relax_cast_addr: true,
                ..Default::default()
            },
        );
        assert_eq!(relaxed.num_legal(), spec.relax, "{}: relax", spec.name);
    }
}

/// Table 1's punchline: relaxation widens legality a lot, but the set of
/// *transformed* types stays exactly the same.
#[test]
fn relaxation_does_not_change_transformed_set() {
    let p = mcf::build_config(mcf::McfConfig {
        n: 800,
        iters: 30,
        skew: 0,
    });
    let strict =
        compile(&p, &WeightScheme::Ispbo, &PipelineConfig::default()).expect("strict compile");
    let relaxed = compile(
        &p,
        &WeightScheme::Ispbo,
        &PipelineConfig {
            legality: LegalityConfig {
                relax_cast_addr: true,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("relaxed compile");
    assert_eq!(
        strict.plan.num_transformed(),
        relaxed.plan.num_transformed(),
        "the number of transformed types must remain constant (§2.2)"
    );
}

/// Table 2: our measured PBO hotness column matches the paper's, and the
/// static schemes are ranked sensibly against it.
#[test]
fn table2_hotness_shape() {
    let p = mcf::build_config(mcf::McfConfig {
        n: 1_200,
        iters: 60,
        skew: 0,
    });
    let node = p.types.record_by_name("node").expect("node");
    let fb = collect_profile(&p).expect("profile");
    let pbo = relative_hotness(&p, node, &WeightScheme::Pbo(&fb));
    let r_paper = correlation(&pbo, &mcf::PAPER_PBO_HOTNESS);
    assert!(r_paper > 0.95, "PBO vs paper column: {r_paper}");

    let spbo = relative_hotness(&p, node, &WeightScheme::Spbo);
    let ispbo = relative_hotness(&p, node, &WeightScheme::Ispbo);
    let r_spbo = correlation(&pbo, &spbo);
    let r_ispbo = correlation(&pbo, &ispbo);
    assert!(
        r_ispbo >= r_spbo - 1e-9,
        "ISPBO ({r_ispbo:.3}) must not trail SPBO ({r_spbo:.3})"
    );
    assert!(r_spbo < 0.95, "static estimates must be visibly imperfect");
}

/// Table 3 shape on small instances: the three profitable workloads all
/// gain from their transformations; the semantic guard inside `evaluate`
/// doubles as a correctness check.
#[test]
fn table3_transformations_speed_up_small_instances() {
    // mcf: splitting (small instance is L2/L3-resident, so the gain is
    // smaller than the full-size run; it must at least not regress much)
    let p = mcf::build_config(mcf::McfConfig {
        n: 3_000,
        iters: 30,
        skew: 0,
    });
    let res = compile(&p, &WeightScheme::Ispbo, &PipelineConfig::default()).expect("mcf");
    assert_eq!(res.plan.num_transformed(), 1);
    let e = evaluate(&p, &res.program, &VmOptions::default()).expect("mcf eval");
    assert!(
        e.speedup_percent() > -8.0,
        "mcf small: {:.1}%",
        e.speedup_percent()
    );

    // art: peeling must win even at small sizes (density on every pass)
    let p = slo_workloads::art::build_config(slo_workloads::art::ArtConfig {
        n: 30_000,
        passes: 6,
    });
    let res = compile(&p, &WeightScheme::Ispbo, &PipelineConfig::default()).expect("art");
    assert_eq!(res.plan.num_transformed(), 1);
    let e = evaluate(&p, &res.program, &VmOptions::default()).expect("art eval");
    assert!(
        e.speedup_percent() > 0.0,
        "art small: {:.1}%",
        e.speedup_percent()
    );
}

/// §2.4: forcing hot fields out of the root degrades performance, and
/// splitting out two hot fields is worse than one.
#[test]
fn forced_hot_split_degrades() {
    let p = mcf::build_config(mcf::McfConfig {
        n: 12_000,
        iters: 25,
        skew: 0,
    });
    let base_plan = slo_transform::forced_split(
        &p,
        "node",
        &["number", "sibling_prev", "firstout", "firstin"],
    )
    .expect("base plan");
    let good = slo_transform::apply_plan(&p, &base_plan).expect("good split");

    let bad_plan = slo_transform::forced_split(
        &p,
        "node",
        &[
            "number",
            "sibling_prev",
            "firstout",
            "firstin",
            "pred",
            "potential",
        ],
    )
    .expect("bad plan");
    let bad = slo_transform::apply_plan(&p, &bad_plan).expect("bad split");

    let opts = VmOptions::default();
    let e = evaluate(&good, &bad, &opts).expect("compare");
    assert!(
        e.speedup_percent() < 0.0,
        "splitting out the hottest fields must degrade: {:.1}%",
        e.speedup_percent()
    );
}

/// moldyn PBO divergence: the profiled build splits the boundary fields,
/// the static build does not (§2.3's mis-classification risk, Table 3's
/// PBO advantage).
#[test]
fn moldyn_pbo_splits_more_boundary_fields() {
    let p = slo_workloads::moldyn::build_config(slo_workloads::moldyn::MoldynConfig {
        n: 2_000,
        steps: 12,
        neighbors: 6,
    });
    let particle = p.types.record_by_name("particle").expect("particle");
    let bidx = slo_workloads::moldyn::particle_field("bflag");

    let fb = collect_profile(&p).expect("profile");
    let pbo = compile(&p, &WeightScheme::Pbo(&fb), &PipelineConfig::default()).expect("pbo");
    let ispbo = compile(&p, &WeightScheme::Ispbo, &PipelineConfig::default()).expect("ispbo");

    let splits = |plan: &slo_transform::TransformPlan| -> Vec<u32> {
        match plan.of(particle) {
            slo_transform::TypeTransform::Split { cold, .. } => cold.clone(),
            _ => vec![],
        }
    };
    let pbo_cold = splits(&pbo.plan);
    let ispbo_cold = splits(&ispbo.plan);
    assert!(
        pbo_cold.contains(&bidx),
        "PBO must split the boundary field: {pbo_cold:?}"
    );
    assert!(
        !ispbo_cold.contains(&bidx),
        "the 50% static branch heuristic must keep it hot: {ispbo_cold:?}"
    );
}

/// The advisory report carries the Figure 2 ingredients for a real
/// workload, end to end.
#[test]
fn advisor_report_end_to_end() {
    let p = mcf::build_config(mcf::McfConfig {
        n: 800,
        iters: 30,
        skew: 0,
    });
    let out = slo::vm::run(&p, &VmOptions::profiling()).expect("run");
    let scheme = WeightScheme::Pbo(&out.feedback);
    let ipa = analyze_program(&p, &LegalityConfig::default());
    let graphs = slo::analysis::affinity_graphs(&p, &scheme);
    let freqs = slo::analysis::block_frequencies(&p, &scheme);
    let counts = slo::analysis::affinity::build_field_counts(&p, &freqs);
    let dcache = slo::analysis::attribute_samples(&p, &out.feedback);
    let strides = slo::analysis::attribute_strides(&p, &out.feedback);
    let input = slo::advisor::AdvisorInput {
        prog: &p,
        ipa: &ipa,
        graphs: &graphs,
        counts: &counts,
        dcache: Some(&dcache),
        strides: Some(&strides),
        plan: None,
    };
    let report = slo::advisor::render_report(&input);
    assert!(report.contains("Type     : node"));
    assert!(report.contains("\"potential\""));
    assert!(report.contains("*unused*"), "ident must be flagged unused");
    assert!(report.contains("aff:"));
    assert!(report.contains("miss :"));
    assert!(report.contains("stride:"), "stride info must be attributed");
    // node is the hottest type: it is reported first
    let node_pos = report.find("Type     : node").expect("node");
    for other in ["arc", "basket", "network", "stats"] {
        let pos = report
            .find(&format!("Type     : {other}"))
            .expect("type present");
        assert!(node_pos < pos, "node must be first, before {other}");
    }
    // VCG output is well-formed for every type
    for rid in p.types.record_ids() {
        let vcg = slo::advisor::render_vcg(&p, rid, &graphs[&rid]);
        assert!(vcg.starts_with("graph: {"));
        assert!(vcg.trim_end().ends_with('}'));
    }
}

/// Feedback files survive serialization (the PBO use phase reads what the
/// collection phase wrote).
#[test]
fn feedback_file_roundtrip_through_text() {
    let p = mcf::build_config(mcf::McfConfig {
        n: 600,
        iters: 10,
        skew: 0,
    });
    let fb = collect_profile(&p).expect("profile");
    let text = fb.to_text();
    let back = slo::vm::Feedback::from_text(&text).expect("parse");
    assert_eq!(fb, back);
    // and the reloaded profile drives the same plan
    let plan_a = compile(&p, &WeightScheme::Pbo(&fb), &PipelineConfig::default())
        .expect("compile a")
        .plan;
    let plan_b = compile(&p, &WeightScheme::Pbo(&back), &PipelineConfig::default())
        .expect("compile b")
        .plan;
    let node = p.types.record_by_name("node").expect("node");
    assert_eq!(plan_a.of(node), plan_b.of(node));
}

/// §2.4: "The stride distance is usually a multiple of the size of the
/// underlying type... Since type sizes change during structure splitting
/// we were updating the stride distances as well." Verify the collected
/// dominant stride tracks the element size across the transformation.
#[test]
fn strides_track_element_size_across_split() {
    let p = mcf::build_config(mcf::McfConfig {
        n: 1_000,
        iters: 20,
        skew: 0,
    });
    let node = p.types.record_by_name("node").expect("node");
    let size_before = p.types.layout_of(node).size;
    assert_eq!(size_before, 120);

    let stride_of = |prog: &slo::ir::Program| -> i64 {
        let fb = collect_profile(prog).expect("profile");
        let strides = slo::analysis::attribute_strides(prog, &fb);
        // refresh1 walks a rotating window sequentially reading `pred`
        // (looked up by name: splitting reorders the field indices)
        let rid = prog.types.record_by_name("node").expect("node");
        let pred = prog
            .types
            .record(rid)
            .field_index("pred")
            .expect("pred survives the split") as u32;
        strides.get(&(rid, pred)).map(|s| s.dominant).unwrap_or(0)
    };
    assert_eq!(stride_of(&p) as u64, size_before);

    let res = compile(&p, &WeightScheme::Ispbo, &PipelineConfig::default()).expect("compile");
    let size_after = res.program.types.layout_of(node).size;
    assert!(size_after < size_before, "split must shrink the root");
    assert_eq!(
        stride_of(&res.program) as u64,
        size_after,
        "the collected stride must follow the new element size"
    );
}
