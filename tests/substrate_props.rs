//! Property-based invariants on the substrate layers: heap allocator,
//! dominators, static frequency estimation, and affinity graphs.

use proptest::prelude::*;
use slo_analysis::affinity::AffinityGraph;
use slo_analysis::freq::{estimate_static, BranchProbs};
use slo_ir::dom::DomTree;
use slo_ir::loops::LoopForest;
use slo_ir::{CmpOp, Operand, ProgramBuilder, RecordId, ScalarKind};
use slo_vm::Heap;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------
// heap

#[derive(Debug, Clone)]
enum HeapOp {
    Alloc(u64),
    FreeNth(usize),
    ReallocNth(usize, u64),
    Write(usize, u64),
}

fn heap_ops() -> impl Strategy<Value = Vec<HeapOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..512).prop_map(HeapOp::Alloc),
            any::<usize>().prop_map(HeapOp::FreeNth),
            (any::<usize>(), 1u64..512).prop_map(|(i, s)| HeapOp::ReallocNth(i, s)),
            (any::<usize>(), any::<u64>()).prop_map(|(i, v)| HeapOp::Write(i, v)),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random alloc/free/realloc/write sequences never corrupt the
    /// allocator's books, and live data stays readable.
    #[test]
    fn heap_bookkeeping_is_consistent(ops in heap_ops()) {
        let mut h = Heap::new();
        let mut live: Vec<(u64, u64, Option<u64>)> = Vec::new(); // (addr, size, written)
        for op in ops {
            match op {
                HeapOp::Alloc(sz) => {
                    let a = h.alloc(sz);
                    prop_assert!(a != 0 && a.is_multiple_of(16));
                    // no overlap with other live allocations
                    for (b, bsz, _) in &live {
                        prop_assert!(a + sz <= *b || *b + *bsz <= a,
                            "overlap: [{a}, {}) vs [{b}, {})", a + sz, b + bsz);
                    }
                    live.push((a, sz, None));
                }
                HeapOp::FreeNth(i) if !live.is_empty() => {
                    let (a, _, _) = live.remove(i % live.len());
                    h.free(a).expect("freeing a live allocation");
                    // double free must fail
                    prop_assert!(h.free(a).is_err());
                }
                HeapOp::ReallocNth(i, ns) if !live.is_empty() => {
                    let idx = i % live.len();
                    let (a, sz, w) = live[idx];
                    let na = h.realloc(a, ns).expect("realloc live");
                    // preserved prefix
                    if let Some(v) = w {
                        if sz >= 8 && ns >= 8 {
                            prop_assert_eq!(h.read_bytes(na, 8).expect("read"), v);
                        }
                    }
                    live[idx] = (na, ns, if ns >= 8 { w } else { None });
                }
                HeapOp::Write(i, v) if !live.is_empty() => {
                    let idx = i % live.len();
                    let (a, sz, _) = live[idx];
                    if sz >= 8 {
                        h.write_bytes(a, 8, v).expect("write");
                        prop_assert_eq!(h.read_bytes(a, 8).expect("read"), v);
                        live[idx].2 = Some(v);
                    }
                }
                _ => {}
            }
            prop_assert_eq!(h.live_allocs(), live.len());
            let want: u64 = live.iter().map(|(_, s, _)| s.max(&1)).sum();
            prop_assert_eq!(h.live_bytes(), want);
            prop_assert!(h.peak_live() >= h.live_bytes());
        }
    }
}

// ---------------------------------------------------------------------
// CFG analyses over randomly shaped (structured) programs

#[derive(Debug, Clone)]
enum Shape {
    Work,
    If,
    Loop(Vec<Shape>),
}

fn shape_strategy() -> impl Strategy<Value = Vec<Shape>> {
    let leaf = prop_oneof![Just(Shape::Work), Just(Shape::If)];
    prop::collection::vec(
        leaf.prop_recursive(3, 12, 4, |inner| {
            prop::collection::vec(inner, 1..4).prop_map(Shape::Loop)
        }),
        1..5,
    )
}

fn build_shaped(shapes: &[Shape]) -> slo_ir::Program {
    let mut pb = ProgramBuilder::new();
    let i64t = pb.scalar(ScalarKind::I64);
    let (rid, rty) = pb.record(
        "t",
        vec![slo_ir::Field::new("a", i64t), slo_ir::Field::new("b", i64t)],
    );
    let main = pb.declare("main", vec![], i64t);
    pb.define(main, |fb| {
        let arr = fb.alloc(rty, Operand::int(8));
        fn emit(
            fb: &mut slo_ir::FuncBuilder<'_>,
            shapes: &[Shape],
            arr: slo_ir::Reg,
            rid: RecordId,
        ) {
            for s in shapes {
                match s {
                    Shape::Work => {
                        let v = fb.load_field(arr.into(), rid, 0);
                        let n = fb.add(v.into(), Operand::int(1));
                        fb.store_field(arr.into(), rid, 0, n.into());
                    }
                    Shape::If => {
                        let v = fb.load_field(arr.into(), rid, 1);
                        let c = fb.cmp(CmpOp::Gt, v.into(), Operand::int(0));
                        fb.if_then(c.into(), |fb| {
                            fb.store_field(arr.into(), rid, 1, Operand::int(0));
                        });
                    }
                    Shape::Loop(inner) => {
                        fb.count_loop(Operand::int(4), |fb, _| {
                            emit(fb, inner, arr, rid);
                        });
                    }
                }
            }
        }
        emit(fb, shapes, arr, rid);
        fb.ret(Some(Operand::int(0)));
    });
    pb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dominator invariants: the entry dominates every reachable block,
    /// and each idom strictly dominates its block.
    #[test]
    fn dominator_invariants(shapes in shape_strategy()) {
        let p = build_shaped(&shapes);
        let main = p.main().expect("main");
        let f = p.func(main);
        let dt = DomTree::compute(f);
        for b in f.block_ids() {
            if !dt.is_reachable(b) {
                continue;
            }
            prop_assert!(dt.dominates(slo_ir::BlockId(0), b));
            if let Some(idom) = dt.idom(b) {
                prop_assert!(dt.dominates(idom, b));
                prop_assert!(idom != b);
            }
        }
    }

    /// Loop-forest invariants: headers dominate their reducible loops,
    /// nesting depths are consistent with the parent chain.
    #[test]
    fn loop_forest_invariants(shapes in shape_strategy()) {
        let p = build_shaped(&shapes);
        let main = p.main().expect("main");
        let f = p.func(main);
        let lf = LoopForest::compute(f);
        let dt = DomTree::compute(f);
        prop_assert!(lf.verify_against(f, &dt));
        for (_, l) in lf.iter() {
            match l.parent {
                Some(par) => prop_assert_eq!(l.depth, lf.get(par).depth + 1),
                None => prop_assert_eq!(l.depth, 1),
            }
            prop_assert!(l.blocks.contains(&l.header));
        }
    }

    /// Flow conservation of the static frequency estimate: for every
    /// block with successors, outgoing edge frequency sums to the block
    /// frequency.
    #[test]
    fn static_freq_flow_conservation(shapes in shape_strategy()) {
        let p = build_shaped(&shapes);
        let main = p.main().expect("main");
        let f = p.func(main);
        let ff = estimate_static(&p, main, &BranchProbs::default());
        for b in f.block_ids() {
            let succs = f.block(b).successors();
            if succs.is_empty() {
                continue;
            }
            let out: f64 = succs
                .iter()
                .map(|s| ff.edge.get(&(b.0, s.0)).copied().unwrap_or(0.0))
                .sum();
            let bf = ff.of(b);
            prop_assert!((out - bf).abs() <= bf * 1e-9 + 1e-12,
                "block {b}: out {out} vs freq {bf}");
        }
        // entry has frequency 1
        prop_assert!((ff.of(slo_ir::BlockId(0)) - 1.0).abs() < 1e-12);
    }

    /// Affinity graph invariants for arbitrary group sets: hotness is the
    /// sum of containing group weights; relative hotness is within
    /// [0, 100]; pair edges never exceed either endpoint's hotness.
    #[test]
    fn affinity_graph_invariants(
        groups in prop::collection::vec(
            (prop::collection::btree_set(0u32..6, 1..5), 0.1f64..1000.0),
            1..12,
        )
    ) {
        let mut g = AffinityGraph::new(RecordId(0), 6);
        let mut want = [0.0f64; 6];
        for (fields, w) in &groups {
            g.add_group(fields, *w);
            for &f in fields {
                want[f as usize] += *w;
            }
        }
        for f in 0..6u32 {
            prop_assert!((g.hotness(f) - want[f as usize]).abs() < 1e-9);
        }
        let rel = g.relative_hotness();
        for v in &rel {
            prop_assert!((0.0..=100.0 + 1e-9).contains(v));
        }
        prop_assert!(rel.iter().cloned().fold(0.0f64, f64::max) > 99.9);
        for ((a, b), w) in g.pair_edges() {
            prop_assert!(w <= g.hotness(a) + 1e-9);
            prop_assert!(w <= g.hotness(b) + 1e-9);
        }

        let set: BTreeSet<u32> = BTreeSet::new();
        let _ = set; // silence unused-import lint paths on some configs
    }
}
