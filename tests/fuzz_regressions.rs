//! Replays every minimized fuzzer repro committed under
//! `fuzz/regressions/` as an ordinary test.
//!
//! Each `.sir` file is textual IR preceded by `// …` comment lines; a
//! `// expect: ok` directive means the program must parse, verify and
//! pass the full differential oracle, while `// expect: reject` means
//! the parser or verifier must refuse it (these pin down verifier
//! hardening). Files without a directive default to `ok`.

use std::fs;
use std::path::PathBuf;

use slo_fuzz::{check_program, OracleConfig};
use slo_ir::parser::parse;
use slo_ir::verify::verify;

fn regressions_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fuzz")
        .join("regressions")
}

#[derive(Debug, PartialEq)]
enum Expect {
    Ok,
    Reject,
}

fn expectation(text: &str) -> Expect {
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("//") else {
            break;
        };
        if let Some(e) = rest.trim().strip_prefix("expect:") {
            return match e.trim() {
                "ok" => Expect::Ok,
                "reject" => Expect::Reject,
                other => panic!("unknown expectation `{other}`"),
            };
        }
    }
    Expect::Ok
}

/// Strip the leading comment block (the parser has no comment syntax).
fn source_of(text: &str) -> String {
    text.lines()
        .skip_while(|l| l.starts_with("//"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn regressions_replay() {
    let dir = regressions_dir();
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "sir"))
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "no committed regressions in {}",
        dir.display()
    );
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = fs::read_to_string(&path).unwrap();
        let expect = expectation(&text);
        let src = source_of(&text);
        match (expect, parse(&src)) {
            (Expect::Reject, Err(_)) => {}
            (Expect::Reject, Ok(p)) => {
                assert!(
                    !verify(&p).is_empty(),
                    "{name}: expected the parser or verifier to reject this program"
                );
            }
            (Expect::Ok, Err(e)) => panic!("{name}: failed to parse: {e:?}"),
            (Expect::Ok, Ok(p)) => {
                let errs = verify(&p);
                assert!(errs.is_empty(), "{name}: verifier errors: {errs:?}");
                if let Err(v) = check_program(&p, &OracleConfig::default()) {
                    panic!("{name}: oracle violation: {v}");
                }
            }
        }
    }
}
