//! End-to-end pipeline tests over the whole workload suite: every
//! benchmark compiles under every scheme, the transformed program
//! verifies, and executing it produces the same result as the baseline.

use slo::analysis::WeightScheme;
use slo::pipeline::{collect_profile, compile, PipelineConfig};
use slo::vm::VmOptions;
use slo_ir::verify::assert_valid;
use slo_workloads::{art, census, mcf, moldyn};

fn small_suite() -> Vec<(&'static str, slo_ir::Program)> {
    vec![
        (
            "mcf",
            mcf::build_config(mcf::McfConfig {
                n: 700,
                iters: 20,
                skew: 0,
            }),
        ),
        (
            "art",
            art::build_config(art::ArtConfig {
                n: 3_000,
                passes: 3,
            }),
        ),
        (
            "moldyn",
            moldyn::build_config(moldyn::MoldynConfig {
                n: 1_200,
                steps: 6,
                neighbors: 4,
            }),
        ),
        (
            "census",
            census::generate(
                &census::CensusSpec {
                    name: "mini",
                    types: 12,
                    legal: 3,
                    relax: 7,
                },
                1,
            ),
        ),
    ]
}

#[test]
fn every_workload_compiles_and_preserves_results_under_every_scheme() {
    for (name, prog) in small_suite() {
        let baseline = slo::vm::run(&prog, &VmOptions::default())
            .unwrap_or_else(|e| panic!("{name}: baseline run failed: {e}"));
        let fb = collect_profile(&prog).unwrap_or_else(|e| panic!("{name}: profile: {e}"));
        for scheme in [
            WeightScheme::Pbo(&fb),
            WeightScheme::Spbo,
            WeightScheme::Ispbo,
            WeightScheme::IspboNo,
            WeightScheme::IspboW,
        ] {
            let res = compile(&prog, &scheme, &PipelineConfig::default())
                .unwrap_or_else(|e| panic!("{name}/{}: compile: {e}", scheme.name()));
            assert_valid(&res.program);
            let out = slo::vm::run(&res.program, &VmOptions::default())
                .unwrap_or_else(|e| panic!("{name}/{}: run: {e}", scheme.name()));
            assert_eq!(
                out.exit,
                baseline.exit,
                "{name}/{}: result changed",
                scheme.name()
            );
        }
    }
}

#[test]
fn transformed_programs_roundtrip_through_text() {
    // the BE output is printable and reparsable (tooling-grade IR)
    for (name, prog) in small_suite() {
        let res = compile(&prog, &WeightScheme::Ispbo, &PipelineConfig::default())
            .unwrap_or_else(|e| panic!("{name}: compile: {e}"));
        let text = slo_ir::printer::print_program(&res.program);
        let back =
            slo_ir::parser::parse(&text).unwrap_or_else(|e| panic!("{name}: reparse failed: {e}"));
        assert_valid(&back);
        let a = slo::vm::run(&res.program, &VmOptions::default()).expect("transformed runs");
        let b = slo::vm::run(&back, &VmOptions::default()).expect("reparsed runs");
        assert_eq!(a.exit, b.exit, "{name}: reparse changed behaviour");
    }
}

#[test]
fn disabling_transformations_yields_identity() {
    let prog = mcf::build_config(mcf::McfConfig {
        n: 500,
        iters: 10,
        skew: 0,
    });
    let cfg = PipelineConfig {
        heuristics: Some(slo_transform::HeuristicsConfig {
            enable_peel: false,
            enable_split: false,
            enable_dead_removal: false,
            ..slo_transform::HeuristicsConfig::ispbo()
        }),
        ..Default::default()
    };
    let res = compile(&prog, &WeightScheme::Ispbo, &cfg).expect("compile");
    assert_eq!(res.plan.num_transformed(), 0);
    assert_eq!(
        slo_ir::printer::print_program(&prog),
        slo_ir::printer::print_program(&res.program),
        "no plan means no change"
    );
}

#[test]
fn phase_timings_are_recorded() {
    let prog = mcf::build_config(mcf::McfConfig {
        n: 500,
        iters: 10,
        skew: 0,
    });
    let res = compile(&prog, &WeightScheme::Ispbo, &PipelineConfig::default()).expect("compile");
    let t = res.timings;
    assert!(t.fe.as_nanos() > 0, "FE must take measurable time");
    assert!(t.ipa.as_nanos() > 0, "IPA must take measurable time");
}
