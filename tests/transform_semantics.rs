//! Property-based semantic-preservation tests for the BE transformations:
//! for randomly generated programs over a record type, splitting (any
//! hot/cold partition), reordering (any permutation) and dead-field
//! removal must not change the computed result.

use proptest::prelude::*;
use slo_ir::{CmpOp, Field, Operand, Program, ProgramBuilder, ScalarKind};
use slo_transform::{apply_plan, reorder_fields, TransformPlan, TypeTransform};
use slo_vm::{run, Value, VmOptions};

/// A randomly generated access script over one record array.
#[derive(Debug, Clone)]
struct Script {
    nfields: usize,
    array_len: i64,
    /// (field, multiplier) store/load rounds
    rounds: Vec<(usize, i64)>,
    /// which fields the final checksum reads
    checksum_fields: Vec<usize>,
}

fn script_strategy() -> impl Strategy<Value = Script> {
    (3usize..8, 2i64..40).prop_flat_map(|(nfields, array_len)| {
        (
            prop::collection::vec((0..nfields, 1i64..100), 1..12),
            prop::collection::vec(0..nfields, 1..4),
        )
            .prop_map(move |(rounds, checksum_fields)| Script {
                nfields,
                array_len,
                rounds,
                checksum_fields,
            })
    })
}

/// Build an executable program from a script.
fn build_program(s: &Script) -> Program {
    let mut pb = ProgramBuilder::new();
    let i64t = pb.scalar(ScalarKind::I64);
    let fields: Vec<Field> = (0..s.nfields)
        .map(|i| Field::new(format!("f{i}"), i64t))
        .collect();
    let (rid, rty) = pb.record("t", fields);
    let main = pb.declare("main", vec![], i64t);
    pb.define(main, |fb| {
        let n = fb.iconst(s.array_len);
        let arr = fb.alloc(rty, n.into());
        // init every field so loads are defined
        fb.count_loop(n.into(), |fb, i| {
            let e = fb.index_addr(arr, rty, i.into());
            for f in 0..s.nfields as u32 {
                fb.store_field(e.into(), rid, f, i.into());
            }
        });
        // the random rounds
        for &(f, mult) in &s.rounds {
            fb.count_loop(n.into(), |fb, i| {
                let e = fb.index_addr(arr, rty, i.into());
                let v = fb.load_field(e.into(), rid, f as u32);
                let nv = fb.mul(v.into(), Operand::int(mult));
                let masked = fb.bin(slo_ir::BinOp::And, nv.into(), Operand::int(0xffff));
                fb.store_field(e.into(), rid, f as u32, masked.into());
                let c = fb.cmp(CmpOp::Gt, masked.into(), Operand::int(1 << 14));
                fb.if_then(c.into(), |fb| {
                    fb.store_field(e.into(), rid, f as u32, Operand::int(7));
                });
            });
        }
        // checksum
        let sum = fb.fresh();
        fb.assign(sum, Operand::int(0));
        fb.count_loop(n.into(), |fb, i| {
            let e = fb.index_addr(arr, rty, i.into());
            for &f in &s.checksum_fields {
                let v = fb.load_field(e.into(), rid, f as u32);
                let ns = fb.add(sum.into(), v.into());
                fb.assign(sum, ns.into());
            }
        });
        fb.free(arr.into());
        fb.ret(Some(sum.into()));
    });
    pb.finish()
}

fn result_of(p: &Program) -> Value {
    run(p, &VmOptions::default()).expect("program runs").exit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn split_preserves_results(s in script_strategy(), split_mask in 0u32..255) {
        let p = build_program(&s);
        let baseline = result_of(&p);

        // partition the fields by the mask; both sides must be non-empty
        let rid = p.types.record_by_name("t").expect("t");
        let mut hot = Vec::new();
        let mut cold = Vec::new();
        for f in 0..s.nfields as u32 {
            if split_mask & (1 << f) != 0 {
                cold.push(f);
            } else {
                hot.push(f);
            }
        }
        prop_assume!(!hot.is_empty() && cold.len() >= 2);

        let mut plan = TransformPlan::default();
        plan.types.insert(rid, TypeTransform::Split { hot_order: hot, cold, dead: vec![] });
        let q = apply_plan(&p, &plan).expect("split applies");
        slo_ir::verify::assert_valid(&q);
        prop_assert_eq!(result_of(&q), baseline);
    }

    #[test]
    fn reorder_preserves_results(s in script_strategy(), seed in 0u64..u64::MAX) {
        let p = build_program(&s);
        let baseline = result_of(&p);
        let rid = p.types.record_by_name("t").expect("t");

        // derive a permutation from the seed (Fisher–Yates with an LCG)
        let mut order: Vec<u32> = (0..s.nfields as u32).collect();
        let mut x = seed | 1;
        for i in (1..order.len()).rev() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (x >> 33) as usize % (i + 1);
            order.swap(i, j);
        }

        let q = reorder_fields(&p, rid, &order).expect("reorder applies");
        slo_ir::verify::assert_valid(&q);
        prop_assert_eq!(result_of(&q), baseline);
    }

    #[test]
    fn split_then_reorder_compose(s in script_strategy()) {
        let p = build_program(&s);
        let baseline = result_of(&p);
        let rid = p.types.record_by_name("t").expect("t");
        // reorder first (reverse), then split out the last two fields
        let order: Vec<u32> = (0..s.nfields as u32).rev().collect();
        let q = reorder_fields(&p, rid, &order).expect("reorder");
        let n = s.nfields as u32;
        let mut plan = TransformPlan::default();
        plan.types.insert(rid, TypeTransform::Split {
            hot_order: (0..n - 2).collect(),
            cold: vec![n - 2, n - 1],
            dead: vec![],
        });
        let r = apply_plan(&q, &plan).expect("split applies");
        slo_ir::verify::assert_valid(&r);
        prop_assert_eq!(result_of(&r), baseline);
    }
}

#[test]
fn dead_removal_preserves_live_results() {
    // deterministic instance: one field never read
    let s = Script {
        nfields: 4,
        array_len: 10,
        rounds: vec![(0, 3), (1, 5)],
        checksum_fields: vec![0, 1],
    };
    let p = build_program(&s);
    let baseline = result_of(&p);
    let rid = p.types.record_by_name("t").expect("t");
    // fields 2 and 3 are written by init but never read
    let mut plan = TransformPlan::default();
    plan.types
        .insert(rid, TypeTransform::RemoveDead { dead: vec![2, 3] });
    let q = apply_plan(&p, &plan).expect("removal applies");
    slo_ir::verify::assert_valid(&q);
    assert_eq!(result_of(&q), baseline);
    assert_eq!(q.types.record(rid).fields.len(), 2);
}
