//! Conformance suite for the observability layer.
//!
//! The contract under test, end to end:
//!
//! 1. a traced compile emits a Chrome `trace_event` JSON document that
//!    passes the golden-schema checker in `slo_obs::conform`, with one
//!    span per pipeline phase (the names anchored in ARCHITECTURE.md);
//! 2. spans nest properly — every phase span sits inside the `compile`
//!    span, with no partial overlap on any thread;
//! 3. the service's Prometheus exposition parses line-by-line;
//! 4. a disabled recorder records nothing, costs nothing observable,
//!    and — crucially — tracing on/off does not change what the
//!    pipeline produces: compile output is bit-identical either way.

use slo::analysis::WeightScheme;
use slo::obs::conform::{check_chrome_trace, check_prometheus, parse_json, JsonValue};
use slo::obs::{EventKind, Recorder};
use slo::pipeline::PipelineConfig;
use slo_ir::printer::print_program;
use slo_service::{Budget, Fault, Job, SchemeSpec, Service, ServiceConfig};
use slo_workloads::mcf::{self, McfConfig};

/// The seven pipeline phases, in ARCHITECTURE.md order.
const PHASES: [&str; 7] = [
    "parse",
    "legality",
    "escape",
    "profile",
    "plan",
    "transform",
    "verify",
];

fn sample_program() -> slo_ir::Program {
    mcf::build_config(McfConfig {
        n: 500,
        iters: 3,
        skew: 0,
    })
}

/// Compile the sample program under a recorder, with an explicit parse
/// span around a text round-trip (the library pipeline starts from an
/// in-memory `Program`; the CLI owns the real parse span).
fn traced_compile(rec: &Recorder) -> slo::pipeline::CompileResult {
    let prog = sample_program();
    {
        let _s = rec.span("pipeline", "parse");
        let text = print_program(&prog);
        slo_ir::parser::parse(&text).expect("IR text round-trip");
    }
    slo::compile_with(&prog, &WeightScheme::Ispbo, &PipelineConfig::default(), rec)
        .expect("traced compile")
}

#[test]
fn traced_compile_emits_all_seven_phase_spans() {
    let rec = Recorder::enabled();
    traced_compile(&rec);
    let summary = check_chrome_trace(&rec.to_chrome_json()).expect("conformant trace");
    for phase in PHASES {
        assert!(
            summary.has(phase),
            "missing `{phase}` span; got: {:?}",
            summary.names
        );
    }
    assert!(summary.has("compile"), "missing the outer `compile` span");
    assert_eq!(summary.dropped, 0, "events dropped from a tiny trace");
}

#[test]
fn chrome_trace_matches_golden_schema() {
    let rec = Recorder::enabled();
    traced_compile(&rec);
    let doc = parse_json(&rec.to_chrome_json()).expect("trace is valid JSON");
    // Top-level golden schema.
    for key in ["traceEvents", "displayTimeUnit", "otherData"] {
        assert!(doc.get(key).is_some(), "missing top-level `{key}`");
    }
    assert_eq!(
        doc.get("displayTimeUnit").and_then(JsonValue::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    // Per-event golden schema: every complete event carries the full
    // key set a Chrome/Perfetto importer expects.
    for ev in events {
        let ph = ev.get("ph").and_then(JsonValue::as_str).expect("ph");
        let want: &[&str] = if ph == "X" {
            &["name", "cat", "ph", "ts", "dur", "pid", "tid", "args"]
        } else {
            &["name", "cat", "ph", "ts", "pid", "tid", "args"]
        };
        for key in want {
            assert!(ev.get(key).is_some(), "{ph} event missing `{key}`");
        }
        assert_eq!(ev.get("pid").and_then(JsonValue::as_num), Some(1.0));
    }
}

#[test]
fn phase_spans_nest_inside_the_compile_span() {
    let rec = Recorder::enabled();
    traced_compile(&rec);
    let events = rec.events();
    let compile = events
        .iter()
        .find(|e| e.name == "compile")
        .expect("compile span");
    let (c0, c1) = (compile.ts_us, compile.ts_us + compile.dur_us);
    for ev in &events {
        if ev.kind == EventKind::Complete && PHASES.contains(&ev.name.as_str()) {
            // `parse` runs before compile by construction; every phase
            // the pipeline owns must sit inside the compile span.
            if ev.name == "parse" {
                continue;
            }
            assert!(
                ev.ts_us >= c0 && ev.ts_us + ev.dur_us <= c1,
                "`{}` span [{}..{}] escapes `compile` [{c0}..{c1}]",
                ev.name,
                ev.ts_us,
                ev.ts_us + ev.dur_us
            );
        }
    }
    // The checker's sweep would reject any partial overlap too.
    check_chrome_trace(&rec.to_chrome_json()).expect("nesting holds");
}

#[test]
fn service_prometheus_exposition_is_line_by_line_conformant() {
    let service = Service::new(ServiceConfig::builder().workers(1).build());
    let mut jobs = vec![
        Job::from_program("obs-a", sample_program()).scheme(SchemeSpec::Ispbo),
        Job::from_program("obs-b", sample_program()).scheme(SchemeSpec::Spbo),
    ];
    // Exercise the degradation-reason labels.
    jobs.push(Job::from_program("obs-panic", sample_program()).fault(Fault::PanicInBe));
    jobs.push(Job::from_program("obs-budget", sample_program()).budget(Budget::steps(5)));
    service.run_batch(&jobs);
    let text = service.metrics().to_prometheus();
    let summary = check_prometheus(&text).expect("conformant exposition");
    for family in [
        "slo_jobs_total",
        "slo_jobs_by_status_total",
        "slo_jobs_degraded_total",
        "slo_cache_events_total",
        "slo_phase_seconds_total",
    ] {
        assert!(summary.has(family), "missing family `{family}`");
    }
    assert!(text.contains(r#"slo_jobs_degraded_total{reason="panic"} 1"#));
    assert!(text.contains(r#"slo_jobs_degraded_total{reason="budget"} 1"#));
}

#[test]
fn disabled_recorder_emits_nothing() {
    let rec = Recorder::disabled();
    traced_compile(&rec);
    assert!(!rec.is_enabled());
    assert_eq!(rec.len(), 0);
    assert_eq!(rec.dropped(), 0);
    assert!(rec.events().is_empty());
    // The empty document still conforms.
    let summary = check_chrome_trace(&rec.to_chrome_json()).expect("empty trace conforms");
    assert_eq!(summary.events, 0);
}

#[test]
fn compile_output_is_bit_identical_with_tracing_on_and_off() {
    let prog = sample_program();
    let cfg = PipelineConfig::default();
    let plain = slo::compile(&prog, &WeightScheme::Ispbo, &cfg).expect("untraced compile");
    let rec = Recorder::enabled();
    let traced =
        slo::compile_with(&prog, &WeightScheme::Ispbo, &cfg, &rec).expect("traced compile");
    assert!(!rec.is_empty(), "recorder saw the traced compile");
    assert_eq!(
        print_program(&plain.program),
        print_program(&traced.program),
        "tracing changed the transformed program"
    );
    assert_eq!(
        plain.plan.num_transformed(),
        traced.plan.num_transformed(),
        "tracing changed the plan"
    );
}

#[test]
fn service_trace_attributes_jobs_and_cache_hits() {
    let rec = Recorder::enabled();
    let service = Service::with_trace(
        ServiceConfig::builder()
            .workers(1)
            .cache_capacity(8)
            .build(),
        rec.clone(),
    );
    let jobs = vec![Job::from_program("attr-a", sample_program()).scheme(SchemeSpec::Ispbo)];
    service.run_batch(&jobs);
    service.run_batch(&jobs); // identical rerun → cache hit
    let summary = check_chrome_trace(&rec.to_chrome_json()).expect("conformant trace");
    assert!(summary.has("job:attr-a"), "per-job span missing");
    assert!(summary.has("cache-hit"), "cache-hit instant missing");
}

/// Every chaos fault path is visible end to end: a campaign service's
/// Prometheus exposition carries the retry/quarantine/fault-site
/// families (still line-by-line conformant), and its trace carries the
/// supervisor's retry and quarantine instants.
#[test]
fn chaos_fault_paths_are_visible_in_prometheus_and_traces() {
    use slo_service::{ChaosConfig, Clock, FaultPlan, RetryPolicy, Site};

    let rec = Recorder::enabled();
    let service = Service::with_chaos(
        ServiceConfig::builder().workers(1).build(),
        rec.clone(),
        FaultPlan::with_config(3, ChaosConfig::never().rate(Site::VmAlloc, 1024)),
        RetryPolicy::default(),
        Clock::virtual_clock(),
    );
    service.run_batch(&[Job::from_program("chaos-a", sample_program())]);

    let text = service.metrics().to_prometheus();
    let summary = check_prometheus(&text).expect("conformant exposition");
    for family in [
        "slo_retries_total",
        "slo_quarantined_total",
        "slo_faults_injected_total",
    ] {
        assert!(summary.has(family), "missing family `{family}`");
    }
    assert!(text.contains(r#"slo_jobs_degraded_total{reason="fault"} 1"#));
    assert!(text.contains("slo_retries_total 2"), "{text}");
    assert!(text.contains("slo_quarantined_total 1"), "{text}");
    assert!(
        text.contains(r#"slo_faults_injected_total{site="vm-alloc"} 3"#),
        "one injection per attempt:\n{text}"
    );
    assert!(
        text.contains(r#"slo_cache_events_total{event="reverified"} 0"#),
        "re-verification counter exported even when quiet:\n{text}"
    );

    let events = rec.events();
    let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
    assert!(names.contains(&"retry"), "retry instants traced: {names:?}");
    assert!(
        names.contains(&"quarantine"),
        "quarantine instant traced: {names:?}"
    );
    check_chrome_trace(&rec.to_chrome_json()).expect("chaos trace conforms");
}
