//! Cross-crate consistency checks on the execution substrate: cache
//! accounting invariants, determinism, instrumentation transparency, and
//! the machine-model knobs.

use proptest::prelude::*;
use slo_ir::parser::parse;
use slo_vm::{run, CacheConfig, CacheLevelConfig, CacheSim, VmOptions};

const WORKLOAD: &str = r#"
record cell { a: i64, b: f64, c: i64, d: i64 }
func main() -> i64 {
bb0:
  r0 = alloc cell, 4096
  r1 = 0
  r2 = 0
  jump bb1
bb1:
  r3 = cmp.lt r1, 4096
  br r3, bb2, bb3
bb2:
  r4 = mul r1, 1103515245
  r5 = add r4, 12345
  r6 = and r5, 2147483647
  r7 = rem r6, 4096
  r8 = indexaddr r0, cell, r7
  r9 = fieldaddr r8, cell.a
  store r1, r9 : i64
  r10 = load r9 : i64
  r11 = fieldaddr r8, cell.b
  store 1.5, r11 : f64
  r12 = load r11 : f64
  r2 = add r2, r10
  r1 = add r1, 1
  jump bb1
bb3:
  ret r2
}
"#;

#[test]
fn cache_accounting_is_consistent() {
    let p = parse(WORKLOAD).expect("parse");
    let out = run(&p, &VmOptions::default()).expect("run");
    let c = &out.stats.cache;
    // L1 accounting: hits + misses = integer accesses (FP skips L1)
    for lvl in &c.levels {
        assert!(lvl.hits + lvl.misses > 0);
    }
    let l1_total = c.levels[0].hits + c.levels[0].misses;
    let l2_total = c.levels[1].hits + c.levels[1].misses;
    // L2 sees L1 misses plus FP first-level accesses
    assert_eq!(l2_total, c.levels[0].misses + (c.accesses - l1_total));
    // memory accesses = last-level misses
    assert_eq!(c.memory_accesses, c.levels[2].misses);
    // every memory op issued exactly one cache access
    assert_eq!(c.accesses, out.stats.loads + out.stats.stores);
}

#[test]
fn execution_is_deterministic() {
    let p = parse(WORKLOAD).expect("parse");
    let a = run(&p, &VmOptions::default()).expect("run a");
    let b = run(&p, &VmOptions::default()).expect("run b");
    assert_eq!(a.exit, b.exit);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn instrumentation_does_not_change_results_or_sampling_much() {
    // the paper's DMISS.NO observation: sampled d-cache behaviour is
    // nearly identical with and without edge instrumentation
    let p = parse(WORKLOAD).expect("parse");
    let mut with = VmOptions::profiling();
    with.sample_period = 1;
    let mut without = VmOptions::sampling_only();
    without.sample_period = 1;
    let a = run(&p, &with).expect("instrumented");
    let b = run(&p, &without).expect("plain");
    assert_eq!(a.exit, b.exit);
    // instrumentation costs cycles...
    assert!(a.stats.cycles > b.stats.cycles);
    // ...but the d-cache picture is identical (deterministic machine)
    assert_eq!(a.stats.cache, b.stats.cache);
    let ma: u64 = a
        .feedback
        .funcs
        .values()
        .flat_map(|f| f.samples.values())
        .map(|s| s.misses)
        .sum();
    let mb: u64 = b
        .feedback
        .funcs
        .values()
        .flat_map(|f| f.samples.values())
        .map(|s| s.misses)
        .sum();
    assert_eq!(ma, mb);
}

#[test]
fn smaller_cache_means_more_misses() {
    let p = parse(WORKLOAD).expect("parse");
    let big = run(&p, &VmOptions::default()).expect("big");
    let tiny_cfg = CacheConfig {
        levels: vec![
            CacheLevelConfig {
                size: 1024,
                line: 64,
                assoc: 2,
                latency: 1,
            },
            CacheLevelConfig {
                size: 8 * 1024,
                line: 128,
                assoc: 4,
                latency: 7,
            },
            CacheLevelConfig {
                size: 64 * 1024,
                line: 128,
                assoc: 8,
                latency: 14,
            },
        ],
        memory_latency: 200,
        fp_first_level: 1,
        next_line_prefetch: false,
    };
    let small = run(
        &p,
        &VmOptions {
            cache: tiny_cfg,
            ..VmOptions::default()
        },
    )
    .expect("small");
    assert_eq!(big.exit, small.exit);
    assert!(small.stats.cycles > big.stats.cycles);
    assert!(small.stats.cache.memory_accesses > big.stats.cache.memory_accesses);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cache simulator invariant: for any access sequence, per-level
    /// hits+misses are consistent and replaying the same sequence after a
    /// flush gives identical stats deltas.
    #[test]
    fn cache_sim_replay_is_deterministic(
        addrs in prop::collection::vec(0u64..(1 << 20), 1..200),
        fp_bits in prop::collection::vec(any::<bool>(), 200),
    ) {
        let mut a = CacheSim::new(CacheConfig::default());
        let mut b = CacheSim::new(CacheConfig::default());
        for (i, &addr) in addrs.iter().enumerate() {
            let fp = fp_bits[i % fp_bits.len()];
            let ra = a.access(addr, fp);
            let rb = b.access(addr, fp);
            prop_assert_eq!(ra, rb);
        }
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.stats().accesses, addrs.len() as u64);
    }

    /// A repeated address always hits after the first access (no
    /// spurious invalidation), for any single address.
    #[test]
    fn second_access_hits(addr in 64u64..(1 << 30)) {
        let mut c = CacheSim::new(CacheConfig::default());
        let _ = c.access(addr, false);
        let r = c.access(addr, false);
        prop_assert_eq!(r.served_by, 0);
        prop_assert!(!r.first_level_miss);
    }
}
