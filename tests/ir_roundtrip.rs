//! Property-based round-trip and layout-invariant tests for the IR
//! substrate: print∘parse is the identity on printed programs, and
//! record layouts satisfy the C-layout invariants for arbitrary field
//! lists.

use proptest::prelude::*;
use slo_ir::parser::parse;
use slo_ir::printer::print_program;
use slo_ir::{Field, ProgramBuilder, RecordType, ScalarKind, TypeTable};

fn scalar_strategy() -> impl Strategy<Value = ScalarKind> {
    prop::sample::select(vec![
        ScalarKind::I8,
        ScalarKind::I16,
        ScalarKind::I32,
        ScalarKind::I64,
        ScalarKind::U8,
        ScalarKind::U16,
        ScalarKind::U32,
        ScalarKind::U64,
        ScalarKind::F32,
        ScalarKind::F64,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn layout_invariants(kinds in prop::collection::vec(scalar_strategy(), 0..12)) {
        let mut t = TypeTable::new();
        let fields: Vec<Field> = kinds
            .iter()
            .enumerate()
            .map(|(i, k)| Field::new(format!("f{i}"), t.scalar(*k)))
            .collect();
        let (rid, _) = t.add_record(RecordType { name: "r".into(), fields: fields.clone() });
        let layout = t.layout_of(rid);

        // every field aligned to its natural alignment
        for (i, k) in kinds.iter().enumerate() {
            prop_assert_eq!(layout.offsets[i] % k.align(), 0, "field {} misaligned", i);
        }
        // fields do not overlap and are in declaration order
        for i in 1..kinds.len() {
            prop_assert!(layout.offsets[i] >= layout.offsets[i - 1] + kinds[i - 1].size());
        }
        // size covers the last field and is aligned
        if let (Some(last_off), Some(last)) = (layout.offsets.last(), kinds.last()) {
            prop_assert!(layout.size >= last_off + last.size());
        }
        prop_assert_eq!(layout.size % layout.align, 0);
        // alignment is the max field alignment (or 1)
        let want_align = kinds.iter().map(|k| k.align()).max().unwrap_or(1);
        prop_assert_eq!(layout.align, want_align);
    }

    #[test]
    fn print_parse_roundtrip(
        nfields in 1usize..6,
        kinds in prop::collection::vec(scalar_strategy(), 6),
        consts in prop::collection::vec(-1000i64..1000, 1..8),
        count in 1i64..64,
    ) {
        // build a program exercising records, globals, calls and loops
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let fields: Vec<Field> = (0..nfields)
            .map(|i| Field::new(format!("f{i}"), pb.scalar(kinds[i])))
            .collect();
        let (rid, rty) = pb.record("rec", fields);
        let prty = pb.ptr(rty);
        pb.global("G", prty);
        let helper = pb.declare("helper", vec![i64t], i64t);
        pb.define(helper, |fb| {
            let p = fb.param(0);
            let v = fb.add(p.into(), slo_ir::Operand::int(1));
            fb.ret(Some(v.into()));
        });
        let main = pb.declare("main", vec![], i64t);
        pb.define(main, |fb| {
            let arr = fb.alloc(rty, slo_ir::Operand::int(count));
            let g = fb.types().scalar(ScalarKind::I64);
            let _ = g;
            let sum = fb.fresh();
            fb.assign(sum, slo_ir::Operand::int(0));
            fb.count_loop(slo_ir::Operand::int(count), |fb, i| {
                let e = fb.index_addr(arr, rty, i.into());
                fb.store_field(e.into(), rid, 0, i.into());
                let v = fb.load_field(e.into(), rid, 0);
                let c = fb.call(helper, vec![v.into()]);
                let ns = fb.add(sum.into(), c.into());
                fb.assign(sum, ns.into());
            });
            for &k in &consts {
                let x = fb.iconst(k);
                let ns = fb.add(sum.into(), x.into());
                fb.assign(sum, ns.into());
            }
            fb.ret(Some(sum.into()));
        });
        let p = pb.finish();
        slo_ir::verify::assert_valid(&p);

        let text1 = print_program(&p);
        let reparsed = parse(&text1).expect("printed program parses");
        slo_ir::verify::assert_valid(&reparsed);
        let text2 = print_program(&reparsed);
        prop_assert_eq!(&text1, &text2, "print/parse must be stable");

        // and both versions compute the same result
        let r1 = slo_vm::run(&p, &slo_vm::VmOptions::default()).expect("orig runs");
        let r2 = slo_vm::run(&reparsed, &slo_vm::VmOptions::default()).expect("reparse runs");
        prop_assert_eq!(r1.exit, r2.exit);
    }

    #[test]
    fn float_const_roundtrip(v in prop::num::f64::NORMAL) {
        // float literals survive print/parse exactly
        let src = format!("func main() -> f64 {{\nbb0:\n  r0 = {v:?}\n  ret r0\n}}\n");
        if let Ok(p) = parse(&src) {
            let out = slo_vm::run(&p, &slo_vm::VmOptions::default()).expect("runs");
            prop_assert_eq!(out.exit, slo_vm::Value::Float(v));
        }
    }
}
