//! Quickstart: the Figure 1 story end-to-end.
//!
//! Builds a small program over an array of records with interleaved hot
//! and cold fields, runs the full pipeline, and shows (a) the layout
//! before and after, (b) the performance effect on the simulated machine.
//!
//! Run with: `cargo run --release --example quickstart`

use slo::analysis::WeightScheme;
use slo::pipeline::{compile, evaluate, PipelineConfig};
use slo::vm::VmOptions;
use slo_ir::parser::parse;
use slo_ir::printer::print_program;

const SRC: &str = r#"
// Figure 1 (a): an array of records with interleaved hot and cold fields.
record item { hot1: i64, cold1: i64, hot2: i64, cold2: i64, cold3: i64 }

func traverse(ptr<item>, i64, i64) -> i64 {
bb0:
  r3 = 0
  r4 = 0
  jump bb1
bb1:
  r5 = cmp.lt r4, r1
  br r5, bb2, bb3
bb2:
  r6 = mul r4, 2654435761
  r7 = add r6, r2
  r8 = and r7, 2147483647
  r9 = rem r8, r1
  r10 = indexaddr r0, item, r9
  r11 = fieldaddr r10, item.hot1
  r12 = load r11 : i64
  r13 = fieldaddr r10, item.hot2
  r14 = load r13 : i64
  r15 = add r12, r14
  r3 = add r3, r15
  r4 = add r4, 1
  jump bb1
bb3:
  ret r3
}

func main() -> i64 {
bb0:
  r0 = 120000
  r1 = alloc item, r0
  r2 = 0
  jump bb1
bb1:
  r3 = cmp.lt r2, r0
  br r3, bb2, bb3
bb2:
  r4 = indexaddr r1, item, r2
  r5 = fieldaddr r4, item.hot1
  store r2, r5 : i64
  r6 = fieldaddr r4, item.hot2
  store 1, r6 : i64
  r7 = fieldaddr r4, item.cold1
  store 2, r7 : i64
  r8 = fieldaddr r4, item.cold2
  store 3, r8 : i64
  r9 = fieldaddr r4, item.cold3
  store 4, r9 : i64
  r2 = add r2, 1
  jump bb1
bb3:
  r10 = fieldaddr r1, item.cold1
  r11 = load r10 : i64
  r12 = fieldaddr r1, item.cold2
  r13 = load r12 : i64
  r14 = fieldaddr r1, item.cold3
  r15 = load r14 : i64
  r16 = 0
  r17 = 0
  jump bb4
bb4:
  r18 = cmp.lt r17, 30
  br r18, bb5, bb6
bb5:
  r19 = call traverse(r1, r0, r17)
  r16 = add r16, r19
  r17 = add r17, 1
  jump bb4
bb6:
  r20 = add r16, r11
  r21 = add r20, r13
  r22 = add r21, r15
  free r1
  ret r22
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = parse(SRC)?;

    println!("== before (Figure 1 (a)) ==");
    let item = prog.types.record_by_name("item").expect("item type");
    let layout = prog.types.layout_of(item);
    println!(
        "record item: {} fields, {} bytes, offsets {:?}\n",
        prog.types.record(item).fields.len(),
        layout.size,
        layout.offsets
    );

    // full pipeline under the non-profile heuristics
    let result = compile(&prog, &WeightScheme::Ispbo, &PipelineConfig::default())?;
    println!("plan: {:?}\n", result.plan.of(item));

    println!("== after (Figure 1 (b)) ==");
    let after = &result.program;
    let root = after.types.record_by_name("item").expect("item survives");
    let layout = after.types.layout_of(root);
    println!(
        "record item (root): fields {:?}, {} bytes",
        after
            .types
            .record(root)
            .fields
            .iter()
            .map(|f| f.name.as_str())
            .collect::<Vec<_>>(),
        layout.size
    );
    if let Some(cold) = after.types.record_by_name("item_cold") {
        println!(
            "record item_cold:   fields {:?}, {} bytes",
            after
                .types
                .record(cold)
                .fields
                .iter()
                .map(|f| f.name.as_str())
                .collect::<Vec<_>>(),
            after.types.layout_of(cold).size
        );
    }
    println!();

    let eval = evaluate(&prog, after, &VmOptions::default())?;
    println!(
        "cycles: {} -> {}  ({:+.1}%)",
        eval.baseline_cycles,
        eval.optimized_cycles,
        eval.speedup_percent()
    );

    // show a snippet of the rewritten IR (the link-pointer init loop)
    let text = print_program(after);
    let main_start = text.find("func main").expect("main printed");
    println!("\n== rewritten main (excerpt) ==");
    for line in text[main_start..].lines().take(24) {
        println!("{line}");
    }
    Ok(())
}
