//! Profile-guided vs static compilation on moldyn — the second-order
//! PBO effect of Table 3 (the profiled build splits the rarely-touched
//! boundary fields that the 50%-branch static heuristic keeps hot).
//!
//! Run with: `cargo run --release --example moldyn_profile`

use slo::analysis::WeightScheme;
use slo::pipeline::{collect_profile, compile, evaluate, PipelineConfig};
use slo::vm::VmOptions;
use slo_transform::TypeTransform;
use slo_workloads::moldyn::{build_config, MoldynConfig, PARTICLE_FIELDS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = build_config(MoldynConfig {
        n: 56_000,
        steps: 6,
        neighbors: 6,
    });
    let particle = prog.types.record_by_name("particle").expect("particle");

    // --- static (ISPBO) build ------------------------------------------
    let static_res = compile(&prog, &WeightScheme::Ispbo, &PipelineConfig::default())?;
    // --- profiled (PBO) build ------------------------------------------
    let feedback = collect_profile(&prog)?;
    let pbo_res = compile(
        &prog,
        &WeightScheme::Pbo(&feedback),
        &PipelineConfig::default(),
    )?;

    let names = |t: &TypeTransform| -> Vec<&str> {
        match t {
            TypeTransform::Split { cold, .. } => {
                cold.iter().map(|&f| PARTICLE_FIELDS[f as usize]).collect()
            }
            _ => vec![],
        }
    };
    println!(
        "static build splits out:   {:?}",
        names(static_res.plan.of(particle))
    );
    println!(
        "profiled build splits out: {:?}",
        names(pbo_res.plan.of(particle))
    );

    let opts = VmOptions::default();
    let e_static = evaluate(&prog, &static_res.program, &opts)?;
    let e_pbo = evaluate(&prog, &pbo_res.program, &opts)?;
    println!(
        "\nstatic  (ISPBO): {:+.1}%   (paper: +21.8%)",
        e_static.speedup_percent()
    );
    println!(
        "profiled (PBO) : {:+.1}%   (paper: +30.9%)",
        e_pbo.speedup_percent()
    );
    println!(
        "\nthe profiled build {} the static one, as in the paper",
        if e_pbo.speedup_percent() > e_static.speedup_percent() {
            "beats"
        } else {
            "does not beat"
        }
    );
    Ok(())
}
