//! 179.art end-to-end: the peeling transformation (Figure 1 (c)).
//!
//! Run with: `cargo run --release --example art_peel`

use slo::analysis::WeightScheme;
use slo::pipeline::{compile, evaluate, PipelineConfig};
use slo::vm::VmOptions;
use slo_workloads::art::{build_config, ArtConfig, F1_FIELDS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = build_config(ArtConfig {
        n: 100_000,
        passes: 8,
    });

    let f1 = prog.types.record_by_name("f1_neuron").expect("f1 type");
    println!(
        "f1_neuron: {} f64 fields, {} bytes per element, one allocation \
         published through global F1",
        F1_FIELDS.len(),
        prog.types.layout_of(f1).size
    );

    let result = compile(&prog, &WeightScheme::Ispbo, &PipelineConfig::default())?;
    println!("plan: {:?}", result.plan.of(f1));

    println!("\npieces after peeling:");
    for f in F1_FIELDS {
        let name = format!("f1_neuron_p_{f}");
        if let Some(rid) = result.program.types.record_by_name(&name) {
            println!(
                "  {name:<18} {} bytes/element, global __peel_f1_neuron_{f}",
                result.program.types.layout_of(rid).size
            );
        }
    }

    let eval = evaluate(&prog, &result.program, &VmOptions::default())?;
    println!(
        "\ncycles {} -> {}  ({:+.1}%; the paper reports +78.2%)",
        eval.baseline_cycles,
        eval.optimized_cycles,
        eval.speedup_percent()
    );
    Ok(())
}
