//! The advisory tool as a standalone analysis (§3): annotated structure
//! definitions with runtime d-cache data, a VCG graph, and layout advice
//! — without applying any transformation.
//!
//! Run with: `cargo run --release --example advisor_report`

use slo::advisor::{classify, render_report, render_vcg, AdvisorInput, ScenarioConfig};
use slo::analysis::{
    affinity_graphs, analyze_program, attribute_samples, block_frequencies, LegalityConfig,
    WeightScheme,
};
use slo::vm::VmOptions;
use slo_workloads::moldyn::{build_config, MoldynConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = build_config(MoldynConfig {
        n: 20_000,
        steps: 6,
        neighbors: 6,
    });

    // PBO collection with PMU sampling attached (HP Caliper style)
    println!("running the instrumented binary with sampling...");
    let out = slo::vm::run(&prog, &VmOptions::profiling())?;

    let scheme = WeightScheme::Pbo(&out.feedback);
    let ipa = analyze_program(&prog, &LegalityConfig::default());
    let graphs = affinity_graphs(&prog, &scheme);
    let freqs = block_frequencies(&prog, &scheme);
    let counts = slo::analysis::affinity::build_field_counts(&prog, &freqs);
    let dcache = attribute_samples(&prog, &out.feedback);
    let strides = slo::analysis::attribute_strides(&prog, &out.feedback);

    let input = AdvisorInput {
        prog: &prog,
        ipa: &ipa,
        graphs: &graphs,
        counts: &counts,
        dcache: Some(&dcache),
        strides: Some(&strides),
        plan: None, // standalone advisory: no transformation planned
    };
    println!("{}", render_report(&input));

    let particle = prog.types.record_by_name("particle").expect("particle");
    println!("---- advice for `particle` ----");
    for advice in classify(
        &prog,
        particle,
        &graphs[&particle],
        &counts,
        Some(&dcache),
        &ScenarioConfig::default(),
    ) {
        println!("  * {advice}");
    }

    // write the VCG control file next to the binary
    let vcg = render_vcg(&prog, particle, &graphs[&particle]);
    std::fs::write("particle.vcg", &vcg)?;
    println!(
        "\nVCG control file written to particle.vcg ({} bytes)",
        vcg.len()
    );
    Ok(())
}
