//! 181.mcf end-to-end: profile collection, analysis, splitting, and the
//! before/after measurement — the Table 3 mcf rows in miniature.
//!
//! Run with: `cargo run --release --example mcf_split`

use slo::analysis::WeightScheme;
use slo::pipeline::{collect_profile, compile, evaluate, PipelineConfig};
use slo::vm::VmOptions;
use slo_workloads::mcf::{build_config, McfConfig, NODE_FIELDS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // a smaller instance than the Table 3 run, for example-sized runtimes
    let prog = build_config(McfConfig {
        n: 20_000,
        iters: 60,
        skew: 0,
    });

    println!("collecting the training profile (PBO collection phase)...");
    let feedback = collect_profile(&prog)?;

    let scheme = WeightScheme::Pbo(&feedback);
    let result = compile(&prog, &scheme, &PipelineConfig::default())?;

    let node = prog.types.record_by_name("node").expect("node type");
    println!("\nnode_t field hotness (percent of hottest):");
    let rel = slo::analysis::relative_hotness(&prog, node, &scheme);
    for (f, h) in NODE_FIELDS.iter().zip(&rel) {
        println!("  {f:<14} {h:>6.1}  {}", bar(*h));
    }

    println!("\nplan for node_t: {:?}", result.plan.of(node));

    let root = result.program.types.record_by_name("node").expect("node");
    println!(
        "\nroot layout after split: {:?} ({} bytes, was {} bytes)",
        result
            .program
            .types
            .record(root)
            .fields
            .iter()
            .map(|f| f.name.as_str())
            .collect::<Vec<_>>(),
        result.program.types.layout_of(root).size,
        prog.types.layout_of(node).size,
    );

    println!("\nmeasuring on the simulated Itanium-like machine...");
    let eval = evaluate(&prog, &result.program, &VmOptions::default())?;
    println!(
        "cycles {} -> {}  ({:+.1}% on this example-sized instance; the \
         full-size Table 3 run lands near the paper's +17.3%)",
        eval.baseline_cycles,
        eval.optimized_cycles,
        eval.speedup_percent()
    );
    Ok(())
}

fn bar(pct: f64) -> String {
    let n = (pct / 5.0).round() as usize;
    "#".repeat(n.min(20))
}
