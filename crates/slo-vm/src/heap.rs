//! Byte-accurate simulated heap.
//!
//! A single flat arena models the process address space. Globals are placed
//! at the bottom; dynamic allocations grow upward with 16-byte alignment
//! (matching typical `malloc`). Addresses handed to the cache simulator are
//! arena addresses, so spatial locality in the arena *is* spatial locality
//! in the cache — which is precisely the mechanism structure layout
//! optimization exploits.

use slo_ir::ScalarKind;
use std::collections::HashMap;
use std::fmt;

/// Errors raised by memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Access through the null pointer.
    NullDeref,
    /// Access outside any live region.
    OutOfBounds {
        /// The faulting address.
        addr: u64,
        /// The access size in bytes.
        size: u64,
    },
    /// `free`/`realloc` of a pointer that is not a live allocation base.
    InvalidFree {
        /// The faulting address.
        addr: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::NullDeref => write!(f, "null pointer dereference"),
            MemError::OutOfBounds { addr, size } => {
                write!(f, "out-of-bounds access of {size} bytes at 0x{addr:x}")
            }
            MemError::InvalidFree { addr } => write!(f, "invalid free of 0x{addr:x}"),
        }
    }
}

impl std::error::Error for MemError {}

const BASE: u64 = 0x1000;
const ALIGN: u64 = 16;

/// The simulated heap / address space.
#[derive(Debug, Clone)]
pub struct Heap {
    mem: Vec<u8>,
    /// live allocations: base address -> size
    allocs: HashMap<u64, u64>,
    next: u64,
    /// lifetime counters
    total_allocated: u64,
    live_bytes: u64,
    peak_live: u64,
}

impl Default for Heap {
    fn default() -> Self {
        Self::new()
    }
}

impl Heap {
    /// Create an empty heap.
    pub fn new() -> Self {
        Heap {
            mem: Vec::new(),
            allocs: HashMap::new(),
            next: BASE,
            total_allocated: 0,
            live_bytes: 0,
            peak_live: 0,
        }
    }

    fn ensure(&mut self, end: u64) {
        let need = end as usize;
        if self.mem.len() < need {
            self.mem.resize(need.next_power_of_two().max(4096), 0);
        }
    }

    /// Allocate `size` bytes; returns the base address (16-byte aligned).
    /// Zero-size allocations return a unique non-null address.
    pub fn alloc(&mut self, size: u64) -> u64 {
        let addr = self.next;
        let eff = size.max(1);
        self.next = (addr + eff).div_ceil(ALIGN) * ALIGN;
        self.ensure(addr + eff);
        // fresh memory is zeroed (the arena starts zeroed); callers that
        // model `malloc` cost vs `calloc` cost do so in the cost model.
        self.allocs.insert(addr, eff);
        self.total_allocated += eff;
        self.live_bytes += eff;
        self.peak_live = self.peak_live.max(self.live_bytes);
        addr
    }

    /// Free an allocation.
    ///
    /// # Errors
    ///
    /// [`MemError::InvalidFree`] if `addr` is not a live allocation base;
    /// freeing null is a no-op (like C `free`).
    pub fn free(&mut self, addr: u64) -> Result<(), MemError> {
        if addr == 0 {
            return Ok(());
        }
        match self.allocs.remove(&addr) {
            Some(sz) => {
                self.live_bytes -= sz;
                Ok(())
            }
            None => Err(MemError::InvalidFree { addr }),
        }
    }

    /// Reallocate: allocates a new block, copies the overlap, frees the old.
    ///
    /// # Errors
    ///
    /// [`MemError::InvalidFree`] if `addr` is non-null and not a live base.
    pub fn realloc(&mut self, addr: u64, new_size: u64) -> Result<u64, MemError> {
        if addr == 0 {
            return Ok(self.alloc(new_size));
        }
        let old = *self
            .allocs
            .get(&addr)
            .ok_or(MemError::InvalidFree { addr })?;
        let naddr = self.alloc(new_size);
        let n = old.min(new_size) as usize;
        let (a, na) = (addr as usize, naddr as usize);
        self.mem.copy_within(a..a + n, na);
        self.free(addr)?;
        Ok(naddr)
    }

    /// Reserve a region at the bottom of the address space for globals
    /// (called once at program start, before any `alloc`).
    pub fn reserve_static(&mut self, size: u64) -> u64 {
        let addr = self.next;
        self.next = (addr + size.max(1)).div_ceil(ALIGN) * ALIGN;
        self.ensure(addr + size.max(1));
        self.allocs.insert(addr, size.max(1));
        addr
    }

    fn check(&self, addr: u64, size: u64) -> Result<(), MemError> {
        if addr == 0 {
            return Err(MemError::NullDeref);
        }
        if addr < BASE.min(0x100) || (addr + size) as usize > self.mem.len() {
            return Err(MemError::OutOfBounds { addr, size });
        }
        Ok(())
    }

    /// Read `size` bytes little-endian as an unsigned integer.
    ///
    /// # Errors
    ///
    /// Fails on null or out-of-bounds access.
    pub fn read_bytes(&self, addr: u64, size: u64) -> Result<u64, MemError> {
        self.check(addr, size)?;
        let mut v = 0u64;
        for i in 0..size {
            v |= (self.mem[(addr + i) as usize] as u64) << (8 * i);
        }
        Ok(v)
    }

    /// Write the low `size` bytes of `v` little-endian.
    ///
    /// # Errors
    ///
    /// Fails on null or out-of-bounds access.
    pub fn write_bytes(&mut self, addr: u64, size: u64, v: u64) -> Result<(), MemError> {
        self.check(addr, size)?;
        for i in 0..size {
            self.mem[(addr + i) as usize] = (v >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Read a scalar of the given kind.
    ///
    /// # Errors
    ///
    /// Fails on null or out-of-bounds access.
    pub fn read_scalar(&self, addr: u64, k: ScalarKind) -> Result<ScalarValue, MemError> {
        let raw = self.read_bytes(addr, k.size())?;
        Ok(match k {
            ScalarKind::F32 => ScalarValue::Float(f32::from_bits(raw as u32) as f64),
            ScalarKind::F64 => ScalarValue::Float(f64::from_bits(raw)),
            ScalarKind::I8 => ScalarValue::Int(raw as u8 as i8 as i64),
            ScalarKind::I16 => ScalarValue::Int(raw as u16 as i16 as i64),
            ScalarKind::I32 => ScalarValue::Int(raw as u32 as i32 as i64),
            ScalarKind::I64 => ScalarValue::Int(raw as i64),
            ScalarKind::U8 | ScalarKind::U16 | ScalarKind::U32 | ScalarKind::U64 => {
                ScalarValue::Int(raw as i64)
            }
        })
    }

    /// Write a scalar of the given kind.
    ///
    /// # Errors
    ///
    /// Fails on null or out-of-bounds access.
    pub fn write_scalar(
        &mut self,
        addr: u64,
        k: ScalarKind,
        v: ScalarValue,
    ) -> Result<(), MemError> {
        let raw = match (k, v) {
            (ScalarKind::F32, sv) => (sv.as_float() as f32).to_bits() as u64,
            (ScalarKind::F64, sv) => sv.as_float().to_bits(),
            (_, sv) => sv.as_int() as u64,
        };
        self.write_bytes(addr, k.size(), raw)
    }

    /// memcpy; regions may not overlap (workloads never need overlap).
    ///
    /// # Errors
    ///
    /// Fails on null or out-of-bounds access of either region.
    pub fn memcpy(&mut self, dst: u64, src: u64, bytes: u64) -> Result<(), MemError> {
        self.check(dst, bytes)?;
        self.check(src, bytes)?;
        let (d, s, n) = (dst as usize, src as usize, bytes as usize);
        self.mem.copy_within(s..s + n, d);
        Ok(())
    }

    /// memset.
    ///
    /// # Errors
    ///
    /// Fails on null or out-of-bounds access.
    pub fn memset(&mut self, dst: u64, val: u8, bytes: u64) -> Result<(), MemError> {
        self.check(dst, bytes)?;
        self.mem[dst as usize..(dst + bytes) as usize].fill(val);
        Ok(())
    }

    /// Total bytes ever allocated.
    pub fn total_allocated(&self) -> u64 {
        self.total_allocated
    }

    /// Peak simultaneously-live bytes.
    pub fn peak_live(&self) -> u64 {
        self.peak_live
    }

    /// Currently live bytes.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Number of live allocations.
    pub fn live_allocs(&self) -> usize {
        self.allocs.len()
    }
}

/// A scalar value crossing the heap boundary (subset of the VM value).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalarValue {
    /// Integer bits.
    Int(i64),
    /// Floating value.
    Float(f64),
}

impl ScalarValue {
    /// As integer.
    pub fn as_int(self) -> i64 {
        match self {
            ScalarValue::Int(v) => v,
            ScalarValue::Float(v) => v as i64,
        }
    }

    /// As float.
    pub fn as_float(self) -> f64 {
        match self {
            ScalarValue::Int(v) => v as f64,
            ScalarValue::Float(v) => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_aligned_nonnull() {
        let mut h = Heap::new();
        let a = h.alloc(10);
        let b = h.alloc(1);
        assert_ne!(a, 0);
        assert_eq!(a % 16, 0);
        assert_eq!(b % 16, 0);
        assert!(b > a);
        assert_eq!(h.live_allocs(), 2);
    }

    #[test]
    fn rw_roundtrip_all_scalars() {
        let mut h = Heap::new();
        let a = h.alloc(64);
        for (k, v) in [
            (ScalarKind::I8, ScalarValue::Int(-5)),
            (ScalarKind::I16, ScalarValue::Int(-300)),
            (ScalarKind::I32, ScalarValue::Int(-70000)),
            (ScalarKind::I64, ScalarValue::Int(-1 << 40)),
            (ScalarKind::U8, ScalarValue::Int(200)),
            (ScalarKind::U16, ScalarValue::Int(60000)),
            (ScalarKind::U32, ScalarValue::Int(4_000_000_000)),
            (ScalarKind::U64, ScalarValue::Int(123)),
            (ScalarKind::F32, ScalarValue::Float(1.5)),
            (ScalarKind::F64, ScalarValue::Float(-2.25)),
        ] {
            h.write_scalar(a, k, v).expect("write");
            assert_eq!(h.read_scalar(a, k).expect("read"), v, "kind {k:?}");
        }
    }

    #[test]
    fn null_deref_detected() {
        let h = Heap::new();
        assert_eq!(h.read_bytes(0, 8), Err(MemError::NullDeref));
    }

    #[test]
    fn oob_detected() {
        let mut h = Heap::new();
        let a = h.alloc(8);
        let far = a + 1 << 30;
        assert!(matches!(
            h.read_bytes(far, 8),
            Err(MemError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn free_and_invalid_free() {
        let mut h = Heap::new();
        let a = h.alloc(32);
        assert_eq!(h.live_bytes(), 32);
        h.free(a).expect("free ok");
        assert_eq!(h.live_bytes(), 0);
        assert_eq!(h.free(a), Err(MemError::InvalidFree { addr: a }));
        h.free(0).expect("free(null) is a no-op");
    }

    #[test]
    fn realloc_preserves_prefix() {
        let mut h = Heap::new();
        let a = h.alloc(16);
        h.write_bytes(a, 8, 0xdeadbeef).expect("write");
        let b = h.realloc(a, 64).expect("realloc");
        assert_eq!(h.read_bytes(b, 8).expect("read"), 0xdeadbeef);
        // old base freed
        assert_eq!(h.free(a), Err(MemError::InvalidFree { addr: a }));
    }

    #[test]
    fn realloc_null_allocates() {
        let mut h = Heap::new();
        let a = h.realloc(0, 8).expect("realloc(null)");
        assert_ne!(a, 0);
    }

    #[test]
    fn memcpy_memset() {
        let mut h = Heap::new();
        let a = h.alloc(32);
        let b = h.alloc(32);
        h.memset(a, 0xab, 16).expect("memset");
        h.memcpy(b, a, 16).expect("memcpy");
        assert_eq!(h.read_bytes(b, 1).expect("read"), 0xab);
        assert_eq!(h.read_bytes(b + 15, 1).expect("read"), 0xab);
        assert_eq!(h.read_bytes(b + 16, 1).expect("read"), 0);
    }

    #[test]
    fn stats_track_peak() {
        let mut h = Heap::new();
        let a = h.alloc(100);
        let _b = h.alloc(50);
        h.free(a).expect("free");
        let _c = h.alloc(10);
        assert_eq!(h.total_allocated(), 160);
        assert_eq!(h.peak_live(), 150);
        assert_eq!(h.live_bytes(), 60);
    }

    #[test]
    fn static_region_below_heap() {
        let mut h = Heap::new();
        let g = h.reserve_static(64);
        let a = h.alloc(8);
        assert!(g < a);
        h.write_bytes(g, 8, 7).expect("write global");
        assert_eq!(h.read_bytes(g, 8).expect("read"), 7);
    }

    #[test]
    fn zero_size_alloc_unique() {
        let mut h = Heap::new();
        let a = h.alloc(0);
        let b = h.alloc(0);
        assert_ne!(a, b);
        assert_ne!(a, 0);
    }
}
