//! Instruction cycle cost model.
//!
//! Absolute numbers are Itanium-flavoured but deliberately simple: the
//! reproduction cares about *relative* cycle counts before/after layout
//! transformation, which are dominated by memory latency differences.

/// Cycle costs charged by the interpreter in addition to cache latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Base cost of every instruction.
    pub base: u64,
    /// Extra cost of a call (frame setup, not counting the body).
    pub call_overhead: u64,
    /// Cost of a malloc/calloc/realloc call.
    pub alloc_cost: u64,
    /// Cost of a free call.
    pub free_cost: u64,
    /// Cycles to zero 8 bytes (calloc).
    pub zero_per_8bytes: u64,
    /// Stores pay `latency >> store_latency_shift` (store buffering hides
    /// most of the latency).
    pub store_latency_shift: u32,
    /// Instrumentation cost per profiled edge (edge-counter update).
    pub instrument_edge_cost: u64,
    /// Multiplier numerator for memcpy/memset per-line costs.
    pub memstream_per_line: u64,
    /// Cost of a call to an external / libc function.
    pub libc_call_cost: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            base: 1,
            call_overhead: 3,
            alloc_cost: 40,
            free_cost: 20,
            zero_per_8bytes: 1,
            store_latency_shift: 2,
            instrument_edge_cost: 2,
            memstream_per_line: 2,
            libc_call_cost: 50,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = CostModel::default();
        assert!(c.base >= 1);
        assert!(c.alloc_cost > c.base);
        assert!(c.store_latency_shift < 8);
    }
}
