//! Pre-decoded execution engine: the fast path of the interpreter.
//!
//! [`DecodedProgram::new`] flattens every defined function into a dense
//! instruction stream ([`DInstr`]) in which everything the structured
//! interpreter resolves per step is resolved once:
//!
//! * `fieldaddr` carries its byte offset, `indexaddr` its element size
//!   (no `TypeTable::layout_of`/`size_of` in the hot loop);
//! * basic-block targets are direct instruction-stream indices;
//! * scalar-kind dispatch (int vs float vs pointer load/store, cast
//!   direction) is baked into distinct opcodes;
//! * direct calls know at decode time whether the callee is defined or
//!   an external/libc function (resolved to an [`ExternFn`]);
//! * every memory-touching instruction gets a dense per-function
//!   *memory site* index, and every CFG edge a dense *edge site*
//!   index, so profile bookkeeping (stride histograms, PMU samples,
//!   edge counters) is plain `Vec` indexing instead of
//!   `HashMap<InstrRef, _>` lookups.
//!
//! The decoded engine is observationally identical to the structured
//! one in `interp.rs`: same exit values, same instruction and cycle
//! counts (flattening is strictly 1:1, so `VmOptions::step_limit`
//! behaves identically), same cache statistics (accesses happen in the
//! same order at the same addresses), and the same [`Feedback`]
//! profiles. `tests/vm_differential.rs` asserts this for every bundled
//! workload.

use crate::cache::CacheSim;
use crate::heap::{Heap, ScalarValue};
use crate::interp::{ExecError, ExecOutcome, ExecStats, VmOptions, FNPTR_BASE};
use crate::profile::Feedback;
use crate::value::Value;
use slo_ir::{BinOp, CmpOp, FuncId, Instr, Operand, Program, Reg, ScalarKind, Type};
use std::collections::HashMap;

/// Sentinel meaning "this memory site has not been executed yet" in the
/// last-address side table. Real data addresses never take this value:
/// the heap hands out low addresses and function pointers live at
/// `FNPTR_BASE + index`.
const NO_ADDR: u64 = u64::MAX;

/// External/libc call semantics, resolved from the function name once
/// at decode time (the structured engine string-matches per call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExternFn {
    /// `sqrt(f64)`.
    Sqrt,
    /// `fabs(f64)`.
    Fabs,
    /// `exp(f64)`.
    Exp,
    /// `log(f64)` (clamped away from zero).
    Log,
    /// `sin(f64)`.
    Sin,
    /// `cos(f64)`.
    Cos,
    /// `floor(f64)`.
    Floor,
    /// Integer `abs`.
    AbsInt,
    /// Any other external: a no-op returning 0.
    Nop,
}

impl ExternFn {
    fn resolve(name: &str) -> Self {
        match name {
            "sqrt" => ExternFn::Sqrt,
            "fabs" => ExternFn::Fabs,
            "exp" => ExternFn::Exp,
            "log" => ExternFn::Log,
            "sin" => ExternFn::Sin,
            "cos" => ExternFn::Cos,
            "floor" => ExternFn::Floor,
            "abs" => ExternFn::AbsInt,
            _ => ExternFn::Nop,
        }
    }

    /// Mirror of `interp.rs`'s `extern_call` semantics.
    fn call(self, args: &[Value]) -> Value {
        let x = args.first().copied().unwrap_or(Value::Float(0.0));
        match self {
            ExternFn::Sqrt => Value::Float(x.as_float().sqrt()),
            ExternFn::Fabs => Value::Float(x.as_float().abs()),
            ExternFn::Exp => Value::Float(x.as_float().exp()),
            ExternFn::Log => Value::Float(x.as_float().max(1e-300).ln()),
            ExternFn::Sin => Value::Float(x.as_float().sin()),
            ExternFn::Cos => Value::Float(x.as_float().cos()),
            ExternFn::Floor => Value::Float(x.as_float().floor()),
            ExternFn::AbsInt => Value::Int(x.as_int().abs()),
            ExternFn::Nop => Value::Int(0),
        }
    }
}

/// One pre-decoded instruction. Register numbers (`dst`) are raw `u32`
/// indices into the frame's register file; `site` fields index the
/// per-function dense profile side tables; jump targets
/// (`target_pc`/`then_pc`/`else_pc`) are instruction-stream pcs;
/// `offset`/`elem_size` are decode-time-resolved layout quantities.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum DInstr {
    /// `dst = src`.
    Assign { dst: u32, src: Operand },
    /// `dst = op lhs, rhs`.
    Bin {
        dst: u32,
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = cmp.op lhs, rhs`.
    Cmp {
        dst: u32,
        op: CmpOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// Cast to an integer scalar.
    CastInt { dst: u32, src: Operand },
    /// Cast to a float scalar.
    CastFloat { dst: u32, src: Operand },
    /// Cast to a pointer.
    CastPtr { dst: u32, src: Operand },
    /// Cast with no representation change.
    CastNop { dst: u32, src: Operand },
    /// `fieldaddr` with the byte offset resolved at decode time.
    FieldAddr {
        dst: u32,
        base: Operand,
        offset: u64,
    },
    /// `indexaddr` with the element size resolved at decode time.
    IndexAddr {
        dst: u32,
        base: Operand,
        index: Operand,
        elem_size: u64,
    },
    /// Integer scalar load.
    LoadInt {
        dst: u32,
        addr: Operand,
        kind: ScalarKind,
        site: u32,
    },
    /// Float scalar load.
    LoadFloat {
        dst: u32,
        addr: Operand,
        kind: ScalarKind,
        site: u32,
    },
    /// Pointer load.
    LoadPtr { dst: u32, addr: Operand, site: u32 },
    /// Integer scalar store.
    StoreInt {
        addr: Operand,
        value: Operand,
        kind: ScalarKind,
        site: u32,
    },
    /// Float scalar store.
    StoreFloat {
        addr: Operand,
        value: Operand,
        kind: ScalarKind,
        site: u32,
    },
    /// Pointer store.
    StorePtr {
        addr: Operand,
        value: Operand,
        site: u32,
    },
    /// Integer global load.
    GLoadInt {
        dst: u32,
        global: u32,
        kind: ScalarKind,
        site: u32,
    },
    /// Float global load.
    GLoadFloat {
        dst: u32,
        global: u32,
        kind: ScalarKind,
        site: u32,
    },
    /// Pointer global load.
    GLoadPtr { dst: u32, global: u32, site: u32 },
    /// Integer global store.
    GStoreInt {
        global: u32,
        value: Operand,
        kind: ScalarKind,
        site: u32,
    },
    /// Float global store.
    GStoreFloat {
        global: u32,
        value: Operand,
        kind: ScalarKind,
        site: u32,
    },
    /// Pointer global store.
    GStorePtr {
        global: u32,
        value: Operand,
        site: u32,
    },
    /// Address of a global.
    GAddr { dst: u32, global: u32 },
    /// Heap allocation with the element size baked in.
    Alloc {
        dst: u32,
        elem_size: u64,
        count: Operand,
        zeroed: bool,
    },
    /// Heap free.
    Free { ptr: Operand },
    /// Heap realloc with the element size baked in.
    Realloc {
        dst: u32,
        ptr: Operand,
        elem_size: u64,
        count: Operand,
    },
    /// Streaming copy.
    Memcpy {
        dst: Operand,
        src: Operand,
        bytes: Operand,
        site: u32,
    },
    /// Streaming fill.
    Memset {
        dst: Operand,
        val: Operand,
        bytes: Operand,
        site: u32,
    },
    /// Direct call to a defined function (callee known at decode time).
    CallDefined {
        dst: Option<u32>,
        callee: u32,
        args: Box<[Operand]>,
        edge_site: u32,
    },
    /// Direct call to an external/libc function.
    CallExtern {
        dst: Option<u32>,
        func: ExternFn,
        args: Box<[Operand]>,
    },
    /// Indirect call (target resolved at run time).
    CallIndirect {
        dst: Option<u32>,
        target: Operand,
        args: Box<[Operand]>,
    },
    /// Materialize a function pointer.
    FuncAddr { dst: u32, func: u32 },
    /// Unconditional jump to an instruction-stream pc.
    Jump { target_pc: u32, edge_site: u32 },
    /// Conditional branch to instruction-stream pcs.
    Branch {
        cond: Operand,
        then_pc: u32,
        else_pc: u32,
        then_site: u32,
        else_site: u32,
    },
    /// Return from the function.
    Return { value: Option<Operand> },
    /// Synthetic pad emitted when a block lacks a terminator: pops the
    /// frame like the structured engine's defensive fall-through path,
    /// without counting an instruction.
    FallThrough,
}

/// One pre-decoded function body plus the metadata needed to attribute
/// profile data back to `(block, index)` positions in the source IR.
#[derive(Debug, Clone)]
pub struct DecodedFunc {
    code: Vec<DInstr>,
    /// pc → (block, index) for fault diagnostics and pad attribution.
    src: Vec<(u32, u32)>,
    /// mem site → (block, index); length = number of memory sites.
    mem_site_src: Vec<(u32, u32)>,
    /// edge site → (from_block, to_block); call events use (b, b).
    edge_sites: Vec<(u32, u32)>,
    num_regs: u32,
    defined: bool,
}

impl DecodedFunc {
    fn external() -> Self {
        DecodedFunc {
            code: Vec::new(),
            src: Vec::new(),
            mem_site_src: Vec::new(),
            edge_sites: Vec::new(),
            num_regs: 0,
            defined: false,
        }
    }

    /// Number of decoded instructions (including synthetic pads).
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the function has no decoded body.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

/// A program flattened for the decoded engine. Build once per program
/// snapshot with [`DecodedProgram::new`]; reuse across runs (see
/// [`run_decoded`]).
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    funcs: Vec<DecodedFunc>,
    extern_fns: Vec<ExternFn>,
}

impl DecodedProgram {
    /// Flatten `prog` into dense instruction streams.
    pub fn new(prog: &Program) -> Self {
        let layouts = slo_ir::LayoutCache::new(&prog.types);
        let extern_fns = prog
            .funcs
            .iter()
            .map(|f| {
                if f.is_defined() {
                    ExternFn::Nop
                } else {
                    ExternFn::resolve(&f.name)
                }
            })
            .collect();
        let funcs = prog
            .funcs
            .iter()
            .map(|f| decode_func(prog, &layouts, f))
            .collect();
        DecodedProgram { funcs, extern_fns }
    }

    /// The decoded body of a function.
    pub fn func(&self, fid: FuncId) -> &DecodedFunc {
        &self.funcs[fid.index()]
    }

    /// Total decoded instructions across all functions.
    pub fn total_instrs(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}

fn scalar_kind(prog: &Program, ty: slo_ir::TypeId) -> Option<ScalarKind> {
    match prog.types.get(ty) {
        Type::Scalar(k) => Some(*k),
        _ => None,
    }
}

fn decode_func(prog: &Program, layouts: &slo_ir::LayoutCache, f: &slo_ir::Function) -> DecodedFunc {
    if !f.is_defined() {
        return DecodedFunc::external();
    }
    // Pass 1: compute each block's start pc. A block whose last
    // instruction is not a terminator gets one synthetic pad slot.
    let mut block_starts = Vec::with_capacity(f.blocks.len());
    let mut pc = 0u32;
    for b in &f.blocks {
        block_starts.push(pc);
        pc += b.instrs.len() as u32;
        if b.instrs.last().is_none_or(|i| !i.is_terminator()) {
            pc += 1;
        }
    }

    // Pass 2: emit.
    let mut code = Vec::with_capacity(pc as usize);
    let mut src = Vec::with_capacity(pc as usize);
    let mut mem_site_src: Vec<(u32, u32)> = Vec::new();
    let mut edge_sites: Vec<(u32, u32)> = Vec::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        let bi = bi as u32;
        for (ii, ins) in b.instrs.iter().enumerate() {
            let at = (bi, ii as u32);
            let mut mem_site = || {
                let s = mem_site_src.len() as u32;
                mem_site_src.push(at);
                s
            };
            let d = match ins {
                Instr::Assign { dst, src } => DInstr::Assign {
                    dst: dst.0,
                    src: *src,
                },
                Instr::Bin { dst, op, lhs, rhs } => DInstr::Bin {
                    dst: dst.0,
                    op: *op,
                    lhs: *lhs,
                    rhs: *rhs,
                },
                Instr::Cmp { dst, op, lhs, rhs } => DInstr::Cmp {
                    dst: dst.0,
                    op: *op,
                    lhs: *lhs,
                    rhs: *rhs,
                },
                Instr::Cast { dst, src, to, .. } => match prog.types.get(*to) {
                    Type::Scalar(k) if k.is_float() => DInstr::CastFloat {
                        dst: dst.0,
                        src: *src,
                    },
                    Type::Scalar(_) => DInstr::CastInt {
                        dst: dst.0,
                        src: *src,
                    },
                    Type::Ptr(_) | Type::FuncPtr => DInstr::CastPtr {
                        dst: dst.0,
                        src: *src,
                    },
                    _ => DInstr::CastNop {
                        dst: dst.0,
                        src: *src,
                    },
                },
                Instr::FieldAddr {
                    dst,
                    base,
                    record,
                    field,
                } => DInstr::FieldAddr {
                    dst: dst.0,
                    base: *base,
                    offset: layouts.field_offset(*record, *field),
                },
                Instr::IndexAddr {
                    dst,
                    base,
                    elem,
                    index,
                } => DInstr::IndexAddr {
                    dst: dst.0,
                    base: *base,
                    index: *index,
                    elem_size: layouts.size_of(*elem),
                },
                Instr::Load { dst, addr, ty } => match scalar_kind(prog, *ty) {
                    Some(k) if k.is_float() => DInstr::LoadFloat {
                        dst: dst.0,
                        addr: *addr,
                        kind: k,
                        site: mem_site(),
                    },
                    Some(k) => DInstr::LoadInt {
                        dst: dst.0,
                        addr: *addr,
                        kind: k,
                        site: mem_site(),
                    },
                    None => DInstr::LoadPtr {
                        dst: dst.0,
                        addr: *addr,
                        site: mem_site(),
                    },
                },
                Instr::Store { addr, value, ty } => match scalar_kind(prog, *ty) {
                    Some(k) if k.is_float() => DInstr::StoreFloat {
                        addr: *addr,
                        value: *value,
                        kind: k,
                        site: mem_site(),
                    },
                    Some(k) => DInstr::StoreInt {
                        addr: *addr,
                        value: *value,
                        kind: k,
                        site: mem_site(),
                    },
                    None => DInstr::StorePtr {
                        addr: *addr,
                        value: *value,
                        site: mem_site(),
                    },
                },
                Instr::LoadGlobal { dst, global } => {
                    let g = &prog.globals[global.index()];
                    match scalar_kind(prog, g.ty) {
                        Some(k) if k.is_float() => DInstr::GLoadFloat {
                            dst: dst.0,
                            global: global.0,
                            kind: k,
                            site: mem_site(),
                        },
                        Some(k) => DInstr::GLoadInt {
                            dst: dst.0,
                            global: global.0,
                            kind: k,
                            site: mem_site(),
                        },
                        None => DInstr::GLoadPtr {
                            dst: dst.0,
                            global: global.0,
                            site: mem_site(),
                        },
                    }
                }
                Instr::StoreGlobal { global, value } => {
                    let g = &prog.globals[global.index()];
                    match scalar_kind(prog, g.ty) {
                        Some(k) if k.is_float() => DInstr::GStoreFloat {
                            global: global.0,
                            value: *value,
                            kind: k,
                            site: mem_site(),
                        },
                        Some(k) => DInstr::GStoreInt {
                            global: global.0,
                            value: *value,
                            kind: k,
                            site: mem_site(),
                        },
                        None => DInstr::GStorePtr {
                            global: global.0,
                            value: *value,
                            site: mem_site(),
                        },
                    }
                }
                Instr::AddrOfGlobal { dst, global } => DInstr::GAddr {
                    dst: dst.0,
                    global: global.0,
                },
                Instr::Alloc {
                    dst,
                    elem,
                    count,
                    zeroed,
                } => DInstr::Alloc {
                    dst: dst.0,
                    elem_size: layouts.size_of(*elem),
                    count: *count,
                    zeroed: *zeroed,
                },
                Instr::Free { ptr } => DInstr::Free { ptr: *ptr },
                Instr::Realloc {
                    dst,
                    ptr,
                    elem,
                    count,
                } => DInstr::Realloc {
                    dst: dst.0,
                    ptr: *ptr,
                    elem_size: layouts.size_of(*elem),
                    count: *count,
                },
                Instr::Memcpy { dst, src, bytes } => DInstr::Memcpy {
                    dst: *dst,
                    src: *src,
                    bytes: *bytes,
                    site: mem_site(),
                },
                Instr::Memset { dst, val, bytes } => DInstr::Memset {
                    dst: *dst,
                    val: *val,
                    bytes: *bytes,
                    site: mem_site(),
                },
                Instr::Call { dst, callee, args } => {
                    let args: Box<[Operand]> = args.as_slice().into();
                    if prog.func(*callee).is_defined() {
                        // The (b, b) "call event" edge the structured
                        // engine records on defined direct calls.
                        let edge_site = edge_sites.len() as u32;
                        edge_sites.push((bi, bi));
                        DInstr::CallDefined {
                            dst: dst.map(|r| r.0),
                            callee: callee.0,
                            args,
                            edge_site,
                        }
                    } else {
                        DInstr::CallExtern {
                            dst: dst.map(|r| r.0),
                            func: ExternFn::resolve(&prog.func(*callee).name),
                            args,
                        }
                    }
                }
                Instr::CallIndirect {
                    dst, target, args, ..
                } => DInstr::CallIndirect {
                    dst: dst.map(|r| r.0),
                    target: *target,
                    args: args.as_slice().into(),
                },
                Instr::FuncAddr { dst, func } => DInstr::FuncAddr {
                    dst: dst.0,
                    func: func.0,
                },
                Instr::Jump { target } => {
                    let edge_site = edge_sites.len() as u32;
                    edge_sites.push((bi, target.0));
                    DInstr::Jump {
                        target_pc: block_starts[target.index()],
                        edge_site,
                    }
                }
                Instr::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let then_site = edge_sites.len() as u32;
                    edge_sites.push((bi, then_bb.0));
                    let else_site = edge_sites.len() as u32;
                    edge_sites.push((bi, else_bb.0));
                    DInstr::Branch {
                        cond: *cond,
                        then_pc: block_starts[then_bb.index()],
                        else_pc: block_starts[else_bb.index()],
                        then_site,
                        else_site,
                    }
                }
                Instr::Return { value } => DInstr::Return { value: *value },
            };
            code.push(d);
            src.push(at);
        }
        if f.blocks[bi as usize]
            .instrs
            .last()
            .is_none_or(|i| !i.is_terminator())
        {
            code.push(DInstr::FallThrough);
            src.push((bi, f.blocks[bi as usize].instrs.len() as u32));
        }
    }
    DecodedFunc {
        code,
        src,
        mem_site_src,
        edge_sites,
        num_regs: f.num_regs,
        defined: true,
    }
}

/// Run `main` of a pre-decoded program. Equivalent to
/// [`crate::run`] with the decoded engine, but lets callers amortize
/// the decode across many runs (benches, sweep drivers).
///
/// # Errors
///
/// See [`ExecError`].
pub fn run_decoded(
    prog: &Program,
    dec: &DecodedProgram,
    opts: &VmOptions,
) -> Result<ExecOutcome, ExecError> {
    let main = prog.main().ok_or(ExecError::NoMain)?;
    run_func_decoded(prog, dec, main, &[], opts)
}

/// Run an arbitrary entry function of a pre-decoded program.
///
/// # Errors
///
/// See [`ExecError`].
pub fn run_func_decoded(
    prog: &Program,
    dec: &DecodedProgram,
    entry: FuncId,
    args: &[Value],
    opts: &VmOptions,
) -> Result<ExecOutcome, ExecError> {
    let trace = opts.trace.clone();
    let mut span = trace.span("vm", "vm.run");
    span.arg("engine", "decoded");
    let mut vm = DecVm::new(prog, dec, opts.clone());
    let exit = vm.call(entry, args)?;
    let (stats, feedback) = vm.into_parts();
    span.arg("instructions", stats.instructions);
    span.arg("cycles", stats.cycles);
    Ok(ExecOutcome {
        exit,
        stats,
        feedback,
    })
}

struct DFrame {
    fid: FuncId,
    pc: u32,
    regs: Vec<Value>,
    ret_dst: Option<u32>,
}

/// Per-site accumulator for sampled d-cache events.
#[derive(Clone, Copy, Default)]
struct SampleAcc {
    samples: u64,
    misses: u64,
    total_latency: u64,
}

struct DecVm<'p> {
    prog: &'p Program,
    dec: &'p DecodedProgram,
    opts: VmOptions,
    heap: Heap,
    cache: CacheSim,
    feedback: Feedback,
    global_addr: Vec<u64>,
    stats: ExecStats,
    access_counter: u64,
    // Dense profile side tables, indexed [func][site]. Allocated only
    // when the corresponding collection flag is on.
    mem_last: Vec<Vec<u64>>,
    stride_hist: Vec<Vec<HashMap<i64, u64>>>,
    samples: Vec<Vec<SampleAcc>>,
    edge_counts: Vec<Vec<u64>>,
    entry_counts: Vec<u64>,
    last_instr: Option<(FuncId, (u32, u32))>,
    frame_pool: Vec<Vec<Value>>,
}

#[inline]
fn operand(regs: &[Value], op: Operand) -> Value {
    match op {
        Operand::Reg(Reg(r)) => regs[r as usize],
        Operand::Const(c) => c.into(),
    }
}

impl<'p> DecVm<'p> {
    fn new(prog: &'p Program, dec: &'p DecodedProgram, opts: VmOptions) -> Self {
        let mut heap = Heap::new();
        let mut global_addr = Vec::with_capacity(prog.globals.len());
        for g in &prog.globals {
            let sz = prog.types.size_of(g.ty).max(1);
            global_addr.push(heap.reserve_static(sz));
        }
        let cache = CacheSim::new(opts.cache.clone());
        let feedback = Feedback::new(opts.sample_period);
        let nfuncs = dec.funcs.len();
        let (mem_last, stride_hist, samples) = if opts.sample_dcache {
            (
                dec.funcs
                    .iter()
                    .map(|f| vec![NO_ADDR; f.mem_site_src.len()])
                    .collect(),
                dec.funcs
                    .iter()
                    .map(|f| vec![HashMap::new(); f.mem_site_src.len()])
                    .collect(),
                dec.funcs
                    .iter()
                    .map(|f| vec![SampleAcc::default(); f.mem_site_src.len()])
                    .collect(),
            )
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };
        let edge_counts = if opts.collect_edges {
            dec.funcs
                .iter()
                .map(|f| vec![0u64; f.edge_sites.len()])
                .collect()
        } else {
            Vec::new()
        };
        DecVm {
            prog,
            dec,
            opts,
            heap,
            cache,
            feedback,
            global_addr,
            stats: ExecStats::default(),
            access_counter: 0,
            mem_last,
            stride_hist,
            samples,
            edge_counts,
            entry_counts: vec![0; nfuncs],
            last_instr: None,
            frame_pool: Vec::new(),
        }
    }

    fn into_parts(mut self) -> (ExecStats, Feedback) {
        self.stats.cache = self.cache.stats().clone();
        self.stats.allocated_bytes = self.heap.total_allocated();
        self.stats.peak_live_bytes = self.heap.peak_live();
        self.stats.leaked_bytes = self.heap.live_bytes();
        for (fi, f) in self.prog.funcs.iter().enumerate() {
            let df = &self.dec.funcs[fi];
            if self.opts.collect_edges {
                let ec = self.entry_counts[fi];
                if ec > 0 {
                    self.feedback.func_mut(&f.name).entry_count += ec;
                }
                for (site, &c) in self.edge_counts[fi].iter().enumerate() {
                    if c > 0 {
                        *self
                            .feedback
                            .func_mut(&f.name)
                            .edges
                            .entry(df.edge_sites[site])
                            .or_insert(0) += c;
                    }
                }
            }
            if self.opts.sample_dcache {
                for (site, acc) in self.samples[fi].iter().enumerate() {
                    if acc.samples > 0 {
                        let s = self
                            .feedback
                            .func_mut(&f.name)
                            .samples
                            .entry(df.mem_site_src[site])
                            .or_default();
                        s.samples += acc.samples;
                        s.misses += acc.misses;
                        s.total_latency += acc.total_latency;
                    }
                }
                for (site, hist) in self.stride_hist[fi].iter().enumerate() {
                    let total: u64 = hist.values().sum();
                    let Some((&dominant, &hits)) =
                        hist.iter().max_by_key(|(&d, &c)| (c, std::cmp::Reverse(d)))
                    else {
                        continue;
                    };
                    self.feedback.func_mut(&f.name).strides.insert(
                        df.mem_site_src[site],
                        crate::profile::StrideInfo {
                            dominant,
                            hits,
                            samples: total,
                        },
                    );
                }
            }
        }
        (self.stats, self.feedback)
    }

    /// Simulate a data access; returns added latency cycles.
    #[inline]
    fn mem_access(&mut self, fid: FuncId, site: u32, addr: u64, fp: bool, is_store: bool) -> u64 {
        let r = self.cache.access(addr, fp);
        self.access_counter += 1;
        if self.opts.sample_dcache {
            let last = &mut self.mem_last[fid.index()][site as usize];
            let prev = std::mem::replace(last, addr);
            if prev != NO_ADDR {
                let delta = addr.wrapping_sub(prev) as i64;
                let hist = &mut self.stride_hist[fid.index()][site as usize];
                if hist.len() < 32 || hist.contains_key(&delta) {
                    *hist.entry(delta).or_insert(0) += 1;
                }
            }
            if self.access_counter.is_multiple_of(self.opts.sample_period) {
                let s = &mut self.samples[fid.index()][site as usize];
                s.samples += 1;
                if r.first_level_miss {
                    s.misses += 1;
                }
                s.total_latency += r.latency;
            }
        }
        if is_store {
            r.latency >> self.opts.cost.store_latency_shift
        } else {
            r.latency
        }
    }

    #[inline]
    fn record_edge(&mut self, fid: FuncId, edge_site: u32) {
        if self.opts.collect_edges {
            self.edge_counts[fid.index()][edge_site as usize] += 1;
            self.stats.cycles += self.opts.cost.instrument_edge_cost;
        }
    }

    /// Touch the cache for a streaming op and return its cycle cost.
    fn stream_cost(&mut self, fid: FuncId, site: u32, d: u64, s: u64, n: u64, copy: bool) -> u64 {
        let line = self.cache.l1_line();
        let mut cycles = n / 16 + 1;
        let mut a = d & !(line - 1);
        while a < d + n.max(1) {
            cycles += self.mem_access(fid, site, a, false, true) / 2;
            a += line;
        }
        if copy {
            let mut a = s & !(line - 1);
            while a < s + n.max(1) {
                cycles += self.mem_access(fid, site, a, false, false) / 2;
                a += line;
            }
        }
        cycles * self.opts.cost.memstream_per_line / 2 + cycles
    }

    fn push_frame(
        &mut self,
        stack: &mut Vec<DFrame>,
        fid: FuncId,
        args: &[Value],
        ret_dst: Option<u32>,
    ) -> Result<(), ExecError> {
        if stack.len() >= self.opts.call_depth_limit {
            return Err(ExecError::CallDepth);
        }
        let df = &self.dec.funcs[fid.index()];
        if !df.defined {
            return Err(ExecError::NotDefined(self.prog.func(fid).name.clone()));
        }
        let num_regs = df.num_regs as usize;
        let mut regs = self.frame_pool.pop().unwrap_or_default();
        regs.clear();
        regs.resize(num_regs, Value::Int(0));
        for (i, v) in args.iter().enumerate() {
            if i < regs.len() {
                regs[i] = *v;
            }
        }
        if self.opts.collect_edges {
            self.entry_counts[fid.index()] += 1;
        }
        stack.push(DFrame {
            fid,
            pc: 0,
            regs,
            ret_dst,
        });
        Ok(())
    }

    fn call(&mut self, entry: FuncId, args: &[Value]) -> Result<Value, ExecError> {
        self.call_inner(entry, args).map_err(|e| match e {
            ExecError::Mem(err) => match self.last_instr.take() {
                Some((fid, at)) => ExecError::MemAt {
                    err,
                    func: self.prog.func(fid).name.clone(),
                    at,
                },
                None => ExecError::Mem(err),
            },
            other => other,
        })
    }

    fn call_inner(&mut self, entry: FuncId, args: &[Value]) -> Result<Value, ExecError> {
        let mut stack: Vec<DFrame> = Vec::new();
        self.push_frame(&mut stack, entry, args, None)?;
        let mut last_ret = Value::Int(0);
        // Copy the reference out of `self` so instruction borrows don't
        // pin `self` for the duration of the loop.
        let dec: &'p DecodedProgram = self.dec;
        let base_cost = self.opts.cost.base;
        let step_limit = self.opts.effective_step_limit();
        // Sampled tracing: with the recorder disabled the sentinel is
        // u64::MAX and the per-instruction cost is one compare that
        // never fires (step_limit aborts the run long before).
        let trace = self.opts.trace.clone();
        let trace_interval = self.opts.trace_step_interval.max(1);
        let mut next_trace = if trace.is_enabled() {
            trace_interval
        } else {
            u64::MAX
        };

        'outer: while let Some(frame) = stack.last_mut() {
            let fid = frame.fid;
            let code: &'p [DInstr] = &dec.funcs[fid.index()].code;

            loop {
                let ins = &code[frame.pc as usize];
                if matches!(ins, DInstr::FallThrough) {
                    // Fell off the end of a block without a terminator:
                    // treat as return, exactly like the structured
                    // engine (no instruction counted).
                    stack.pop();
                    continue 'outer;
                }
                if self.stats.instructions >= step_limit {
                    return Err(ExecError::StepLimit);
                }
                self.stats.instructions += 1;
                self.stats.cycles += base_cost;
                if self.stats.instructions == next_trace {
                    trace.counter("vm", "vm.instructions", self.stats.instructions as f64);
                    trace.counter("vm", "vm.cycles", self.stats.cycles as f64);
                    next_trace = next_trace.saturating_add(trace_interval);
                }
                frame.pc += 1;

                match ins {
                    DInstr::Assign { dst, src } => {
                        frame.regs[*dst as usize] = operand(&frame.regs, *src);
                    }
                    DInstr::Bin { dst, op, lhs, rhs } => {
                        let a = operand(&frame.regs, *lhs);
                        let b = operand(&frame.regs, *rhs);
                        frame.regs[*dst as usize] = Value::bin(*op, a, b);
                    }
                    DInstr::Cmp { dst, op, lhs, rhs } => {
                        let a = operand(&frame.regs, *lhs);
                        let b = operand(&frame.regs, *rhs);
                        frame.regs[*dst as usize] = Value::cmp(*op, a, b);
                    }
                    DInstr::CastInt { dst, src } => {
                        let v = operand(&frame.regs, *src);
                        frame.regs[*dst as usize] = Value::Int(v.as_int());
                    }
                    DInstr::CastFloat { dst, src } => {
                        let v = operand(&frame.regs, *src);
                        frame.regs[*dst as usize] = Value::Float(v.as_float());
                    }
                    DInstr::CastPtr { dst, src } => {
                        let v = operand(&frame.regs, *src);
                        frame.regs[*dst as usize] = Value::Ptr(v.as_ptr());
                    }
                    DInstr::CastNop { dst, src } => {
                        frame.regs[*dst as usize] = operand(&frame.regs, *src);
                    }
                    DInstr::FieldAddr { dst, base, offset } => {
                        let b = operand(&frame.regs, *base).as_ptr();
                        frame.regs[*dst as usize] = Value::Ptr(b.wrapping_add(*offset));
                    }
                    DInstr::IndexAddr {
                        dst,
                        base,
                        index,
                        elem_size,
                    } => {
                        let b = operand(&frame.regs, *base).as_ptr();
                        let i = operand(&frame.regs, *index).as_int();
                        frame.regs[*dst as usize] =
                            Value::Ptr(b.wrapping_add((i as u64).wrapping_mul(*elem_size)));
                    }
                    DInstr::LoadInt {
                        dst,
                        addr,
                        kind,
                        site,
                    } => {
                        let a = operand(&frame.regs, *addr).as_ptr();
                        self.stats.loads += 1;
                        self.last_instr = Some((fid, src_at(dec, fid, frame.pc - 1)));
                        let v = match self.heap.read_scalar(a, *kind)? {
                            ScalarValue::Int(i) => Value::Int(i),
                            ScalarValue::Float(f) => Value::Float(f),
                        };
                        self.stats.cycles += self.mem_access(fid, *site, a, false, false);
                        frame.regs[*dst as usize] = v;
                    }
                    DInstr::LoadFloat {
                        dst,
                        addr,
                        kind,
                        site,
                    } => {
                        let a = operand(&frame.regs, *addr).as_ptr();
                        self.stats.loads += 1;
                        self.last_instr = Some((fid, src_at(dec, fid, frame.pc - 1)));
                        let v = match self.heap.read_scalar(a, *kind)? {
                            ScalarValue::Int(i) => Value::Int(i),
                            ScalarValue::Float(f) => Value::Float(f),
                        };
                        self.stats.cycles += self.mem_access(fid, *site, a, true, false);
                        frame.regs[*dst as usize] = v;
                    }
                    DInstr::LoadPtr { dst, addr, site } => {
                        let a = operand(&frame.regs, *addr).as_ptr();
                        self.stats.loads += 1;
                        self.last_instr = Some((fid, src_at(dec, fid, frame.pc - 1)));
                        let raw = self.heap.read_bytes(a, 8)?;
                        self.stats.cycles += self.mem_access(fid, *site, a, false, false);
                        frame.regs[*dst as usize] = Value::Ptr(raw);
                    }
                    DInstr::StoreInt {
                        addr,
                        value,
                        kind,
                        site,
                    } => {
                        let a = operand(&frame.regs, *addr).as_ptr();
                        let v = operand(&frame.regs, *value);
                        self.stats.stores += 1;
                        self.last_instr = Some((fid, src_at(dec, fid, frame.pc - 1)));
                        self.heap
                            .write_scalar(a, *kind, ScalarValue::Int(v.as_int()))?;
                        self.stats.cycles += self.mem_access(fid, *site, a, false, true);
                    }
                    DInstr::StoreFloat {
                        addr,
                        value,
                        kind,
                        site,
                    } => {
                        let a = operand(&frame.regs, *addr).as_ptr();
                        let v = operand(&frame.regs, *value);
                        self.stats.stores += 1;
                        self.last_instr = Some((fid, src_at(dec, fid, frame.pc - 1)));
                        self.heap
                            .write_scalar(a, *kind, ScalarValue::Float(v.as_float()))?;
                        self.stats.cycles += self.mem_access(fid, *site, a, true, true);
                    }
                    DInstr::StorePtr { addr, value, site } => {
                        let a = operand(&frame.regs, *addr).as_ptr();
                        let v = operand(&frame.regs, *value);
                        self.stats.stores += 1;
                        self.last_instr = Some((fid, src_at(dec, fid, frame.pc - 1)));
                        self.heap.write_bytes(a, 8, v.as_ptr())?;
                        self.stats.cycles += self.mem_access(fid, *site, a, false, true);
                    }
                    DInstr::GLoadInt {
                        dst,
                        global,
                        kind,
                        site,
                    } => {
                        let a = self.global_addr[*global as usize];
                        self.stats.loads += 1;
                        self.last_instr = Some((fid, src_at(dec, fid, frame.pc - 1)));
                        let v = match self.heap.read_scalar(a, *kind)? {
                            ScalarValue::Int(i) => Value::Int(i),
                            ScalarValue::Float(f) => Value::Float(f),
                        };
                        self.stats.cycles += self.mem_access(fid, *site, a, false, false);
                        frame.regs[*dst as usize] = v;
                    }
                    DInstr::GLoadFloat {
                        dst,
                        global,
                        kind,
                        site,
                    } => {
                        let a = self.global_addr[*global as usize];
                        self.stats.loads += 1;
                        self.last_instr = Some((fid, src_at(dec, fid, frame.pc - 1)));
                        let v = match self.heap.read_scalar(a, *kind)? {
                            ScalarValue::Int(i) => Value::Int(i),
                            ScalarValue::Float(f) => Value::Float(f),
                        };
                        self.stats.cycles += self.mem_access(fid, *site, a, true, false);
                        frame.regs[*dst as usize] = v;
                    }
                    DInstr::GLoadPtr { dst, global, site } => {
                        let a = self.global_addr[*global as usize];
                        self.stats.loads += 1;
                        self.last_instr = Some((fid, src_at(dec, fid, frame.pc - 1)));
                        let raw = self.heap.read_bytes(a, 8)?;
                        self.stats.cycles += self.mem_access(fid, *site, a, false, false);
                        frame.regs[*dst as usize] = Value::Ptr(raw);
                    }
                    DInstr::GStoreInt {
                        global,
                        value,
                        kind,
                        site,
                    } => {
                        let v = operand(&frame.regs, *value);
                        let a = self.global_addr[*global as usize];
                        self.stats.stores += 1;
                        self.last_instr = Some((fid, src_at(dec, fid, frame.pc - 1)));
                        self.heap
                            .write_scalar(a, *kind, ScalarValue::Int(v.as_int()))?;
                        self.stats.cycles += self.mem_access(fid, *site, a, false, true);
                    }
                    DInstr::GStoreFloat {
                        global,
                        value,
                        kind,
                        site,
                    } => {
                        let v = operand(&frame.regs, *value);
                        let a = self.global_addr[*global as usize];
                        self.stats.stores += 1;
                        self.last_instr = Some((fid, src_at(dec, fid, frame.pc - 1)));
                        self.heap
                            .write_scalar(a, *kind, ScalarValue::Float(v.as_float()))?;
                        self.stats.cycles += self.mem_access(fid, *site, a, true, true);
                    }
                    DInstr::GStorePtr {
                        global,
                        value,
                        site,
                    } => {
                        let v = operand(&frame.regs, *value);
                        let a = self.global_addr[*global as usize];
                        self.stats.stores += 1;
                        self.last_instr = Some((fid, src_at(dec, fid, frame.pc - 1)));
                        self.heap.write_bytes(a, 8, v.as_ptr())?;
                        self.stats.cycles += self.mem_access(fid, *site, a, false, true);
                    }
                    DInstr::GAddr { dst, global } => {
                        frame.regs[*dst as usize] = Value::Ptr(self.global_addr[*global as usize]);
                    }
                    DInstr::Alloc {
                        dst,
                        elem_size,
                        count,
                        zeroed,
                    } => {
                        if self.opts.faults.should_fire(slo_chaos::Site::VmAlloc) {
                            return Err(ExecError::Injected("heap allocation refused"));
                        }
                        let n = operand(&frame.regs, *count).as_int().max(0) as u64;
                        let bytes = n * elem_size;
                        let a = self.heap.alloc(bytes);
                        self.stats.cycles += self.opts.cost.alloc_cost;
                        if *zeroed {
                            self.stats.cycles += bytes / 8 * self.opts.cost.zero_per_8bytes;
                        }
                        frame.regs[*dst as usize] = Value::Ptr(a);
                    }
                    DInstr::Free { ptr } => {
                        let a = operand(&frame.regs, *ptr).as_ptr();
                        self.last_instr = Some((fid, src_at(dec, fid, frame.pc - 1)));
                        self.heap.free(a)?;
                        self.stats.cycles += self.opts.cost.free_cost;
                    }
                    DInstr::Realloc {
                        dst,
                        ptr,
                        elem_size,
                        count,
                    } => {
                        let a = operand(&frame.regs, *ptr).as_ptr();
                        let n = operand(&frame.regs, *count).as_int().max(0) as u64;
                        let bytes = n * elem_size;
                        self.last_instr = Some((fid, src_at(dec, fid, frame.pc - 1)));
                        let na = self.heap.realloc(a, bytes)?;
                        self.stats.cycles += self.opts.cost.alloc_cost + bytes / 16;
                        frame.regs[*dst as usize] = Value::Ptr(na);
                    }
                    DInstr::Memcpy {
                        dst,
                        src,
                        bytes,
                        site,
                    } => {
                        let d = operand(&frame.regs, *dst).as_ptr();
                        let s = operand(&frame.regs, *src).as_ptr();
                        let n = operand(&frame.regs, *bytes).as_int().max(0) as u64;
                        self.last_instr = Some((fid, src_at(dec, fid, frame.pc - 1)));
                        self.heap.memcpy(d, s, n)?;
                        self.stats.cycles += self.stream_cost(fid, *site, d, s, n, true);
                    }
                    DInstr::Memset {
                        dst,
                        val,
                        bytes,
                        site,
                    } => {
                        let d = operand(&frame.regs, *dst).as_ptr();
                        let v = operand(&frame.regs, *val).as_int() as u8;
                        let n = operand(&frame.regs, *bytes).as_int().max(0) as u64;
                        self.last_instr = Some((fid, src_at(dec, fid, frame.pc - 1)));
                        self.heap.memset(d, v, n)?;
                        self.stats.cycles += self.stream_cost(fid, *site, d, d, n, false);
                    }
                    DInstr::CallDefined {
                        dst,
                        callee,
                        args,
                        edge_site,
                    } => {
                        let argv: Vec<Value> =
                            args.iter().map(|a| operand(&frame.regs, *a)).collect();
                        self.stats.cycles += self.opts.cost.call_overhead;
                        self.record_edge(fid, *edge_site);
                        let dst = *dst;
                        let callee = FuncId(*callee);
                        self.push_frame(&mut stack, callee, &argv, dst)?;
                        continue 'outer;
                    }
                    DInstr::CallExtern { dst, func, args } => {
                        let argv: Vec<Value> =
                            args.iter().map(|a| operand(&frame.regs, *a)).collect();
                        let r = func.call(&argv);
                        self.stats.cycles += self.opts.cost.libc_call_cost;
                        if let Some(d) = dst {
                            frame.regs[*d as usize] = r;
                        }
                    }
                    DInstr::CallIndirect { dst, target, args } => {
                        let t = operand(&frame.regs, *target).as_ptr();
                        if t < FNPTR_BASE {
                            return Err(ExecError::BadIndirectTarget);
                        }
                        let callee = FuncId((t - FNPTR_BASE) as u32);
                        if callee.index() >= dec.funcs.len() {
                            return Err(ExecError::BadIndirectTarget);
                        }
                        let argv: Vec<Value> =
                            args.iter().map(|a| operand(&frame.regs, *a)).collect();
                        if dec.funcs[callee.index()].defined {
                            self.stats.cycles += self.opts.cost.call_overhead;
                            let dst = *dst;
                            self.push_frame(&mut stack, callee, &argv, dst)?;
                            continue 'outer;
                        } else {
                            let r = dec.extern_fns[callee.index()].call(&argv);
                            self.stats.cycles += self.opts.cost.libc_call_cost;
                            if let Some(d) = dst {
                                frame.regs[*d as usize] = r;
                            }
                        }
                    }
                    DInstr::FuncAddr { dst, func } => {
                        frame.regs[*dst as usize] = Value::Ptr(FNPTR_BASE + *func as u64);
                    }
                    // Jump/Branch stay inside the inner loop: the frame
                    // and code slice are unchanged, so unlike the
                    // structured engine there is no per-block re-fetch.
                    DInstr::Jump {
                        target_pc,
                        edge_site,
                    } => {
                        frame.pc = *target_pc;
                        self.record_edge(fid, *edge_site);
                    }
                    DInstr::Branch {
                        cond,
                        then_pc,
                        else_pc,
                        then_site,
                        else_site,
                    } => {
                        let c = operand(&frame.regs, *cond).is_true();
                        let (pc, site) = if c {
                            (*then_pc, *then_site)
                        } else {
                            (*else_pc, *else_site)
                        };
                        frame.pc = pc;
                        self.record_edge(fid, site);
                    }
                    DInstr::Return { value } => {
                        let v = value
                            .map(|v| operand(&frame.regs, v))
                            .unwrap_or(Value::Int(0));
                        let ret_dst = frame.ret_dst;
                        if let Some(done) = stack.pop() {
                            if self.frame_pool.len() < 64 {
                                self.frame_pool.push(done.regs);
                            }
                        }
                        last_ret = v;
                        if let Some(parent) = stack.last_mut() {
                            if let Some(d) = ret_dst {
                                parent.regs[d as usize] = v;
                            }
                        }
                        continue 'outer;
                    }
                    DInstr::FallThrough => unreachable!("handled above"),
                }
            }
        }

        Ok(last_ret)
    }
}

/// The `(block, index)` source position of the decoded instruction at
/// `pc` (for memory-fault attribution).
#[inline]
fn src_at(dec: &DecodedProgram, fid: FuncId, pc: u32) -> (u32, u32) {
    dec.funcs[fid.index()].src[pc as usize]
}
