//! Multi-level set-associative cache simulator with LRU replacement.
//!
//! The default geometry approximates the Itanium 2 / rx2600 machine the
//! paper evaluated on: 16 KB L1D with 64 B lines, 256 KB L2 with 128 B
//! lines, 6 MB L3 with 128 B lines, and a flat main-memory latency.
//! Floating-point accesses bypass L1 (Itanium's L1D does not cache FP
//! data), so "first-level" means L2 for FP and L1 for everything else —
//! exactly the attribution rule the paper describes for its d-cache
//! event counts.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes.
    pub size: u64,
    /// Line size in bytes (power of two).
    pub line: u64,
    /// Associativity (ways per set).
    pub assoc: u64,
    /// Load-to-use latency in cycles when hitting at this level.
    pub latency: u64,
}

/// Whole-hierarchy configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Cache levels, nearest first (L1, L2, L3, ...).
    pub levels: Vec<CacheLevelConfig>,
    /// Main-memory latency in cycles.
    pub memory_latency: u64,
    /// Index of the first level used by floating-point accesses
    /// (1 on Itanium: FP bypasses L1).
    pub fp_first_level: usize,
    /// Enable a next-line prefetcher: on a last-level miss, the following
    /// line is installed in every level without charge. Models the
    /// sequential prefetching that softens capacity cliffs on real
    /// hardware; off by default to match the paper-reproduction runs.
    pub next_line_prefetch: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            levels: vec![
                CacheLevelConfig {
                    size: 16 * 1024,
                    line: 64,
                    assoc: 4,
                    latency: 1,
                },
                CacheLevelConfig {
                    size: 256 * 1024,
                    line: 128,
                    assoc: 8,
                    latency: 7,
                },
                CacheLevelConfig {
                    size: 6 * 1024 * 1024,
                    line: 128,
                    assoc: 12,
                    latency: 14,
                },
            ],
            memory_latency: 200,
            fp_first_level: 1,
            next_line_prefetch: false,
        }
    }
}

/// Per-level hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Accesses that hit at this level.
    pub hits: u64,
    /// Accesses that missed at this level (and went further out).
    pub misses: u64,
}

/// Aggregate statistics for the whole hierarchy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Stats per level, nearest first.
    pub levels: Vec<LevelStats>,
    /// Accesses that went all the way to memory.
    pub memory_accesses: u64,
    /// Total accesses issued.
    pub accesses: u64,
    /// Lines installed by the next-line prefetcher.
    pub prefetches: u64,
}

/// The outcome of a single access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Load-to-use latency in cycles.
    pub latency: u64,
    /// Whether the access missed in its *first* level (L1 for integer,
    /// L2 for FP) — the paper's d-cache-miss event.
    pub first_level_miss: bool,
    /// The level that served the access (`levels.len()` = memory).
    pub served_by: usize,
}

#[derive(Debug, Clone)]
struct Level {
    cfg: CacheLevelConfig,
    sets: u64,
    line_shift: u32,
    /// tags[set * assoc + way]; u64::MAX = invalid
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    tick: u64,
}

impl Level {
    fn new(cfg: CacheLevelConfig) -> Self {
        let sets = (cfg.size / (cfg.line * cfg.assoc)).max(1);
        assert!(
            sets.is_power_of_two() && cfg.line.is_power_of_two(),
            "cache geometry must be power-of-two"
        );
        Level {
            cfg,
            sets,
            line_shift: cfg.line.trailing_zeros(),
            tags: vec![u64::MAX; (sets * cfg.assoc) as usize],
            stamps: vec![0; (sets * cfg.assoc) as usize],
            tick: 0,
        }
    }

    /// Probe and (on miss) fill. Returns whether the access hit.
    fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let block = addr >> self.line_shift;
        let set = (block & (self.sets - 1)) as usize;
        let base = set * self.cfg.assoc as usize;
        let ways = &mut self.tags[base..base + self.cfg.assoc as usize];
        for (w, tag) in ways.iter().enumerate() {
            if *tag == block {
                self.stamps[base + w] = self.tick;
                return true;
            }
        }
        // miss: evict LRU
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.cfg.assoc as usize {
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if self.stamps[base + w] < oldest {
                oldest = self.stamps[base + w];
                victim = w;
            }
        }
        self.tags[base + victim] = block;
        self.stamps[base + victim] = self.tick;
        false
    }

    fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
    }
}

/// The simulated cache hierarchy.
///
/// # Examples
///
/// ```
/// use slo_vm::{CacheConfig, CacheSim};
///
/// let mut sim = CacheSim::new(CacheConfig::default());
/// let cold = sim.access(0x1000, false);
/// assert!(cold.first_level_miss);
/// let warm = sim.access(0x1000, false);
/// assert_eq!(warm.served_by, 0); // L1 hit
/// ```
#[derive(Debug, Clone)]
pub struct CacheSim {
    levels: Vec<Level>,
    cfg: CacheConfig,
    stats: CacheStats,
}

impl CacheSim {
    /// Build a hierarchy from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if any level's set count or line size is not a power of two.
    pub fn new(cfg: CacheConfig) -> Self {
        let levels = cfg.levels.iter().copied().map(Level::new).collect();
        let stats = CacheStats {
            levels: vec![LevelStats::default(); cfg.levels.len()],
            ..CacheStats::default()
        };
        CacheSim { levels, cfg, stats }
    }

    /// Simulate one access. `fp` selects the FP path (starts at
    /// `fp_first_level`). Accesses spanning two lines are charged as one
    /// access to the first line (workload fields never straddle lines in
    /// practice because of natural alignment).
    pub fn access(&mut self, addr: u64, fp: bool) -> AccessResult {
        self.stats.accesses += 1;
        let first = if fp {
            self.cfg.fp_first_level.min(self.levels.len())
        } else {
            0
        };
        let mut first_level_miss = false;
        for i in first..self.levels.len() {
            let hit = self.levels[i].access(addr);
            if hit {
                self.stats.levels[i].hits += 1;
                return AccessResult {
                    latency: self.cfg.levels[i].latency,
                    first_level_miss,
                    served_by: i,
                };
            }
            self.stats.levels[i].misses += 1;
            if i == first {
                first_level_miss = true;
            }
        }
        self.stats.memory_accesses += 1;
        if self.cfg.next_line_prefetch {
            // install the next line everywhere, free of charge
            let line = self.cfg.levels.first().map(|l| l.line).unwrap_or(64);
            let next = addr.wrapping_add(line) & !(line - 1);
            for l in &mut self.levels {
                l.access(next);
            }
            self.stats.prefetches += 1;
        }
        AccessResult {
            latency: self.cfg.memory_latency,
            first_level_miss,
            served_by: self.levels.len(),
        }
    }

    /// Invalidate every line (e.g. between benchmark phases).
    pub fn flush(&mut self) {
        for l in &mut self.levels {
            l.flush();
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The active configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Line size of the level an integer access hits first.
    pub fn l1_line(&self) -> u64 {
        self.cfg.levels.first().map(|l| l.line).unwrap_or(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // 2 sets x 2 ways x 64B lines = 256B L1; 1KB L2
        CacheSim::new(CacheConfig {
            levels: vec![
                CacheLevelConfig {
                    size: 256,
                    line: 64,
                    assoc: 2,
                    latency: 1,
                },
                CacheLevelConfig {
                    size: 1024,
                    line: 64,
                    assoc: 4,
                    latency: 10,
                },
            ],
            memory_latency: 100,
            fp_first_level: 1,
            next_line_prefetch: false,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        let r1 = c.access(0x1000, false);
        assert!(r1.first_level_miss);
        assert_eq!(r1.latency, 100);
        assert_eq!(r1.served_by, 2);
        let r2 = c.access(0x1000, false);
        assert!(!r2.first_level_miss);
        assert_eq!(r2.latency, 1);
        assert_eq!(r2.served_by, 0);
    }

    #[test]
    fn same_line_hits() {
        let mut c = tiny();
        c.access(0x1000, false);
        let r = c.access(0x103f, false); // same 64B line
        assert_eq!(r.served_by, 0);
        let r = c.access(0x1040, false); // next line
        assert!(r.first_level_miss);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // set index = (addr>>6) & 1. Use addresses mapping to set 0:
        let a = 0x0000u64;
        let b = 0x0080;
        let d = 0x0100;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is MRU
        c.access(d, false); // evicts b (LRU)
        let r = c.access(a, false);
        assert_eq!(r.served_by, 0, "a must still be in L1");
        let r = c.access(b, false);
        assert_ne!(r.served_by, 0, "b must have been evicted from L1");
    }

    #[test]
    fn fp_bypasses_l1() {
        let mut c = tiny();
        let r = c.access(0x2000, true);
        assert!(r.first_level_miss); // missed L2 (its first level)
        assert_eq!(r.served_by, 2);
        let r = c.access(0x2000, true);
        assert_eq!(r.served_by, 1, "fp hit should be served by L2");
        assert_eq!(r.latency, 10);
        // an integer access to the same line must still miss L1
        let r = c.access(0x2000, false);
        assert!(r.first_level_miss);
        assert_eq!(r.served_by, 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = tiny();
        c.access(0x1000, false);
        c.access(0x1000, false);
        c.access(0x5000, false);
        let s = c.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.levels[0].hits, 1);
        assert_eq!(s.levels[0].misses, 2);
        assert_eq!(s.memory_accesses, 2);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0x1000, false);
        c.flush();
        let r = c.access(0x1000, false);
        assert!(r.first_level_miss);
        assert_eq!(r.served_by, 2);
    }

    #[test]
    fn default_config_is_itanium_like() {
        let cfg = CacheConfig::default();
        assert_eq!(cfg.levels.len(), 3);
        assert_eq!(cfg.levels[0].size, 16 * 1024);
        assert_eq!(cfg.levels[1].line, 128);
        assert_eq!(cfg.levels[2].size, 6 * 1024 * 1024);
        assert_eq!(cfg.fp_first_level, 1);
        let _ = CacheSim::new(cfg); // geometry must be constructible
    }

    #[test]
    fn next_line_prefetch_helps_sequential() {
        let mut cfg = CacheConfig {
            levels: vec![CacheLevelConfig {
                size: 256,
                line: 64,
                assoc: 2,
                latency: 1,
            }],
            memory_latency: 100,
            fp_first_level: 0,
            next_line_prefetch: true,
        };
        let mut with = CacheSim::new(cfg.clone());
        cfg.next_line_prefetch = false;
        let mut without = CacheSim::new(cfg);
        // big sequential sweep: every line misses without prefetch,
        // every *other* line misses with it
        for i in 0..256u64 {
            with.access(0x10000 + i * 64, false);
            without.access(0x10000 + i * 64, false);
        }
        assert!(
            with.stats().memory_accesses < without.stats().memory_accesses / 2 + 2,
            "prefetch {} vs plain {}",
            with.stats().memory_accesses,
            without.stats().memory_accesses
        );
        assert!(with.stats().prefetches > 0);
    }

    #[test]
    fn capacity_eviction_over_working_set() {
        let mut c = tiny(); // L1 = 256B
                            // touch 1KB (16 lines) — exceeds L1, fits L2
        for i in 0..16u64 {
            c.access(0x4000 + i * 64, false);
        }
        // second pass: all L1 misses impossible to avoid fully (capacity),
        // but L2 must hold everything.
        let mut l2_or_better = 0;
        for i in 0..16u64 {
            let r = c.access(0x4000 + i * 64, false);
            if r.served_by <= 1 {
                l2_or_better += 1;
            }
        }
        assert_eq!(l2_or_better, 16);
    }
}
