//! # slo-vm — execution substrate: interpreter, cache simulator, profiler
//!
//! Executes `slo-ir` programs on a byte-accurate simulated heap with an
//! Itanium-flavoured multi-level cache model, standing in for the rx2600
//! hardware of *"Practical Structure Layout Optimization and Advice"*
//! (CGO 2006).
//!
//! Three capabilities matter for the reproduction:
//!
//! 1. **Cycle-level timing** ([`interp`] + [`cache`] + [`cost`]): every
//!    load/store is resolved against a set-associative LRU hierarchy over
//!    real simulated addresses, so structure-layout changes move cycle
//!    counts for the same mechanical reason they do on hardware.
//! 2. **Edge profiling** ([`profile::Feedback`]): the PBO collection
//!    phase — compiler-inserted CFG edge counters.
//! 3. **PMU sampling** (d-cache miss/latency events attributed to
//!    individual loads and stores), the HP Caliper stand-in feeding the
//!    paper's DMISS/DLAT columns and the advisory tool.
//!
//! # Examples
//!
//! ```
//! use slo_ir::parser::parse;
//! use slo_vm::{run, Value, VmOptions};
//!
//! let prog = parse(
//!     "func main() -> i64 {\nbb0:\n  r0 = add 40, 2\n  ret r0\n}\n",
//! ).expect("valid source");
//! let out = run(&prog, &VmOptions::default()).expect("runs");
//! assert_eq!(out.exit, Value::Int(42));
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod cost;
pub mod decode;
pub mod heap;
pub mod interp;
pub mod profile;
pub mod value;

pub use cache::{AccessResult, CacheConfig, CacheLevelConfig, CacheSim, CacheStats, LevelStats};
pub use cost::CostModel;
pub use decode::{run_decoded, run_func_decoded, DecodedProgram};
pub use heap::{Heap, MemError, ScalarValue};
pub use interp::{
    run, run_func, Engine, ExecError, ExecOutcome, ExecStats, VmOptions, VmOptionsBuilder,
};
pub use profile::{DcacheSample, Feedback, FeedbackParseError, FuncProfile};
pub use value::Value;
