//! Runtime values and their arithmetic semantics.

use slo_ir::{BinOp, CmpOp, Const};
use std::fmt;

/// A runtime value held in a virtual register.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer (all integer widths are computed in 64 bits).
    Int(i64),
    /// IEEE double (f32 values are widened).
    Float(f64),
    /// A pointer into the simulated address space (0 = null).
    Ptr(u64),
}

impl Value {
    /// The canonical null pointer.
    pub const NULL: Value = Value::Ptr(0);

    /// Interpret as an integer (pointers expose their address bits).
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Float(v) => v as i64,
            Value::Ptr(a) => a as i64,
        }
    }

    /// Interpret as a float.
    pub fn as_float(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Float(v) => v,
            Value::Ptr(a) => a as f64,
        }
    }

    /// Interpret as an address.
    pub fn as_ptr(self) -> u64 {
        match self {
            Value::Int(v) => v as u64,
            Value::Float(v) => v as u64,
            Value::Ptr(a) => a,
        }
    }

    /// Truthiness for branches: nonzero / non-null.
    pub fn is_true(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Float(v) => v != 0.0,
            Value::Ptr(a) => a != 0,
        }
    }

    /// Evaluate a binary operation with C-like promotion rules:
    /// float dominates int; pointer arithmetic is byte-granular.
    pub fn bin(op: BinOp, a: Value, b: Value) -> Value {
        use BinOp::*;
        match (a, b) {
            (Value::Ptr(p), other) if matches!(op, Add | Sub) => {
                let d = other.as_int();
                match op {
                    Add => Value::Ptr(p.wrapping_add(d as u64)),
                    Sub => match other {
                        Value::Ptr(q) => Value::Int(p.wrapping_sub(q) as i64),
                        _ => Value::Ptr(p.wrapping_sub(d as u64)),
                    },
                    _ => unreachable!(),
                }
            }
            (other, Value::Ptr(p)) if op == Add => {
                Value::Ptr(p.wrapping_add(other.as_int() as u64))
            }
            (Value::Float(_), _) | (_, Value::Float(_)) => {
                let x = a.as_float();
                let y = b.as_float();
                match op {
                    Add => Value::Float(x + y),
                    Sub => Value::Float(x - y),
                    Mul => Value::Float(x * y),
                    Div => Value::Float(x / y),
                    Rem => Value::Float(x % y),
                    // bitwise on floats degrades to integer semantics
                    _ => Value::bin(op, Value::Int(x as i64), Value::Int(y as i64)),
                }
            }
            _ => {
                let x = a.as_int();
                let y = b.as_int();
                Value::Int(match op {
                    Add => x.wrapping_add(y),
                    Sub => x.wrapping_sub(y),
                    Mul => x.wrapping_mul(y),
                    Div => {
                        if y == 0 {
                            0
                        } else {
                            x.wrapping_div(y)
                        }
                    }
                    Rem => {
                        if y == 0 {
                            0
                        } else {
                            x.wrapping_rem(y)
                        }
                    }
                    And => x & y,
                    Or => x | y,
                    Xor => x ^ y,
                    Shl => x.wrapping_shl(y as u32),
                    Shr => x.wrapping_shr(y as u32),
                })
            }
        }
    }

    /// Evaluate a comparison, producing `Int(0)` or `Int(1)`.
    pub fn cmp(op: CmpOp, a: Value, b: Value) -> Value {
        let r = match (a, b) {
            (Value::Float(_), _) | (_, Value::Float(_)) => {
                let x = a.as_float();
                let y = b.as_float();
                match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                }
            }
            (Value::Ptr(x), Value::Ptr(y)) => cmp_int(op, x as i64, y as i64),
            _ => cmp_int(op, a.as_int(), b.as_int()),
        };
        Value::Int(r as i64)
    }
}

fn cmp_int(op: CmpOp, x: i64, y: i64) -> bool {
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

impl From<Const> for Value {
    fn from(c: Const) -> Self {
        match c {
            Const::Int(v) => Value::Int(v),
            Const::Float(v) => Value::Float(v),
            Const::Null => Value::NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Ptr(a) => write!(f, "0x{a:x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arithmetic() {
        assert_eq!(
            Value::bin(BinOp::Add, Value::Int(2), Value::Int(3)),
            Value::Int(5)
        );
        assert_eq!(
            Value::bin(BinOp::Mul, Value::Int(-4), Value::Int(3)),
            Value::Int(-12)
        );
        assert_eq!(
            Value::bin(BinOp::Div, Value::Int(7), Value::Int(2)),
            Value::Int(3)
        );
        // division by zero is defined as 0 in the VM
        assert_eq!(
            Value::bin(BinOp::Div, Value::Int(7), Value::Int(0)),
            Value::Int(0)
        );
        assert_eq!(
            Value::bin(BinOp::Rem, Value::Int(7), Value::Int(0)),
            Value::Int(0)
        );
    }

    #[test]
    fn float_promotion() {
        assert_eq!(
            Value::bin(BinOp::Add, Value::Int(1), Value::Float(0.5)),
            Value::Float(1.5)
        );
        assert_eq!(
            Value::bin(BinOp::Div, Value::Float(1.0), Value::Float(4.0)),
            Value::Float(0.25)
        );
    }

    #[test]
    fn pointer_arithmetic() {
        let p = Value::Ptr(0x1000);
        assert_eq!(Value::bin(BinOp::Add, p, Value::Int(8)), Value::Ptr(0x1008));
        assert_eq!(Value::bin(BinOp::Add, Value::Int(8), p), Value::Ptr(0x1008));
        assert_eq!(Value::bin(BinOp::Sub, p, Value::Int(8)), Value::Ptr(0xff8));
        assert_eq!(
            Value::bin(BinOp::Sub, Value::Ptr(0x1010), p),
            Value::Int(0x10)
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            Value::cmp(CmpOp::Lt, Value::Int(1), Value::Int(2)),
            Value::Int(1)
        );
        assert_eq!(
            Value::cmp(CmpOp::Ge, Value::Float(1.5), Value::Int(2)),
            Value::Int(0)
        );
        assert_eq!(
            Value::cmp(CmpOp::Eq, Value::Ptr(0), Value::NULL),
            Value::Int(1)
        );
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(-1).is_true());
        assert!(!Value::Int(0).is_true());
        assert!(!Value::Float(0.0).is_true());
        assert!(Value::Ptr(0x10).is_true());
        assert!(!Value::NULL.is_true());
    }

    #[test]
    fn const_conversion() {
        assert_eq!(Value::from(Const::Int(3)), Value::Int(3));
        assert_eq!(Value::from(Const::Float(2.5)), Value::Float(2.5));
        assert_eq!(Value::from(Const::Null), Value::NULL);
    }

    #[test]
    fn shifts_and_bitwise() {
        assert_eq!(
            Value::bin(BinOp::Shl, Value::Int(1), Value::Int(4)),
            Value::Int(16)
        );
        assert_eq!(
            Value::bin(BinOp::And, Value::Int(0b1100), Value::Int(0b1010)),
            Value::Int(0b1000)
        );
        assert_eq!(
            Value::bin(BinOp::Xor, Value::Int(0b1100), Value::Int(0b1010)),
            Value::Int(0b0110)
        );
    }
}
