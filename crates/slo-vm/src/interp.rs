//! The IR interpreter with cycle accounting, cache simulation, edge
//! profiling and PMU-style d-cache sampling.
//!
//! Running a program yields an [`ExecOutcome`]: the exit value, execution
//! statistics (instructions, simulated cycles, cache behaviour, heap
//! high-water marks) and — when enabled — a [`Feedback`] profile that the
//! compiler-side analyses consume (the paper's PBO collection phase with
//! HP Caliper attached).

use crate::cache::{CacheConfig, CacheSim, CacheStats};
use crate::cost::CostModel;
use crate::heap::{Heap, MemError, ScalarValue};
use crate::profile::Feedback;
use crate::value::Value;
use slo_ir::{BlockId, FuncId, FuncKind, Instr, InstrRef, Operand, Program, Reg, ScalarKind, Type};
use std::fmt;

/// Which execution engine runs the program.
///
/// Both engines are observationally identical (exit values, stats,
/// profiles); the decoded engine is the fast default, the structured
/// engine walks the IR directly and is kept as the reference
/// implementation for differential testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Pre-decoded flat instruction stream (see [`crate::decode`]).
    #[default]
    Decoded,
    /// Structured IR walker (the original engine).
    Structured,
}

/// Interpreter options.
#[derive(Debug, Clone)]
pub struct VmOptions {
    /// Cache hierarchy configuration.
    pub cache: CacheConfig,
    /// Instruction cost model.
    pub cost: CostModel,
    /// Collect CFG edge counts (compiler instrumentation present).
    pub collect_edges: bool,
    /// Collect sampled d-cache events (PMU sampling attached).
    pub sample_dcache: bool,
    /// Sample every Nth memory access (1 = all).
    pub sample_period: u64,
    /// Abort after this many executed instructions.
    pub step_limit: u64,
    /// Abort beyond this call depth.
    pub call_depth_limit: usize,
    /// Which execution engine to use.
    pub engine: Engine,
    /// Trace recorder. The default (disabled) recorder is a no-op; an
    /// enabled recorder gets a `vm.run` span per run plus sampled
    /// instruction/cycle counters every [`trace_step_interval`] steps.
    ///
    /// [`trace_step_interval`]: VmOptions::trace_step_interval
    pub trace: slo_obs::Recorder,
    /// Steps between sampled counter events when `trace` is enabled —
    /// sampling keeps a 100M-instruction traced run bounded.
    pub trace_step_interval: u64,
    /// Fault-injection plan. The default (disabled) plan costs one
    /// branch at each site; an enabled plan can refuse heap
    /// allocations ([`ExecError::Injected`]) and jitter the effective
    /// step limit downward at run start.
    pub faults: slo_chaos::FaultPlan,
}

impl Default for VmOptions {
    fn default() -> Self {
        VmOptions {
            cache: CacheConfig::default(),
            cost: CostModel::default(),
            collect_edges: false,
            sample_dcache: false,
            sample_period: 97,
            step_limit: 2_000_000_000,
            call_depth_limit: 10_000,
            engine: Engine::default(),
            trace: slo_obs::Recorder::disabled(),
            trace_step_interval: 1_000_000,
            faults: slo_chaos::FaultPlan::disabled(),
        }
    }
}

impl VmOptions {
    /// Options for a plain (uninstrumented) timing run.
    pub fn plain() -> Self {
        Self::default()
    }

    /// Options for a PBO collection run: edge instrumentation + sampling.
    pub fn profiling() -> Self {
        VmOptions {
            collect_edges: true,
            sample_dcache: true,
            ..Self::default()
        }
    }

    /// Options for sampling without instrumentation (the paper's DMISS.NO
    /// configuration).
    pub fn sampling_only() -> Self {
        VmOptions {
            collect_edges: false,
            sample_dcache: true,
            ..Self::default()
        }
    }

    /// The same options, forced onto the structured (reference) engine.
    pub fn structured(mut self) -> Self {
        self.engine = Engine::Structured;
        self
    }

    /// Start building options from the defaults — the one construction
    /// path shared by the CLI, batch service, fuzzer and bench drivers.
    /// Plain field-struct literals over `Default` keep compiling.
    pub fn builder() -> VmOptionsBuilder {
        VmOptionsBuilder {
            opts: Self::default(),
        }
    }

    /// The step limit this run actually gets: the configured
    /// [`step_limit`], shaved by up to half when the fault plan's
    /// step-jitter site fires. Queried once per run by both engines;
    /// jitter only ever *lowers* the limit, so a disabled plan
    /// preserves the exact `==limit` completion boundary.
    ///
    /// [`step_limit`]: VmOptions::step_limit
    pub fn effective_step_limit(&self) -> u64 {
        if self.faults.should_fire(slo_chaos::Site::VmStepJitter) {
            let shave = self
                .faults
                .magnitude(slo_chaos::Site::VmStepJitter, self.step_limit / 2);
            self.step_limit - shave
        } else {
            self.step_limit
        }
    }
}

/// Builder for [`VmOptions`] (see [`VmOptions::builder`]).
#[derive(Debug, Clone)]
pub struct VmOptionsBuilder {
    opts: VmOptions,
}

impl VmOptionsBuilder {
    /// Replace the cache hierarchy configuration.
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.opts.cache = cache;
        self
    }

    /// Replace the instruction cost model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.opts.cost = cost;
        self
    }

    /// Collect CFG edge counts (PBO instrumentation).
    pub fn collect_edges(mut self, on: bool) -> Self {
        self.opts.collect_edges = on;
        self
    }

    /// Collect sampled d-cache events (PMU sampling).
    pub fn sample_dcache(mut self, on: bool) -> Self {
        self.opts.sample_dcache = on;
        self
    }

    /// Sample every `n`th memory access (1 = all).
    pub fn sample_period(mut self, n: u64) -> Self {
        self.opts.sample_period = n;
        self
    }

    /// Abort after `n` executed instructions (per-request step budget).
    pub fn step_limit(mut self, n: u64) -> Self {
        self.opts.step_limit = n;
        self
    }

    /// Abort beyond this call depth.
    pub fn call_depth_limit(mut self, n: usize) -> Self {
        self.opts.call_depth_limit = n;
        self
    }

    /// Select the execution engine.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.opts.engine = engine;
        self
    }

    /// Attach a trace recorder (disabled recorders cost one branch).
    pub fn trace(mut self, rec: slo_obs::Recorder) -> Self {
        self.opts.trace = rec;
        self
    }

    /// Steps between sampled counter events under an enabled recorder.
    pub fn trace_step_interval(mut self, n: u64) -> Self {
        self.opts.trace_step_interval = n.max(1);
        self
    }

    /// Attach a fault-injection plan (disabled plans cost one branch
    /// per site).
    pub fn faults(mut self, plan: slo_chaos::FaultPlan) -> Self {
        self.opts.faults = plan;
        self
    }

    /// Finish.
    pub fn build(self) -> VmOptions {
        self.opts
    }
}

/// Execution statistics of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Executed IR instructions.
    pub instructions: u64,
    /// Simulated machine cycles.
    pub cycles: u64,
    /// Executed loads.
    pub loads: u64,
    /// Executed stores.
    pub stores: u64,
    /// Cache hierarchy statistics.
    pub cache: CacheStats,
    /// Total bytes ever heap-allocated.
    pub allocated_bytes: u64,
    /// Peak live heap bytes.
    pub peak_live_bytes: u64,
    /// Heap bytes still live when the program exited (its leaks).
    pub leaked_bytes: u64,
}

/// Result of a successful run.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The value returned by `main` (or the entry function).
    pub exit: Value,
    /// Statistics.
    pub stats: ExecStats,
    /// Collected profile (empty unless collection was enabled).
    pub feedback: Feedback,
}

/// Runtime errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A memory fault.
    Mem(MemError),
    /// A memory fault with the faulting instruction's location.
    MemAt {
        /// The underlying fault.
        err: MemError,
        /// Function name.
        func: String,
        /// Instruction position (block and index).
        at: (u32, u32),
    },
    /// The step limit was exceeded.
    StepLimit,
    /// The call-depth limit was exceeded.
    CallDepth,
    /// The program has no `main`.
    NoMain,
    /// Attempt to execute a function without a body.
    NotDefined(String),
    /// An indirect call through a non-function value.
    BadIndirectTarget,
    /// A fault injected by an enabled [`slo_chaos::FaultPlan`] (chaos
    /// campaigns only; never raised with the default disabled plan).
    Injected(&'static str),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Mem(e) => write!(f, "memory error: {e}"),
            ExecError::MemAt { err, func, at } => {
                write!(f, "memory error: {err} at `{func}` bb{}:{}", at.0, at.1)
            }
            ExecError::StepLimit => write!(f, "step limit exceeded"),
            ExecError::CallDepth => write!(f, "call depth limit exceeded"),
            ExecError::NoMain => write!(f, "program has no `main` function"),
            ExecError::NotDefined(n) => write!(f, "function `{n}` has no body"),
            ExecError::BadIndirectTarget => write!(f, "indirect call target is not a function"),
            ExecError::Injected(what) => write!(f, "injected fault: {what}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<MemError> for ExecError {
    fn from(e: MemError) -> Self {
        ExecError::Mem(e)
    }
}

/// Run `main` with no arguments.
///
/// # Errors
///
/// See [`ExecError`].
pub fn run(prog: &Program, opts: &VmOptions) -> Result<ExecOutcome, ExecError> {
    let main = prog.main().ok_or(ExecError::NoMain)?;
    run_func(prog, main, &[], opts)
}

/// Run an arbitrary entry function with arguments.
///
/// # Errors
///
/// See [`ExecError`].
pub fn run_func(
    prog: &Program,
    entry: FuncId,
    args: &[Value],
    opts: &VmOptions,
) -> Result<ExecOutcome, ExecError> {
    match opts.engine {
        Engine::Decoded => {
            let dec = crate::decode::DecodedProgram::new(prog);
            crate::decode::run_func_decoded(prog, &dec, entry, args, opts)
        }
        Engine::Structured => {
            let trace = opts.trace.clone();
            let mut span = trace.span("vm", "vm.run");
            span.arg("engine", "structured");
            let mut vm = Vm::new(prog, opts.clone());
            let exit = vm.call(entry, args)?;
            let (stats, feedback) = vm.into_parts();
            span.arg("instructions", stats.instructions);
            span.arg("cycles", stats.cycles);
            Ok(ExecOutcome {
                exit,
                stats,
                feedback,
            })
        }
    }
}

struct Frame {
    fid: FuncId,
    block: BlockId,
    idx: usize,
    regs: Vec<Value>,
    ret_dst: Option<Reg>,
}

// Function-pointer values are encoded as addresses in a reserved range so
// they are distinguishable from heap pointers.
pub(crate) const FNPTR_BASE: u64 = 0xF000_0000_0000_0000;

struct Vm<'p> {
    prog: &'p Program,
    opts: VmOptions,
    heap: Heap,
    cache: CacheSim,
    feedback: Feedback,
    global_addr: Vec<u64>,
    stats: ExecStats,
    access_counter: u64,
    /// last observed address per instruction (stride collection).
    last_addr: std::collections::HashMap<InstrRef, u64>,
    /// per-instruction stride histograms (delta -> count).
    stride_hist: std::collections::HashMap<InstrRef, std::collections::HashMap<i64, u64>>,
    /// function + (block, index) of the instruction being executed
    /// (for memory-fault diagnostics).
    last_instr: Option<(FuncId, (u32, u32))>,
    /// recycled register files (avoids a heap allocation per call).
    frame_pool: Vec<Vec<Value>>,
}

impl<'p> Vm<'p> {
    fn new(prog: &'p Program, opts: VmOptions) -> Self {
        let mut heap = Heap::new();
        let mut global_addr = Vec::with_capacity(prog.globals.len());
        for g in &prog.globals {
            let sz = prog.types.size_of(g.ty).max(1);
            global_addr.push(heap.reserve_static(sz));
        }
        let cache = CacheSim::new(opts.cache.clone());
        let feedback = Feedback::new(opts.sample_period);
        Vm {
            prog,
            opts,
            heap,
            cache,
            feedback,
            global_addr,
            stats: ExecStats::default(),
            access_counter: 0,
            last_addr: std::collections::HashMap::new(),
            stride_hist: std::collections::HashMap::new(),
            last_instr: None,
            frame_pool: Vec::new(),
        }
    }

    fn into_parts(mut self) -> (ExecStats, Feedback) {
        self.stats.cache = self.cache.stats().clone();
        self.stats.allocated_bytes = self.heap.total_allocated();
        self.stats.peak_live_bytes = self.heap.peak_live();
        self.stats.leaked_bytes = self.heap.live_bytes();
        // fold the stride histograms into the feedback file; ties on
        // the count break toward the smallest delta so both engines
        // (and repeated runs) report the same dominant stride
        for (at, hist) in &self.stride_hist {
            let total: u64 = hist.values().sum();
            let Some((&dominant, &hits)) =
                hist.iter().max_by_key(|(&d, &c)| (c, std::cmp::Reverse(d)))
            else {
                continue;
            };
            let name = &self.prog.func(at.func).name;
            self.feedback.func_mut(name).strides.insert(
                (at.block.0, at.index),
                crate::profile::StrideInfo {
                    dominant,
                    hits,
                    samples: total,
                },
            );
        }
        (self.stats, self.feedback)
    }

    fn operand(&self, frame: &Frame, op: Operand) -> Value {
        match op {
            Operand::Reg(Reg(r)) => frame.regs[r as usize],
            Operand::Const(c) => c.into(),
        }
    }

    fn scalar_kind(&self, ty: slo_ir::TypeId) -> Option<ScalarKind> {
        match self.prog.types.get(ty) {
            Type::Scalar(k) => Some(*k),
            _ => None,
        }
    }

    /// Simulate a data access; returns added latency cycles for loads.
    fn mem_access(&mut self, at: InstrRef, addr: u64, fp: bool, is_store: bool) -> u64 {
        let r = self.cache.access(addr, fp);
        self.access_counter += 1;
        if self.opts.sample_dcache {
            // stride collection: delta between consecutive executions of
            // the same instruction (kept for every access — strides need
            // consecutive pairs, unlike the subsampled event counts)
            if let Some(prev) = self.last_addr.insert(at, addr) {
                let delta = addr.wrapping_sub(prev) as i64;
                let hist = self.stride_hist.entry(at).or_default();
                if hist.len() < 32 || hist.contains_key(&delta) {
                    *hist.entry(delta).or_insert(0) += 1;
                }
            }
        }
        if self.opts.sample_dcache && self.access_counter.is_multiple_of(self.opts.sample_period) {
            let name = &self.prog.func(at.func).name;
            let s = self
                .feedback
                .func_mut(name)
                .samples
                .entry((at.block.0, at.index))
                .or_default();
            s.samples += 1;
            if r.first_level_miss {
                s.misses += 1;
            }
            s.total_latency += r.latency;
        }
        if is_store {
            r.latency >> self.opts.cost.store_latency_shift
        } else {
            r.latency
        }
    }

    fn record_edge(&mut self, fid: FuncId, from: BlockId, to: BlockId) {
        if self.opts.collect_edges {
            let name = &self.prog.func(fid).name;
            *self
                .feedback
                .func_mut(name)
                .edges
                .entry((from.0, to.0))
                .or_insert(0) += 1;
            self.stats.cycles += self.opts.cost.instrument_edge_cost;
        }
    }

    fn call(&mut self, entry: FuncId, args: &[Value]) -> Result<Value, ExecError> {
        self.call_inner(entry, args).map_err(|e| match e {
            ExecError::Mem(err) => match self.last_instr.take() {
                Some((fid, at)) => ExecError::MemAt {
                    err,
                    func: self.prog.func(fid).name.clone(),
                    at,
                },
                None => ExecError::Mem(err),
            },
            other => other,
        })
    }

    fn call_inner(&mut self, entry: FuncId, args: &[Value]) -> Result<Value, ExecError> {
        let mut stack: Vec<Frame> = Vec::new();
        self.push_frame(&mut stack, entry, args, None)?;
        let mut last_ret = Value::Int(0);
        let step_limit = self.opts.effective_step_limit();

        'outer: while let Some(frame) = stack.last_mut() {
            let fid = frame.fid;
            let func = self.prog.func(fid);
            let block = &func.blocks[frame.block.index()];

            // Execute instructions of the current block from frame.idx.
            while frame.idx < block.instrs.len() {
                if self.stats.instructions >= step_limit {
                    return Err(ExecError::StepLimit);
                }
                self.stats.instructions += 1;
                let at = InstrRef {
                    func: fid,
                    block: frame.block,
                    index: frame.idx as u32,
                };
                self.last_instr = Some((fid, (at.block.0, at.index)));
                let ins = &block.instrs[frame.idx];
                frame.idx += 1;
                self.stats.cycles += self.opts.cost.base;

                match ins {
                    Instr::Assign { dst, src } => {
                        let v = self.operand(frame, *src);
                        frame.regs[dst.0 as usize] = v;
                    }
                    Instr::Bin { dst, op, lhs, rhs } => {
                        let a = self.operand(frame, *lhs);
                        let b = self.operand(frame, *rhs);
                        frame.regs[dst.0 as usize] = Value::bin(*op, a, b);
                    }
                    Instr::Cmp { dst, op, lhs, rhs } => {
                        let a = self.operand(frame, *lhs);
                        let b = self.operand(frame, *rhs);
                        frame.regs[dst.0 as usize] = Value::cmp(*op, a, b);
                    }
                    Instr::Cast { dst, src, to, .. } => {
                        let v = self.operand(frame, *src);
                        frame.regs[dst.0 as usize] = match self.prog.types.get(*to) {
                            Type::Scalar(k) if k.is_float() => Value::Float(v.as_float()),
                            Type::Scalar(_) => Value::Int(v.as_int()),
                            Type::Ptr(_) | Type::FuncPtr => Value::Ptr(v.as_ptr()),
                            _ => v,
                        };
                    }
                    Instr::FieldAddr {
                        dst,
                        base,
                        record,
                        field,
                    } => {
                        let b = self.operand(frame, *base).as_ptr();
                        let off = self.prog.types.layout_of(*record).offsets[*field as usize];
                        frame.regs[dst.0 as usize] = Value::Ptr(b.wrapping_add(off));
                    }
                    Instr::IndexAddr {
                        dst,
                        base,
                        elem,
                        index,
                    } => {
                        let b = self.operand(frame, *base).as_ptr();
                        let i = self.operand(frame, *index).as_int();
                        let sz = self.prog.types.size_of(*elem);
                        frame.regs[dst.0 as usize] =
                            Value::Ptr(b.wrapping_add((i as u64).wrapping_mul(sz)));
                    }
                    Instr::Load { dst, addr, ty } => {
                        let a = self.operand(frame, *addr).as_ptr();
                        self.stats.loads += 1;
                        let (v, fp) = match self.scalar_kind(*ty) {
                            Some(k) => {
                                let sv = self.heap.read_scalar(a, k)?;
                                let v = match sv {
                                    ScalarValue::Int(i) => Value::Int(i),
                                    ScalarValue::Float(f) => Value::Float(f),
                                };
                                (v, k.is_float())
                            }
                            None => {
                                // pointer-typed load
                                let raw = self.heap.read_bytes(a, 8)?;
                                (Value::Ptr(raw), false)
                            }
                        };
                        self.stats.cycles += self.mem_access(at, a, fp, false);
                        frame.regs[dst.0 as usize] = v;
                    }
                    Instr::Store { addr, value, ty } => {
                        let a = self.operand(frame, *addr).as_ptr();
                        let v = self.operand(frame, *value);
                        self.stats.stores += 1;
                        let fp = match self.scalar_kind(*ty) {
                            Some(k) => {
                                let sv = if k.is_float() {
                                    ScalarValue::Float(v.as_float())
                                } else {
                                    ScalarValue::Int(v.as_int())
                                };
                                self.heap.write_scalar(a, k, sv)?;
                                k.is_float()
                            }
                            None => {
                                self.heap.write_bytes(a, 8, v.as_ptr())?;
                                false
                            }
                        };
                        self.stats.cycles += self.mem_access(at, a, fp, true);
                    }
                    Instr::LoadGlobal { dst, global } => {
                        let g = &self.prog.globals[global.index()];
                        let a = self.global_addr[global.index()];
                        self.stats.loads += 1;
                        let (v, fp) = match self.scalar_kind(g.ty) {
                            Some(k) => {
                                let sv = self.heap.read_scalar(a, k)?;
                                let v = match sv {
                                    ScalarValue::Int(i) => Value::Int(i),
                                    ScalarValue::Float(f) => Value::Float(f),
                                };
                                (v, k.is_float())
                            }
                            None => (Value::Ptr(self.heap.read_bytes(a, 8)?), false),
                        };
                        self.stats.cycles += self.mem_access(at, a, fp, false);
                        frame.regs[dst.0 as usize] = v;
                    }
                    Instr::StoreGlobal { global, value } => {
                        let v = self.operand(frame, *value);
                        let g = &self.prog.globals[global.index()];
                        let a = self.global_addr[global.index()];
                        self.stats.stores += 1;
                        let fp = match self.scalar_kind(g.ty) {
                            Some(k) => {
                                let sv = if k.is_float() {
                                    ScalarValue::Float(v.as_float())
                                } else {
                                    ScalarValue::Int(v.as_int())
                                };
                                self.heap.write_scalar(a, k, sv)?;
                                k.is_float()
                            }
                            None => {
                                self.heap.write_bytes(a, 8, v.as_ptr())?;
                                false
                            }
                        };
                        self.stats.cycles += self.mem_access(at, a, fp, true);
                    }
                    Instr::AddrOfGlobal { dst, global } => {
                        frame.regs[dst.0 as usize] = Value::Ptr(self.global_addr[global.index()]);
                    }
                    Instr::Alloc {
                        dst,
                        elem,
                        count,
                        zeroed,
                    } => {
                        if self.opts.faults.should_fire(slo_chaos::Site::VmAlloc) {
                            return Err(ExecError::Injected("heap allocation refused"));
                        }
                        let n = self.operand(frame, *count).as_int().max(0) as u64;
                        let bytes = n * self.prog.types.size_of(*elem);
                        let a = self.heap.alloc(bytes);
                        self.stats.cycles += self.opts.cost.alloc_cost;
                        if *zeroed {
                            self.stats.cycles += bytes / 8 * self.opts.cost.zero_per_8bytes;
                        }
                        frame.regs[dst.0 as usize] = Value::Ptr(a);
                    }
                    Instr::Free { ptr } => {
                        let a = self.operand(frame, *ptr).as_ptr();
                        self.heap.free(a)?;
                        self.stats.cycles += self.opts.cost.free_cost;
                    }
                    Instr::Realloc {
                        dst,
                        ptr,
                        elem,
                        count,
                    } => {
                        let a = self.operand(frame, *ptr).as_ptr();
                        let n = self.operand(frame, *count).as_int().max(0) as u64;
                        let bytes = n * self.prog.types.size_of(*elem);
                        let na = self.heap.realloc(a, bytes)?;
                        self.stats.cycles += self.opts.cost.alloc_cost + bytes / 16;
                        frame.regs[dst.0 as usize] = Value::Ptr(na);
                    }
                    Instr::Memcpy { dst, src, bytes } => {
                        let d = self.operand(frame, *dst).as_ptr();
                        let s = self.operand(frame, *src).as_ptr();
                        let n = self.operand(frame, *bytes).as_int().max(0) as u64;
                        self.heap.memcpy(d, s, n)?;
                        self.stats.cycles += self.stream_cost(at, d, s, n, true);
                    }
                    Instr::Memset { dst, val, bytes } => {
                        let d = self.operand(frame, *dst).as_ptr();
                        let v = self.operand(frame, *val).as_int() as u8;
                        let n = self.operand(frame, *bytes).as_int().max(0) as u64;
                        self.heap.memset(d, v, n)?;
                        self.stats.cycles += self.stream_cost(at, d, d, n, false);
                    }
                    Instr::Call { dst, callee, args } => {
                        let argv: Vec<Value> =
                            args.iter().map(|a| self.operand(frame, *a)).collect();
                        let kind = self.prog.func(*callee).kind;
                        if kind == FuncKind::Defined {
                            self.stats.cycles += self.opts.cost.call_overhead;
                            self.record_edge(fid, frame.block, frame.block); // call event
                            let dst = *dst;
                            let callee = *callee;
                            self.push_frame(&mut stack, callee, &argv, dst)?;
                            continue 'outer;
                        } else {
                            let r = self.extern_call(*callee, &argv);
                            self.stats.cycles += self.opts.cost.libc_call_cost;
                            if let Some(d) = dst {
                                frame.regs[d.0 as usize] = r;
                            }
                        }
                    }
                    Instr::CallIndirect {
                        dst, target, args, ..
                    } => {
                        let t = self.operand(frame, *target).as_ptr();
                        if t < FNPTR_BASE {
                            return Err(ExecError::BadIndirectTarget);
                        }
                        let callee = FuncId((t - FNPTR_BASE) as u32);
                        if callee.index() >= self.prog.funcs.len() {
                            return Err(ExecError::BadIndirectTarget);
                        }
                        let argv: Vec<Value> =
                            args.iter().map(|a| self.operand(frame, *a)).collect();
                        if self.prog.func(callee).kind == FuncKind::Defined {
                            self.stats.cycles += self.opts.cost.call_overhead;
                            let dst = *dst;
                            self.push_frame(&mut stack, callee, &argv, dst)?;
                            continue 'outer;
                        } else {
                            let r = self.extern_call(callee, &argv);
                            self.stats.cycles += self.opts.cost.libc_call_cost;
                            if let Some(d) = dst {
                                frame.regs[d.0 as usize] = r;
                            }
                        }
                    }
                    Instr::FuncAddr { dst, func } => {
                        frame.regs[dst.0 as usize] = Value::Ptr(FNPTR_BASE + func.0 as u64);
                    }
                    Instr::Jump { target } => {
                        let from = frame.block;
                        frame.block = *target;
                        frame.idx = 0;
                        self.record_edge(fid, from, *target);
                        continue 'outer;
                    }
                    Instr::Branch {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        let c = self.operand(frame, *cond).is_true();
                        let from = frame.block;
                        let to = if c { *then_bb } else { *else_bb };
                        frame.block = to;
                        frame.idx = 0;
                        self.record_edge(fid, from, to);
                        continue 'outer;
                    }
                    Instr::Return { value } => {
                        let v = value
                            .map(|v| self.operand(frame, v))
                            .unwrap_or(Value::Int(0));
                        let ret_dst = frame.ret_dst;
                        if let Some(done) = stack.pop() {
                            // recycle the register file
                            if self.frame_pool.len() < 64 {
                                self.frame_pool.push(done.regs);
                            }
                        }
                        last_ret = v;
                        if let Some(parent) = stack.last_mut() {
                            if let Some(d) = ret_dst {
                                parent.regs[d.0 as usize] = v;
                            }
                        }
                        continue 'outer;
                    }
                }
            }
            // fell off the end of a block without a terminator: treat as
            // return (the verifier rejects this, but be defensive).
            stack.pop();
        }

        Ok(last_ret)
    }

    fn push_frame(
        &mut self,
        stack: &mut Vec<Frame>,
        fid: FuncId,
        args: &[Value],
        ret_dst: Option<Reg>,
    ) -> Result<(), ExecError> {
        if stack.len() >= self.opts.call_depth_limit {
            return Err(ExecError::CallDepth);
        }
        let f = self.prog.func(fid);
        if !f.is_defined() {
            return Err(ExecError::NotDefined(f.name.clone()));
        }
        let mut regs = self.frame_pool.pop().unwrap_or_default();
        regs.clear();
        regs.resize(f.num_regs as usize, Value::Int(0));
        for (i, v) in args.iter().enumerate() {
            if i < regs.len() {
                regs[i] = *v;
            }
        }
        if self.opts.collect_edges {
            self.feedback.func_mut(&f.name).entry_count += 1;
        }
        stack.push(Frame {
            fid,
            block: BlockId(0),
            idx: 0,
            regs,
            ret_dst,
        });
        Ok(())
    }

    /// Touch the cache for a streaming op and return its cycle cost.
    fn stream_cost(&mut self, at: InstrRef, d: u64, s: u64, n: u64, copy: bool) -> u64 {
        let line = self.cache.l1_line();
        let mut cycles = n / 16 + 1;
        let mut a = d & !(line - 1);
        while a < d + n.max(1) {
            cycles += self.mem_access(at, a, false, true) / 2;
            a += line;
        }
        if copy {
            let mut a = s & !(line - 1);
            while a < s + n.max(1) {
                cycles += self.mem_access(at, a, false, false) / 2;
                a += line;
            }
        }
        cycles * self.opts.cost.memstream_per_line / 2 + cycles
    }

    /// Semantics for external / libc calls: math intrinsics compute, all
    /// others are no-ops returning 0.
    fn extern_call(&mut self, callee: FuncId, args: &[Value]) -> Value {
        let name = self.prog.func(callee).name.as_str();
        let x = args.first().copied().unwrap_or(Value::Float(0.0));
        match name {
            "sqrt" => Value::Float(x.as_float().sqrt()),
            "fabs" => Value::Float(x.as_float().abs()),
            "exp" => Value::Float(x.as_float().exp()),
            "log" => Value::Float(x.as_float().max(1e-300).ln()),
            "sin" => Value::Float(x.as_float().sin()),
            "cos" => Value::Float(x.as_float().cos()),
            "floor" => Value::Float(x.as_float().floor()),
            "abs" => Value::Int(x.as_int().abs()),
            _ => Value::Int(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_ir::parser::parse;

    fn run_src(src: &str) -> ExecOutcome {
        let p = parse(src).expect("parse");
        slo_ir::verify::assert_valid(&p);
        run(&p, &VmOptions::default()).expect("run")
    }

    #[test]
    fn returns_constant() {
        let out = run_src("func main() -> i64 {\nbb0:\n  ret 42\n}\n");
        assert_eq!(out.exit, Value::Int(42));
        assert_eq!(out.stats.instructions, 1);
    }

    #[test]
    fn arithmetic_loop_sums() {
        // sum 0..10
        let src = r#"
func main() -> i64 {
bb0:
  r0 = 0
  r1 = 0
  jump bb1
bb1:
  r2 = cmp.lt r1, 10
  br r2, bb2, bb3
bb2:
  r0 = add r0, r1
  r1 = add r1, 1
  jump bb1
bb3:
  ret r0
}
"#;
        let out = run_src(src);
        assert_eq!(out.exit, Value::Int(45));
    }

    #[test]
    fn heap_roundtrip_through_fields() {
        let src = r#"
record pair { a: i64, b: f64 }
func main() -> i64 {
bb0:
  r0 = alloc pair, 1
  r1 = fieldaddr r0, pair.a
  store 7, r1 : i64
  r2 = fieldaddr r0, pair.b
  store 2.5, r2 : f64
  r3 = load r1 : i64
  r4 = load r2 : f64
  r5 = mul r4, 2
  r6 = add r3, r5
  ret r6
}
"#;
        let out = run_src(src);
        // 7 (int) + 5.0 (float) promotes to float per the C-like rules
        assert_eq!(out.exit, Value::Float(12.0));
    }

    #[test]
    fn float_int_mix_result() {
        // ensure previous test semantics: add(int, float) promotes to float;
        // ret returns the float; exit compares as float
        let src = r#"
func main() -> f64 {
bb0:
  r0 = 1
  r1 = add r0, 1.5
  ret r1
}
"#;
        let out = run_src(src);
        assert_eq!(out.exit, Value::Float(2.5));
    }

    #[test]
    fn call_and_return() {
        let src = r#"
func double(i64) -> i64 {
bb0:
  r1 = mul r0, 2
  ret r1
}
func main() -> i64 {
bb0:
  r0 = call double(21)
  ret r0
}
"#;
        let out = run_src(src);
        assert_eq!(out.exit, Value::Int(42));
    }

    #[test]
    fn recursion_fib() {
        let src = r#"
func fib(i64) -> i64 {
bb0:
  r1 = cmp.lt r0, 2
  br r1, bb1, bb2
bb1:
  ret r0
bb2:
  r2 = sub r0, 1
  r3 = call fib(r2)
  r4 = sub r0, 2
  r5 = call fib(r4)
  r6 = add r3, r5
  ret r6
}
func main() -> i64 {
bb0:
  r0 = call fib(10)
  ret r0
}
"#;
        let out = run_src(src);
        assert_eq!(out.exit, Value::Int(55));
    }

    #[test]
    fn globals_work() {
        let src = r#"
global G: i64
func main() -> i64 {
bb0:
  gstore 5, G
  r0 = gload G
  r1 = add r0, 1
  gstore r1, G
  r2 = gload G
  ret r2
}
"#;
        let out = run_src(src);
        assert_eq!(out.exit, Value::Int(6));
    }

    #[test]
    fn indirect_call() {
        let src = r#"
func inc(i64) -> i64 {
bb0:
  r1 = add r0, 1
  ret r1
}
func main() -> i64 {
bb0:
  r0 = fnaddr inc
  r1 = icall r0(41) : (i64)
  ret r1
}
"#;
        let out = run_src(src);
        assert_eq!(out.exit, Value::Int(42));
    }

    #[test]
    fn libc_intrinsics() {
        let src = r#"
libc func sqrt(f64) -> f64
func main() -> f64 {
bb0:
  r0 = call sqrt(16.0)
  ret r0
}
"#;
        let out = run_src(src);
        assert_eq!(out.exit, Value::Float(4.0));
    }

    #[test]
    fn memcpy_semantics() {
        let src = r#"
record s { a: i64, b: i64 }
func main() -> i64 {
bb0:
  r0 = alloc s, 2
  r1 = fieldaddr r0, s.a
  store 11, r1 : i64
  r2 = indexaddr r0, s, 1
  memcpy r2, r0, 16
  r3 = fieldaddr r2, s.a
  r4 = load r3 : i64
  ret r4
}
"#;
        let out = run_src(src);
        assert_eq!(out.exit, Value::Int(11));
    }

    #[test]
    fn edge_profiling_counts() {
        let src = r#"
func main() -> i64 {
bb0:
  r0 = 0
  jump bb1
bb1:
  r1 = cmp.lt r0, 5
  br r1, bb2, bb3
bb2:
  r0 = add r0, 1
  jump bb1
bb3:
  ret r0
}
"#;
        let p = parse(src).expect("parse");
        let out = run(&p, &VmOptions::profiling()).expect("run");
        let fp = out.feedback.func("main").expect("profile");
        assert_eq!(fp.entry_count, 1);
        assert_eq!(fp.edges[&(0, 1)], 1);
        assert_eq!(fp.edges[&(1, 2)], 5);
        assert_eq!(fp.edges[&(2, 1)], 5);
        assert_eq!(fp.edges[&(1, 3)], 1);
    }

    #[test]
    fn sampling_records_events() {
        // long strided loop over a big array, sample every access
        let src = r#"
record cell { v: i64, pad0: i64, pad1: i64, pad2: i64, pad3: i64, pad4: i64, pad5: i64, pad6: i64 }
func main() -> i64 {
bb0:
  r0 = alloc cell, 65536
  r1 = 0
  r2 = 0
  jump bb1
bb1:
  r3 = cmp.lt r1, 65536
  br r3, bb2, bb3
bb2:
  r4 = indexaddr r0, cell, r1
  r5 = fieldaddr r4, cell.v
  r6 = load r5 : i64
  r2 = add r2, r6
  r1 = add r1, 1
  jump bb1
bb3:
  ret r2
}
"#;
        let p = parse(src).expect("parse");
        let mut opts = VmOptions::sampling_only();
        opts.sample_period = 1;
        let out = run(&p, &opts).expect("run");
        let fp = out.feedback.func("main").expect("profile");
        let total_misses: u64 = fp.samples.values().map(|s| s.misses).sum();
        // 64-byte structs, 64-byte lines: every element is a fresh line
        assert!(
            total_misses > 60_000,
            "expected many misses, got {total_misses}"
        );
        assert!(out.stats.cache.accesses > 65_000);
    }

    #[test]
    fn cycles_scale_with_misses() {
        // same traversal, hot (packed i64 array) vs cold (1 i64 per 64B)
        let hot = r#"
func main() -> i64 {
bb0:
  r0 = alloc i64, 65536
  r1 = 0
  r2 = 0
  jump bb1
bb1:
  r3 = cmp.lt r1, 65536
  br r3, bb2, bb3
bb2:
  r4 = indexaddr r0, i64, r1
  r5 = load r4 : i64
  r2 = add r2, r5
  r1 = add r1, 1
  jump bb1
bb3:
  ret r2
}
"#;
        let cold = r#"
record cell { v: i64, p0: i64, p1: i64, p2: i64, p3: i64, p4: i64, p5: i64, p6: i64 }
func main() -> i64 {
bb0:
  r0 = alloc cell, 65536
  r1 = 0
  r2 = 0
  jump bb1
bb1:
  r3 = cmp.lt r1, 65536
  br r3, bb2, bb3
bb2:
  r4 = indexaddr r0, cell, r1
  r5 = fieldaddr r4, cell.v
  r6 = load r5 : i64
  r2 = add r2, r6
  r1 = add r1, 1
  jump bb1
bb3:
  ret r2
}
"#;
        let hot_out = run_src(hot);
        let cold_out = run_src(cold);
        assert!(
            cold_out.stats.cycles > hot_out.stats.cycles * 2,
            "cold {} vs hot {}",
            cold_out.stats.cycles,
            hot_out.stats.cycles
        );
    }

    #[test]
    fn step_limit_enforced() {
        let src = r#"
func main() -> i64 {
bb0:
  jump bb0
}
"#;
        let p = parse(src).expect("parse");
        for engine in [Engine::Decoded, Engine::Structured] {
            let opts = VmOptions {
                step_limit: 1000,
                engine,
                ..VmOptions::default()
            };
            match run(&p, &opts) {
                Err(ExecError::StepLimit) => {}
                other => panic!(
                    "{engine:?}: expected step limit error, got {:?}",
                    other.map(|o| o.exit)
                ),
            }
        }
    }

    #[test]
    fn engines_count_instructions_identically() {
        // both engines must charge exactly one step per executed IR
        // instruction, so a step limit of N admits the same prefix
        let src = r#"
func main() -> i64 {
bb0:
  r0 = 0
  r1 = 0
  jump bb1
bb1:
  r2 = cmp.lt r1, 20
  br r2, bb2, bb3
bb2:
  r0 = add r0, r1
  r1 = add r1, 1
  jump bb1
bb3:
  ret r0
}
"#;
        let p = parse(src).expect("parse");
        let dec = run(&p, &VmOptions::default()).expect("decoded");
        let str_ = run(&p, &VmOptions::default().structured()).expect("structured");
        assert_eq!(dec.stats.instructions, str_.stats.instructions);
        assert_eq!(dec.stats.cycles, str_.stats.cycles);
        assert_eq!(dec.exit, str_.exit);
        // the limit bites at exactly the same instruction on both
        let limit = dec.stats.instructions - 1;
        for engine in [Engine::Decoded, Engine::Structured] {
            let opts = VmOptions {
                step_limit: limit,
                engine,
                ..VmOptions::default()
            };
            assert!(
                matches!(run(&p, &opts), Err(ExecError::StepLimit)),
                "{engine:?} should hit the limit"
            );
            let opts = VmOptions {
                step_limit: limit + 1,
                engine,
                ..VmOptions::default()
            };
            assert!(run(&p, &opts).is_ok(), "{engine:?} should finish");
        }
    }

    #[test]
    fn injected_alloc_failure_is_deterministic_per_engine() {
        let src = r#"
record r { a: i64, b: i64 }
func main() -> i64 {
bb0:
  r0 = alloc r, 4
  ret 0
}
"#;
        let p = parse(src).expect("parse");
        for engine in [Engine::Decoded, Engine::Structured] {
            // A plan firing on every query refuses the first allocation.
            let opts = VmOptions::builder()
                .engine(engine)
                .faults(slo_chaos::FaultPlan::with_config(
                    1,
                    slo_chaos::ChaosConfig::always(),
                ))
                .build();
            match run(&p, &opts) {
                Err(ExecError::Injected(_)) => {}
                other => panic!("{engine:?}: expected injected fault, got {other:?}"),
            }
            assert_eq!(opts.faults.injected(slo_chaos::Site::VmAlloc), 1);
            // A disabled plan never interferes.
            let opts = VmOptions::builder().engine(engine).build();
            assert!(run(&p, &opts).is_ok());
        }
    }

    #[test]
    fn step_jitter_only_lowers_the_limit() {
        let opts = VmOptions::builder()
            .step_limit(1_000)
            .faults(slo_chaos::FaultPlan::with_config(
                7,
                slo_chaos::ChaosConfig::always(),
            ))
            .build();
        for _ in 0..64 {
            let eff = opts.effective_step_limit();
            assert!(eff <= 1_000, "jitter must never raise the limit");
            assert!(eff >= 500, "jitter shaves at most half the budget");
        }
        // Disabled and silent plans leave the exact limit intact, so
        // the ==limit completion boundary is preserved.
        let plain = VmOptions::builder().step_limit(1_000).build();
        assert_eq!(plain.effective_step_limit(), 1_000);
        let silent = VmOptions::builder()
            .step_limit(1_000)
            .faults(slo_chaos::FaultPlan::with_config(
                7,
                slo_chaos::ChaosConfig::never(),
            ))
            .build();
        assert_eq!(silent.effective_step_limit(), 1_000);
    }

    #[test]
    fn null_deref_reported() {
        let src = "func main() -> i64 {\nbb0:\n  r0 = load null : i64\n  ret r0\n}\n";
        let p = parse(src).expect("parse");
        match run(&p, &VmOptions::default()) {
            Err(ExecError::MemAt {
                err: MemError::NullDeref,
                func,
                ..
            }) => assert_eq!(func, "main"),
            other => panic!("expected null deref, got {other:?}"),
        }
    }

    #[test]
    fn call_depth_limit() {
        let src = r#"
func f() -> i64 {
bb0:
  r0 = call f()
  ret r0
}
func main() -> i64 {
bb0:
  r0 = call f()
  ret r0
}
"#;
        let p = parse(src).expect("parse");
        let opts = VmOptions {
            call_depth_limit: 50,
            ..VmOptions::default()
        };
        match run(&p, &opts) {
            Err(ExecError::CallDepth) => {}
            other => panic!("expected call depth error, got {other:?}"),
        }
    }

    #[test]
    fn no_main_error() {
        let p = parse("func f() -> void {\nbb0:\n  ret\n}\n").expect("parse");
        match run(&p, &VmOptions::default()) {
            Err(ExecError::NoMain) => {}
            other => panic!("expected NoMain, got {other:?}"),
        }
    }

    #[test]
    fn run_func_with_args() {
        let src = r#"
func addmul(i64, i64, f64) -> f64 {
bb0:
  r3 = add r0, r1
  r4 = mul r3, r2
  ret r4
}
func main() -> i64 {
bb0:
  ret 0
}
"#;
        let p = parse(src).expect("parse");
        let f = p.func_by_name("addmul").expect("addmul");
        let out = run_func(
            &p,
            f,
            &[Value::Int(2), Value::Int(3), Value::Float(1.5)],
            &VmOptions::default(),
        )
        .expect("run");
        assert_eq!(out.exit, Value::Float(7.5));
    }

    #[test]
    fn frame_pool_reuse_is_transparent() {
        // deep call chains recycle register files; values must not leak
        // between frames
        let src = r#"
func leaf(i64) -> i64 {
bb0:
  r1 = 0
  r2 = add r1, r0
  ret r2
}
func main() -> i64 {
bb0:
  r0 = 0
  r1 = 0
  jump bb1
bb1:
  r2 = cmp.lt r1, 100
  br r2, bb2, bb3
bb2:
  r3 = call leaf(r1)
  r0 = add r0, r3
  r1 = add r1, 1
  jump bb1
bb3:
  ret r0
}
"#;
        let p = parse(src).expect("parse");
        let out = run(&p, &VmOptions::default()).expect("run");
        assert_eq!(out.exit, Value::Int(4950));
    }

    #[test]
    fn free_and_realloc() {
        let src = r#"
func main() -> i64 {
bb0:
  r0 = alloc i64, 4
  r1 = indexaddr r0, i64, 2
  store 9, r1 : i64
  r2 = realloc r0, i64, 100
  r3 = indexaddr r2, i64, 2
  r4 = load r3 : i64
  free r2
  ret r4
}
"#;
        let out = run_src(src);
        assert_eq!(out.exit, Value::Int(9));
    }
}
