//! Profile feedback data — the paper's "feedback files".
//!
//! The PBO collection phase produces a [`Feedback`] holding, per function,
//! CFG **edge counts** from compiler-inserted instrumentation and sampled
//! **d-cache events** (miss counts and latencies) from the PMU, attributed
//! to individual load/store instructions. The use phase matches this data
//! back onto the IR (functions by name, blocks/instructions by stable id —
//! our stand-in for the paper's source-line + expression-counting CFG
//! matching).
//!
//! Feedback can be serialized to a line-oriented text format, merged across
//! training runs, and scaled.

use std::collections::HashMap;
use std::fmt;

/// Sampled d-cache events for one instruction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DcacheSample {
    /// Number of sampled accesses.
    pub samples: u64,
    /// Of those, how many missed their first-level cache.
    pub misses: u64,
    /// Total load-to-use latency (cycles) over the sampled accesses.
    pub total_latency: u64,
}

impl DcacheSample {
    /// Mean latency per sampled access (0 if never sampled).
    pub fn avg_latency(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.samples as f64
        }
    }

    /// Accumulate another sample record.
    pub fn merge(&mut self, other: &DcacheSample) {
        self.samples += other.samples;
        self.misses += other.misses;
        self.total_latency += other.total_latency;
    }
}

/// Stride statistics for one load/store site — the paper's "stride
/// information for pointer-chasing loads and stores" collected by the
/// PBO infrastructure (§2.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StrideInfo {
    /// The most frequently observed address delta between consecutive
    /// executions of the instruction.
    pub dominant: i64,
    /// How many sampled deltas matched the dominant stride.
    pub hits: u64,
    /// Total sampled deltas.
    pub samples: u64,
}

impl StrideInfo {
    /// Fraction of deltas matching the dominant stride (0 when unsampled).
    pub fn confidence(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.hits as f64 / self.samples as f64
        }
    }
}

/// Profile data for one function.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FuncProfile {
    /// Times the function was entered.
    pub entry_count: u64,
    /// Edge execution counts keyed by `(from_block, to_block)`.
    pub edges: HashMap<(u32, u32), u64>,
    /// D-cache samples keyed by `(block, instr_index)`.
    pub samples: HashMap<(u32, u32), DcacheSample>,
    /// Stride statistics keyed by `(block, instr_index)`.
    pub strides: HashMap<(u32, u32), StrideInfo>,
}

impl FuncProfile {
    /// Incoming count of a block: sum of edge counts into it, or the
    /// entry count for block 0.
    pub fn block_count(&self, block: u32) -> u64 {
        let inflow: u64 = self
            .edges
            .iter()
            .filter(|((_, to), _)| *to == block)
            .map(|(_, c)| *c)
            .sum();
        if block == 0 {
            self.entry_count + inflow
        } else {
            inflow
        }
    }
}

/// A whole-program profile (the feedback file).
///
/// # Examples
///
/// ```
/// use slo_vm::Feedback;
///
/// let mut fb = Feedback::new(97);
/// fb.func_mut("main").entry_count = 1;
/// fb.func_mut("main").edges.insert((0, 1), 100);
/// let text = fb.to_text();
/// assert_eq!(Feedback::from_text(&text)?, fb);
/// # Ok::<(), slo_vm::FeedbackParseError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Feedback {
    /// Per-function profiles keyed by function name.
    pub funcs: HashMap<String, FuncProfile>,
    /// Sampling period used during collection (1 = every access).
    pub sample_period: u64,
}

impl Feedback {
    /// Empty feedback with the given sampling period.
    pub fn new(sample_period: u64) -> Self {
        Feedback {
            funcs: HashMap::new(),
            sample_period,
        }
    }

    /// Profile for a function, if present.
    pub fn func(&self, name: &str) -> Option<&FuncProfile> {
        self.funcs.get(name)
    }

    /// Get-or-create a function profile (collection side).
    pub fn func_mut(&mut self, name: &str) -> &mut FuncProfile {
        self.funcs.entry(name.to_string()).or_default()
    }

    /// Merge another feedback file (e.g. a second training input) into
    /// this one by summing counts.
    pub fn merge(&mut self, other: &Feedback) {
        for (name, fp) in &other.funcs {
            let dst = self.funcs.entry(name.clone()).or_default();
            dst.entry_count += fp.entry_count;
            for (e, c) in &fp.edges {
                *dst.edges.entry(*e).or_insert(0) += c;
            }
            for (k, s) in &fp.samples {
                dst.samples.entry(*k).or_default().merge(s);
            }
            for (k, st) in &fp.strides {
                let d = dst.strides.entry(*k).or_default();
                // keep whichever dominant stride has more evidence
                if st.hits > d.hits {
                    d.dominant = st.dominant;
                    d.hits = st.hits;
                }
                d.samples += st.samples;
            }
        }
    }

    /// Total edge-count volume (a cheap size proxy used in tests).
    pub fn total_edge_count(&self) -> u64 {
        self.funcs.values().flat_map(|f| f.edges.values()).sum()
    }

    /// Serialize to the line-oriented text format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "feedback period={}", self.sample_period);
        let mut names: Vec<&String> = self.funcs.keys().collect();
        names.sort();
        for name in names {
            let fp = &self.funcs[name];
            let _ = writeln!(out, "func {name} entry={}", fp.entry_count);
            let mut edges: Vec<(&(u32, u32), &u64)> = fp.edges.iter().collect();
            edges.sort();
            for ((a, b), c) in edges {
                let _ = writeln!(out, "edge {a} {b} {c}");
            }
            let mut samples: Vec<(&(u32, u32), &DcacheSample)> = fp.samples.iter().collect();
            samples.sort_by_key(|(k, _)| **k);
            for ((b, i), s) in samples {
                let _ = writeln!(
                    out,
                    "sample {b} {i} {} {} {}",
                    s.samples, s.misses, s.total_latency
                );
            }
            let mut strides: Vec<(&(u32, u32), &StrideInfo)> = fp.strides.iter().collect();
            strides.sort_by_key(|(k, _)| **k);
            for ((b, i), st) in strides {
                let _ = writeln!(
                    out,
                    "stride {b} {i} {} {} {}",
                    st.dominant, st.hits, st.samples
                );
            }
        }
        out
    }

    /// Parse the text format produced by [`Feedback::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a [`FeedbackParseError`] naming the bad line.
    pub fn from_text(text: &str) -> Result<Self, FeedbackParseError> {
        let mut fb = Feedback::new(1);
        let mut cur: Option<String> = None;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let kw = parts.next().unwrap_or_default();
            let bad = |msg: &str| FeedbackParseError {
                line: lineno as u32 + 1,
                message: msg.to_string(),
            };
            match kw {
                "feedback" => {
                    let p = parts
                        .next()
                        .and_then(|s| s.strip_prefix("period="))
                        .ok_or_else(|| bad("expected period="))?;
                    fb.sample_period = p.parse().map_err(|_| bad("bad period"))?;
                }
                "func" => {
                    let name = parts.next().ok_or_else(|| bad("missing name"))?;
                    let entry = parts
                        .next()
                        .and_then(|s| s.strip_prefix("entry="))
                        .ok_or_else(|| bad("expected entry="))?
                        .parse()
                        .map_err(|_| bad("bad entry count"))?;
                    fb.func_mut(name).entry_count = entry;
                    cur = Some(name.to_string());
                }
                "edge" => {
                    let name = cur.as_ref().ok_or_else(|| bad("edge before func"))?;
                    let nums: Vec<u64> = parts
                        .map(|s| s.parse().map_err(|_| bad("bad edge number")))
                        .collect::<Result<_, _>>()?;
                    if nums.len() != 3 {
                        return Err(bad("edge needs 3 numbers"));
                    }
                    fb.func_mut(name)
                        .edges
                        .insert((nums[0] as u32, nums[1] as u32), nums[2]);
                }
                "sample" => {
                    let name = cur.as_ref().ok_or_else(|| bad("sample before func"))?;
                    let nums: Vec<u64> = parts
                        .map(|s| s.parse().map_err(|_| bad("bad sample number")))
                        .collect::<Result<_, _>>()?;
                    if nums.len() != 5 {
                        return Err(bad("sample needs 5 numbers"));
                    }
                    fb.func_mut(name).samples.insert(
                        (nums[0] as u32, nums[1] as u32),
                        DcacheSample {
                            samples: nums[2],
                            misses: nums[3],
                            total_latency: nums[4],
                        },
                    );
                }
                "stride" => {
                    let name = cur.as_ref().ok_or_else(|| bad("stride before func"))?;
                    let nums: Vec<i64> = parts
                        .map(|s| s.parse().map_err(|_| bad("bad stride number")))
                        .collect::<Result<_, _>>()?;
                    if nums.len() != 5 {
                        return Err(bad("stride needs 5 numbers"));
                    }
                    fb.func_mut(name).strides.insert(
                        (nums[0] as u32, nums[1] as u32),
                        StrideInfo {
                            dominant: nums[2],
                            hits: nums[3] as u64,
                            samples: nums[4] as u64,
                        },
                    );
                }
                _ => return Err(bad("unknown keyword")),
            }
        }
        Ok(fb)
    }
}

/// Error parsing a textual feedback file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedbackParseError {
    /// 1-based line number.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for FeedbackParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "feedback line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FeedbackParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fb() -> Feedback {
        let mut fb = Feedback::new(97);
        let f = fb.func_mut("main");
        f.entry_count = 1;
        f.edges.insert((0, 1), 100);
        f.edges.insert((1, 2), 99);
        f.samples.insert(
            (1, 3),
            DcacheSample {
                samples: 10,
                misses: 4,
                total_latency: 800,
            },
        );
        f.strides.insert(
            (1, 3),
            StrideInfo {
                dominant: 120,
                hits: 9,
                samples: 10,
            },
        );
        fb
    }

    #[test]
    fn stride_confidence() {
        let st = StrideInfo {
            dominant: 64,
            hits: 8,
            samples: 10,
        };
        assert!((st.confidence() - 0.8).abs() < 1e-12);
        assert_eq!(StrideInfo::default().confidence(), 0.0);
    }

    #[test]
    fn block_count_sums_inflow() {
        let fb = sample_fb();
        let f = fb.func("main").expect("main profile");
        assert_eq!(f.block_count(1), 100);
        assert_eq!(f.block_count(2), 99);
        assert_eq!(f.block_count(0), 1);
    }

    #[test]
    fn avg_latency() {
        let s = DcacheSample {
            samples: 10,
            misses: 4,
            total_latency: 800,
        };
        assert!((s.avg_latency() - 80.0).abs() < 1e-12);
        assert_eq!(DcacheSample::default().avg_latency(), 0.0);
    }

    #[test]
    fn merge_sums() {
        let mut a = sample_fb();
        let b = sample_fb();
        a.merge(&b);
        let f = a.func("main").expect("main");
        assert_eq!(f.entry_count, 2);
        assert_eq!(f.edges[&(0, 1)], 200);
        assert_eq!(f.samples[&(1, 3)].misses, 8);
    }

    #[test]
    fn text_roundtrip() {
        let fb = sample_fb();
        let text = fb.to_text();
        let back = Feedback::from_text(&text).expect("parse");
        assert_eq!(fb, back);
    }

    #[test]
    fn parse_errors() {
        assert!(Feedback::from_text("edge 0 1 2").is_err()); // before func
        assert!(Feedback::from_text("bogus").is_err());
        assert!(Feedback::from_text("func f entry=x").is_err());
        let e = Feedback::from_text("func f entry=1\nedge 1 2").expect_err("bad edge");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn merge_disjoint_functions() {
        let mut a = sample_fb();
        let mut b = Feedback::new(97);
        b.func_mut("other").entry_count = 5;
        a.merge(&b);
        assert_eq!(a.funcs.len(), 2);
        assert_eq!(a.func("other").expect("other").entry_count, 5);
    }
}
