//! Global variable layout (GVL).
//!
//! The paper (§4, discussing Calder et al.): "Our compiler has a similar
//! phase, which we call *global variable layout (GVL)*. We plan to merge
//! GVL with the presented framework in the future." This module performs
//! that merge: globals are reordered by access hotness so that hot
//! globals share cache lines (the VM places globals in declaration order
//! at the bottom of the address space, so declaration order *is* memory
//! order).

use crate::rewrite::RewriteError;
use slo_analysis::freq::FuncFreq;
use slo_ir::{FuncId, GlobalId, Instr, Program};
use std::collections::HashMap;

/// Estimated access count per global under the given frequencies.
pub fn global_hotness(prog: &Program, freqs: &HashMap<FuncId, FuncFreq>) -> Vec<(GlobalId, f64)> {
    let mut hot = vec![0.0f64; prog.globals.len()];
    let empty = FuncFreq::default();
    for fid in prog.func_ids() {
        if !prog.func(fid).is_defined() {
            continue;
        }
        let ff = freqs.get(&fid).unwrap_or(&empty);
        for (at, ins) in prog.instrs_of(fid) {
            let g = match ins {
                Instr::LoadGlobal { global, .. }
                | Instr::StoreGlobal { global, .. }
                | Instr::AddrOfGlobal { global, .. } => *global,
                _ => continue,
            };
            hot[g.index()] += ff.of(at.block);
        }
    }
    prog.global_ids().zip(hot).collect()
}

/// Compute the GVL order: hottest globals first.
pub fn gvl_order(prog: &Program, freqs: &HashMap<FuncId, FuncFreq>) -> Vec<GlobalId> {
    let mut hot = global_hotness(prog, freqs);
    hot.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    hot.into_iter().map(|(g, _)| g).collect()
}

/// Reorder the globals to `order`, rewriting every global reference.
///
/// # Errors
///
/// Returns [`RewriteError::Unsupported`] if `order` is not a permutation
/// of the program's globals.
pub fn apply_gvl(prog: &Program, order: &[GlobalId]) -> Result<Program, RewriteError> {
    let n = prog.globals.len();
    let mut seen = vec![false; n];
    if order.len() != n {
        return Err(RewriteError::Unsupported(format!(
            "GVL order has {} entries for {} globals",
            order.len(),
            n
        )));
    }
    for g in order {
        if g.index() >= n || seen[g.index()] {
            return Err(RewriteError::Unsupported(
                "GVL order is not a permutation".to_string(),
            ));
        }
        seen[g.index()] = true;
    }

    let mut out = prog.clone();
    // old id -> new id
    let mut remap = vec![GlobalId(0); n];
    for (new_i, &old) in order.iter().enumerate() {
        remap[old.index()] = GlobalId(new_i as u32);
    }
    out.globals = order
        .iter()
        .map(|g| prog.globals[g.index()].clone())
        .collect();
    for f in &mut out.funcs {
        for b in &mut f.blocks {
            for ins in &mut b.instrs {
                match ins {
                    Instr::LoadGlobal { global, .. }
                    | Instr::StoreGlobal { global, .. }
                    | Instr::AddrOfGlobal { global, .. } => {
                        *global = remap[global.index()];
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(out)
}

/// Convenience: compute the order and apply it in one step.
///
/// # Errors
///
/// Propagates [`apply_gvl`]'s errors (none in practice — the computed
/// order is always a permutation).
pub fn gvl(prog: &Program, freqs: &HashMap<FuncId, FuncFreq>) -> Result<Program, RewriteError> {
    apply_gvl(prog, &gvl_order(prog, freqs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_analysis::schemes::{block_frequencies, WeightScheme};
    use slo_ir::verify::assert_valid;
    use slo_ir::{Operand, ProgramBuilder, ScalarKind};
    use slo_vm::{run, VmOptions};

    /// 48 globals; 6 hot ones scattered every 8th position.
    fn scattered_globals() -> Program {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let globals: Vec<_> = (0..48).map(|i| pb.global(format!("g{i}"), i64t)).collect();
        let hot: Vec<_> = globals.iter().copied().step_by(8).collect();
        let main = pb.declare("main", vec![], i64t);
        pb.define(main, |fb| {
            // touch every global once (they are all live)
            for &g in &globals {
                fb.store_global(g, Operand::int(1));
            }
            let acc = fb.fresh();
            fb.assign(acc, Operand::int(0));
            fb.count_loop(Operand::int(50_000), |fb, _| {
                for &g in &hot {
                    let v = fb.load_global(g);
                    let ns = fb.add(acc.into(), v.into());
                    fb.assign(acc, ns.into());
                }
            });
            fb.ret(Some(acc.into()));
        });
        pb.finish()
    }

    #[test]
    fn gvl_moves_hot_globals_to_front() {
        let p = scattered_globals();
        let freqs = block_frequencies(&p, &WeightScheme::Spbo);
        let order = gvl_order(&p, &freqs);
        // the first six in the order are the six hot ones
        let hot_names: Vec<&str> = order[..6]
            .iter()
            .map(|g| p.global(*g).name.as_str())
            .collect();
        for want in ["g0", "g8", "g16", "g24", "g32", "g40"] {
            assert!(hot_names.contains(&want), "missing {want}: {hot_names:?}");
        }
    }

    #[test]
    fn gvl_preserves_semantics_and_saves_cycles() {
        let p = scattered_globals();
        let freqs = block_frequencies(&p, &WeightScheme::Spbo);
        let q = gvl(&p, &freqs).expect("gvl");
        assert_valid(&q);
        let before = run(&p, &VmOptions::default()).expect("before");
        let after = run(&q, &VmOptions::default()).expect("after");
        assert_eq!(before.exit, after.exit);
        // 6 hot globals at 16-byte slots: scattered = 6 lines, packed = 2
        assert!(
            after.stats.cycles <= before.stats.cycles,
            "packing hot globals must not cost cycles: {} vs {}",
            after.stats.cycles,
            before.stats.cycles
        );
    }

    #[test]
    fn gvl_rejects_bad_orders() {
        let p = scattered_globals();
        assert!(apply_gvl(&p, &[]).is_err());
        let mut dup: Vec<GlobalId> = p.global_ids().collect();
        dup[1] = dup[0];
        assert!(apply_gvl(&p, &dup).is_err());
    }

    #[test]
    fn gvl_identity_when_uniform() {
        // all globals equally hot: the order is stable and semantics hold
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let g0 = pb.global("a", i64t);
        let g1 = pb.global("b", i64t);
        let main = pb.declare("main", vec![], i64t);
        pb.define(main, |fb| {
            fb.store_global(g0, Operand::int(2));
            fb.store_global(g1, Operand::int(3));
            let a = fb.load_global(g0);
            let b = fb.load_global(g1);
            let s = fb.add(a.into(), b.into());
            fb.ret(Some(s.into()));
        });
        let p = pb.finish();
        let freqs = block_frequencies(&p, &WeightScheme::Spbo);
        let q = gvl(&p, &freqs).expect("gvl");
        let before = run(&p, &VmOptions::default()).expect("before");
        let after = run(&q, &VmOptions::default()).expect("after");
        assert_eq!(before.exit, after.exit);
        assert_eq!(after.exit, slo_vm::Value::Int(5));
    }
}
