//! # slo-transform — the BE transformations
//!
//! The transformation half of *"Practical Structure Layout Optimization
//! and Advice"* (CGO 2006): planning heuristics (§2.4) and the rewrites
//! for **structure splitting** (link pointers), **structure peeling**
//! (index rewrite, no link pointers), **instance interleaving** (the
//! §2.1 alternative), **dead field removal**, **field reordering** (both
//! within splits and as a standalone advisory rewrite), and **global
//! variable layout** (the GVL phase the paper plans to merge, §4).
//!
//! The entry points are [`plan::decide`] (IPA heuristics →
//! [`plan::TransformPlan`]) and [`rewrite::apply_plan`] (BE). A forced
//! plan can be constructed directly to reproduce the paper's §2.4
//! anecdote (splitting out `time`/`mark` of 181.mcf degrades performance).

#![warn(missing_docs)]

pub mod gvl;
pub mod peel;
pub mod plan;
pub mod reorder;
pub mod rewrite;

pub use gvl::{apply_gvl, gvl, gvl_order};
pub use peel::{apply_interleave, peel_by_name, PeelMode};
pub use plan::{
    decide, peelable, HeuristicsConfig, HeuristicsConfigBuilder, TransformPlan, TypeTransform,
};
pub use reorder::{reorder_by_names, reorder_fields};
pub use rewrite::{apply_plan, RewriteError};

/// Build a forced split plan for one record (the §2.4 experiment API):
/// the named fields are split out, everything else stays hot in original
/// order.
///
/// # Errors
///
/// Returns [`RewriteError::Unsupported`] if the record or a field name is
/// unknown.
pub fn forced_split(
    prog: &slo_ir::Program,
    record: &str,
    split_out: &[&str],
) -> Result<TransformPlan, RewriteError> {
    let rid = prog
        .types
        .record_by_name(record)
        .ok_or_else(|| RewriteError::Unsupported(format!("no record `{record}`")))?;
    let rec = prog.types.record(rid);
    let mut cold = Vec::new();
    for n in split_out {
        let i = rec
            .field_index(n)
            .ok_or_else(|| RewriteError::Unsupported(format!("no field `{n}`")))?;
        cold.push(i as u32);
    }
    let hot: Vec<u32> = (0..rec.fields.len() as u32)
        .filter(|i| !cold.contains(i))
        .collect();
    let mut plan = TransformPlan::default();
    plan.types.insert(
        rid,
        TypeTransform::Split {
            hot_order: hot,
            cold,
            dead: vec![],
        },
    );
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_ir::parser::parse;

    #[test]
    fn forced_split_builds_plan() {
        let p =
            parse("record n { a: i64, b: i64, c: i64 }\nfunc main() -> i64 {\nbb0:\n  ret 0\n}\n")
                .expect("parse");
        let plan = forced_split(&p, "n", &["b"]).expect("plan");
        let rid = p.types.record_by_name("n").expect("n");
        match plan.of(rid) {
            TypeTransform::Split {
                hot_order, cold, ..
            } => {
                assert_eq!(cold, &vec![1]);
                assert_eq!(hot_order, &vec![0, 2]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn forced_split_rejects_unknown() {
        let p =
            parse("record n { a: i64 }\nfunc main() -> i64 {\nbb0:\n  ret 0\n}\n").expect("parse");
        assert!(forced_split(&p, "zz", &[]).is_err());
        assert!(forced_split(&p, "n", &["zz"]).is_err());
    }
}
