//! Structure peeling — splitting without link pointers (§2.1, Figure 1(c)).
//!
//! The 179.art pattern: a dynamically allocated array of a non-recursive
//! record, published through global pointers. The type is broken into one
//! record per surviving field; the single allocation site becomes one
//! allocation per piece, each stored in a fresh global pointer `P_i`; and
//! every pointer to the original type is replaced by an **element index**:
//!
//! * the allocation result becomes index 0,
//! * `indexaddr base, T, i` becomes integer addition `base + i`,
//! * `fieldaddr base, T.f` becomes `indexaddr (gload P_f), T_f, base`,
//! * globals/parameters/loads/stores of `ptr<T>` are retyped to `i64`.
//!
//! The planner ([`crate::plan::peelable`]) guarantees no construct exists
//! that could observe the difference (no frees, no null comparisons, no
//! pointer arithmetic, no foreign records embedding `ptr<T>`).

use crate::rewrite::RewriteError;
use slo_ir::{
    FuncId, GlobalVar, Instr, Operand, Program, RecordId, RecordType, Reg, ScalarKind, Type, TypeId,
};

/// How the per-field storage is laid out after the pointer→index rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeelMode {
    /// One allocation per field (the paper's structure peeling,
    /// Figure 1 (c)).
    Separate,
    /// One allocation holding all field regions back to back — *instance
    /// interleaving* (Truong et al.), which the paper notes can be
    /// integrated "without the need for a special allocation library"
    /// when the array size is bounded at compile time.
    Interleaved,
}

/// Apply peeling of `rid` (dropping `dead` fields) to `prog` in place.
///
/// # Errors
///
/// Returns [`RewriteError::DeadFieldRead`] if a removed field is loaded.
pub fn apply_peel(prog: &mut Program, rid: RecordId, dead: &[u32]) -> Result<(), RewriteError> {
    apply_peel_mode(prog, rid, dead, PeelMode::Separate)
}

/// Apply instance interleaving of `rid`: the single allocation site must
/// use a compile-time-constant element count (the "limit on the size of
/// a dynamically allocated array" the paper requires for this variant).
///
/// # Errors
///
/// Returns [`RewriteError::Unsupported`] if the allocation count is not a
/// constant, or [`RewriteError::DeadFieldRead`] if a removed field is
/// loaded.
pub fn apply_interleave(
    prog: &mut Program,
    rid: RecordId,
    dead: &[u32],
) -> Result<(), RewriteError> {
    apply_peel_mode(prog, rid, dead, PeelMode::Interleaved)
}

fn apply_peel_mode(
    prog: &mut Program,
    rid: RecordId,
    dead: &[u32],
    mode: PeelMode,
) -> Result<(), RewriteError> {
    let rec = prog.types.record(rid).clone();
    let rec_ty = prog
        .types
        .record_type_id(rid)
        .expect("peeled record has an interned type");

    // --- create piece records + globals -------------------------------
    // piece_of[field] = Some((piece_rid, piece_ty, piece_global))
    let mut piece_of: Vec<Option<(RecordId, TypeId, slo_ir::GlobalId)>> =
        vec![None; rec.fields.len()];
    for (i, f) in rec.fields.iter().enumerate() {
        if dead.contains(&(i as u32)) {
            continue;
        }
        let name = format!("{}_p_{}", rec.name, f.name);
        let (prid, pty) = prog.types.add_record(RecordType {
            name,
            fields: vec![f.clone()],
        });
        let pptr = prog.types.ptr(pty);
        let g = prog.add_global(GlobalVar {
            name: format!("__peel_{}_{}", rec.name, f.name),
            ty: pptr,
        });
        piece_of[i] = Some((prid, pty, g));
    }

    let index_ty = prog.types.scalar(ScalarKind::I64);

    // --- retype globals of ptr<rid> to index ---------------------------
    for gid in prog.global_ids().collect::<Vec<_>>() {
        let g = prog.global(gid);
        if is_ptr_to(prog, g.ty, rid) {
            prog.globals[gid.index()].ty = index_ty;
        }
    }

    // --- rewrite every defined function --------------------------------
    for fid in prog.func_ids().collect::<Vec<_>>() {
        if !prog.func(fid).is_defined() {
            continue;
        }
        rewrite_function(prog, fid, rid, rec_ty, &piece_of, index_ty, mode)?;
    }

    // --- retype signatures ---------------------------------------------
    for fid in prog.func_ids().collect::<Vec<_>>() {
        let f = prog.func(fid).clone();
        let mut changed = f.clone();
        let mut any = false;
        for (i, (_, t)) in f.params.iter().enumerate() {
            if is_ptr_to(prog, *t, rid) {
                changed.params[i].1 = index_ty;
                any = true;
            }
        }
        if is_ptr_to(prog, f.ret, rid) {
            changed.ret = index_ty;
            any = true;
        }
        if any {
            *prog.func_mut(fid) = changed;
        }
    }

    Ok(())
}

fn is_ptr_to(prog: &Program, ty: TypeId, rid: RecordId) -> bool {
    matches!(prog.types.get(ty), Type::Ptr(inner)
        if prog.types.involved_record(*inner) == Some(rid))
}

#[allow(clippy::too_many_arguments)]
fn rewrite_function(
    prog: &mut Program,
    fid: FuncId,
    rid: RecordId,
    _rec_ty: TypeId,
    piece_of: &[Option<(RecordId, TypeId, slo_ir::GlobalId)>],
    index_ty: TypeId,
    mode: PeelMode,
) -> Result<(), RewriteError> {
    let fname = prog.func(fid).name.clone();
    let f = prog.func(fid).clone();
    let mut next_reg = f.num_regs;
    let mut fresh = || {
        let r = Reg(next_reg);
        next_reg += 1;
        r
    };
    let mut dead_addrs: std::collections::HashSet<u32> = std::collections::HashSet::new();

    // Hoist the piece-base loads to the function entry (what a real
    // compiler's loop-invariant code motion would do with `P_i`) — but
    // only in functions that do not themselves allocate the array, where
    // the ordering against the StoreGlobal is trivially safe.
    let allocates_rid = f.blocks.iter().flat_map(|b| &b.instrs).any(|i| {
        matches!(
            i,
            Instr::Alloc { elem, .. } if prog.types.involved_record(*elem) == Some(rid)
        )
    });
    let mut hoisted: Vec<Option<Reg>> = vec![None; piece_of.len()];
    let mut entry_loads: Vec<Instr> = Vec::new();
    if !allocates_rid {
        for (i, p) in piece_of.iter().enumerate() {
            if let Some((_, _, g)) = p {
                let r = fresh();
                hoisted[i] = Some(r);
                entry_loads.push(Instr::LoadGlobal { dst: r, global: *g });
            }
        }
    }

    let mut new_blocks = Vec::with_capacity(f.blocks.len());
    for block in &f.blocks {
        let mut nb: Vec<Instr> = Vec::with_capacity(block.instrs.len());
        for ins in &block.instrs {
            match ins {
                Instr::Alloc {
                    dst,
                    elem,
                    count,
                    zeroed,
                } if prog.types.involved_record(*elem) == Some(rid) => {
                    match mode {
                        PeelMode::Separate => {
                            // one allocation per piece, published to its
                            // global
                            for p in piece_of.iter().flatten() {
                                let (_, pty, g) = *p;
                                let pr = fresh();
                                nb.push(Instr::Alloc {
                                    dst: pr,
                                    elem: pty,
                                    count: *count,
                                    zeroed: *zeroed,
                                });
                                nb.push(Instr::StoreGlobal {
                                    global: g,
                                    value: pr.into(),
                                });
                            }
                        }
                        PeelMode::Interleaved => {
                            // one allocation; field regions at
                            // statically computed, N-scaled offsets
                            let n = count.as_const_int().ok_or_else(|| {
                                RewriteError::Unsupported(format!(
                                    "interleaving `{}` needs a constant                                      allocation count (in `{fname}`)",
                                    prog.types.record(rid).name
                                ))
                            })? as u64;
                            let u8t = prog.types.scalar(slo_ir::ScalarKind::U8);
                            let mut offset = 0u64;
                            let mut regions = Vec::new();
                            for p in piece_of.iter().flatten() {
                                let (_, pty, g) = *p;
                                let sz = prog.types.size_of(pty);
                                offset = offset.div_ceil(16) * 16;
                                regions.push((g, offset));
                                offset += sz * n;
                            }
                            let base = fresh();
                            nb.push(Instr::Alloc {
                                dst: base,
                                elem: u8t,
                                count: Operand::Const(slo_ir::Const::Int(offset as i64)),
                                zeroed: *zeroed,
                            });
                            for (g, off) in regions {
                                let pr = fresh();
                                nb.push(Instr::Bin {
                                    dst: pr,
                                    op: slo_ir::BinOp::Add,
                                    lhs: base.into(),
                                    rhs: Operand::Const(slo_ir::Const::Int(off as i64)),
                                });
                                nb.push(Instr::StoreGlobal {
                                    global: g,
                                    value: pr.into(),
                                });
                            }
                        }
                    }
                    // the original result is now index 0
                    nb.push(Instr::Assign {
                        dst: *dst,
                        src: Operand::Const(slo_ir::Const::Int(0)),
                    });
                }
                Instr::IndexAddr {
                    dst,
                    base,
                    elem,
                    index,
                } if prog.types.involved_record(*elem) == Some(rid) => {
                    nb.push(Instr::Bin {
                        dst: *dst,
                        op: slo_ir::BinOp::Add,
                        lhs: *base,
                        rhs: *index,
                    });
                }
                Instr::FieldAddr {
                    dst,
                    base,
                    record,
                    field,
                } if *record == rid => match piece_of[*field as usize] {
                    Some((_, pty, g)) => {
                        let pb = match hoisted[*field as usize] {
                            Some(r) => r,
                            None => {
                                let r = fresh();
                                nb.push(Instr::LoadGlobal { dst: r, global: g });
                                r
                            }
                        };
                        nb.push(Instr::IndexAddr {
                            dst: *dst,
                            base: pb.into(),
                            elem: pty,
                            index: *base,
                        });
                    }
                    None => {
                        dead_addrs.insert(dst.0);
                    }
                },
                Instr::Store { addr, value, ty } => {
                    if let Operand::Reg(r) = addr {
                        if dead_addrs.contains(&r.0) {
                            continue;
                        }
                    }
                    let ty = if is_ptr_to(prog, *ty, rid) {
                        index_ty
                    } else {
                        *ty
                    };
                    nb.push(Instr::Store {
                        addr: *addr,
                        value: *value,
                        ty,
                    });
                }
                Instr::Load { dst, addr, ty } => {
                    if let Operand::Reg(r) = addr {
                        if dead_addrs.contains(&r.0) {
                            return Err(RewriteError::DeadFieldRead(format!("in `{fname}`")));
                        }
                    }
                    let ty = if is_ptr_to(prog, *ty, rid) {
                        index_ty
                    } else {
                        *ty
                    };
                    nb.push(Instr::Load {
                        dst: *dst,
                        addr: *addr,
                        ty,
                    });
                }
                Instr::Cast { dst, src, from, to } => {
                    let from = if is_ptr_to(prog, *from, rid) {
                        index_ty
                    } else {
                        *from
                    };
                    let to = if is_ptr_to(prog, *to, rid) {
                        index_ty
                    } else {
                        *to
                    };
                    nb.push(Instr::Cast {
                        dst: *dst,
                        src: *src,
                        from,
                        to,
                    });
                }
                other => nb.push(other.clone()),
            }
        }
        new_blocks.push(slo_ir::BasicBlock { instrs: nb });
    }

    if !entry_loads.is_empty() {
        let first = &mut new_blocks[0].instrs;
        entry_loads.append(first);
        *first = entry_loads;
    }

    let fm = prog.func_mut(fid);
    fm.blocks = new_blocks;
    fm.num_regs = next_reg;
    Ok(())
}

/// Convenience: peel a single type by name with no dead fields (used by
/// examples and case studies).
///
/// # Errors
///
/// Returns [`RewriteError::Unsupported`] if the record does not exist.
pub fn peel_by_name(prog: &Program, name: &str) -> Result<Program, RewriteError> {
    let rid = prog
        .types
        .record_by_name(name)
        .ok_or_else(|| RewriteError::Unsupported(format!("no record `{name}`")))?;
    let mut plan = crate::plan::TransformPlan::default();
    plan.types
        .insert(rid, crate::plan::TypeTransform::Peel { dead: vec![] });
    crate::rewrite::apply_plan(prog, &plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_ir::parser::parse;
    use slo_ir::verify::assert_valid;
    use slo_vm::{run, Value, VmOptions};

    const ART: &str = r#"
record elem { w: f64, t: f64 }
global P: ptr<elem>
func main() -> f64 {
bb0:
  r0 = alloc elem, 100
  gstore r0, P
  r1 = 0
  jump bb1
bb1:
  r2 = cmp.lt r1, 100
  br r2, bb2, bb3
bb2:
  r3 = gload P
  r4 = indexaddr r3, elem, r1
  r5 = fieldaddr r4, elem.w
  store 2.0, r5 : f64
  r6 = fieldaddr r4, elem.t
  store 3.0, r6 : f64
  r1 = add r1, 1
  jump bb1
bb3:
  r7 = 0
  r8 = 0.0
  jump bb4
bb4:
  r9 = cmp.lt r7, 100
  br r9, bb5, bb6
bb5:
  r10 = gload P
  r11 = indexaddr r10, elem, r7
  r12 = fieldaddr r11, elem.w
  r13 = load r12 : f64
  r8 = add r8, r13
  r7 = add r7, 1
  jump bb4
bb6:
  ret r8
}
"#;

    #[test]
    fn peel_preserves_semantics() {
        let p = parse(ART).expect("parse");
        let before = run(&p, &VmOptions::default()).expect("run before");
        let q = peel_by_name(&p, "elem").expect("peel");
        assert_valid(&q);
        let after = run(&q, &VmOptions::default()).expect("run after");
        assert_eq!(before.exit, Value::Float(200.0));
        assert_eq!(after.exit, Value::Float(200.0));
    }

    #[test]
    fn peel_creates_piece_records_and_globals() {
        let p = parse(ART).expect("parse");
        let q = peel_by_name(&p, "elem").expect("peel");
        assert!(q.types.record_by_name("elem_p_w").is_some());
        assert!(q.types.record_by_name("elem_p_t").is_some());
        assert!(q.global_by_name("__peel_elem_w").is_some());
        assert!(q.global_by_name("__peel_elem_t").is_some());
        // the original global is retyped to an index
        let pg = q.global_by_name("P").expect("P");
        assert!(matches!(
            q.types.get(q.global(pg).ty),
            Type::Scalar(ScalarKind::I64)
        ));
    }

    #[test]
    fn peel_improves_single_field_traversal() {
        // only field w is traversed in the second loop: after peeling the
        // traversal touches a dense f64 array instead of 16-byte structs
        let p = parse(ART).expect("parse");
        let q = peel_by_name(&p, "elem").expect("peel");
        let node = q.types.record_by_name("elem_p_w").expect("piece");
        assert_eq!(q.types.layout_of(node).size, 8);
    }

    #[test]
    fn peel_with_dead_field() {
        let src = r#"
record elem { live: f64, dead: f64 }
global P: ptr<elem>
func main() -> f64 {
bb0:
  r0 = alloc elem, 10
  gstore r0, P
  r1 = gload P
  r2 = indexaddr r1, elem, 3
  r3 = fieldaddr r2, elem.dead
  store 9.0, r3 : f64
  r4 = fieldaddr r2, elem.live
  store 4.0, r4 : f64
  r5 = load r4 : f64
  ret r5
}
"#;
        let p = parse(src).expect("parse");
        let rid = p.types.record_by_name("elem").expect("elem");
        let mut plan = crate::plan::TransformPlan::default();
        plan.types
            .insert(rid, crate::plan::TypeTransform::Peel { dead: vec![1] });
        let q = crate::rewrite::apply_plan(&p, &plan).expect("peel");
        assert_valid(&q);
        let out = run(&q, &VmOptions::default()).expect("run");
        assert_eq!(out.exit, Value::Float(4.0));
        assert!(q.types.record_by_name("elem_p_dead").is_none());
    }

    #[test]
    fn interleave_preserves_semantics() {
        let p = parse(ART).expect("parse");
        let before = run(&p, &VmOptions::default()).expect("run before");
        let mut q = p.clone();
        let elem = p.types.record_by_name("elem").expect("elem");
        apply_interleave(&mut q, elem, &[]).expect("interleave");
        assert_valid(&q);
        let after = run(&q, &VmOptions::default()).expect("run after");
        assert_eq!(before.exit, after.exit);
        // exactly one allocation remains (plus whatever main had)
        let main = q.main().expect("main");
        let allocs = q
            .instrs_of(main)
            .filter(|(_, i)| matches!(i, slo_ir::Instr::Alloc { .. }))
            .count();
        assert_eq!(allocs, 1, "interleaving keeps a single allocation");
        // total bytes allocated match the region layout (100 * 16 bytes)
        assert_eq!(after.stats.allocated_bytes, 1600);
    }

    #[test]
    fn interleave_requires_constant_count() {
        let src = r#"
record elem { w: f64 }
global P: ptr<elem>
func main() -> i64 {
bb0:
  r0 = 100
  r1 = alloc elem, r0
  gstore r1, P
  ret 0
}
"#;
        let p = parse(src).expect("parse");
        let mut q = p.clone();
        let elem = p.types.record_by_name("elem").expect("elem");
        match apply_interleave(&mut q, elem, &[]) {
            Err(RewriteError::Unsupported(msg)) => {
                assert!(msg.contains("constant"), "{msg}");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn peel_across_functions() {
        let src = r#"
record elem { w: f64 }
global P: ptr<elem>
func sum(ptr<elem>, i64) -> f64 {
bb0:
  r2 = 0
  r3 = 0.0
  jump bb1
bb1:
  r4 = cmp.lt r2, r1
  br r4, bb2, bb3
bb2:
  r5 = indexaddr r0, elem, r2
  r6 = fieldaddr r5, elem.w
  r7 = load r6 : f64
  r3 = add r3, r7
  r2 = add r2, 1
  jump bb1
bb3:
  ret r3
}
func main() -> f64 {
bb0:
  r0 = alloc elem, 50
  gstore r0, P
  r1 = 0
  jump bb1
bb1:
  r2 = cmp.lt r1, 50
  br r2, bb2, bb3
bb2:
  r3 = gload P
  r4 = indexaddr r3, elem, r1
  r5 = fieldaddr r4, elem.w
  store 1.0, r5 : f64
  r1 = add r1, 1
  jump bb1
bb3:
  r6 = gload P
  r7 = call sum(r6, 50)
  ret r7
}
"#;
        let p = parse(src).expect("parse");
        let before = run(&p, &VmOptions::default()).expect("run before");
        let q = peel_by_name(&p, "elem").expect("peel");
        assert_valid(&q);
        let after = run(&q, &VmOptions::default()).expect("run after");
        assert_eq!(before.exit, Value::Float(50.0));
        assert_eq!(after.exit, Value::Float(50.0));
        // sum's parameter is now an index
        let sum = q.func_by_name("sum").expect("sum");
        assert!(matches!(
            q.types.get(q.func(sum).params[0].1),
            Type::Scalar(ScalarKind::I64)
        ));
    }
}
