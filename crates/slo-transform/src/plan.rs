//! Transformation planning — the paper's §2.4 heuristics.
//!
//! Given the IPA legality verdicts and the profitability analysis, decide
//! per record type whether (and how) to transform it:
//!
//! * **Dead fields are always removed** (subject to bit-field/alignment
//!   guards).
//! * **Peeling is always performed** when no link pointers would be needed
//!   (the 179.art pattern: a non-recursive type reached only through
//!   global pointers from a single allocation).
//! * **Splitting** moves fields with relative hotness below the threshold
//!   `T_s` into a cold section reached through a link pointer; at least
//!   two fields must be split out for the transformation to pay for the
//!   link pointer. `T_s` defaults to 3% under PBO and 7.5% under ISPBO.
//! * **Reordering** is only performed in the context of splitting: the
//!   surviving hot fields are ordered by descending hotness with greedy
//!   affinity grouping.
//! * Only **dynamically allocated** types are transformed; types with only
//!   global/local variable instances are left alone.

use slo_analysis::affinity::{AffinityGraph, FieldCounts};
use slo_analysis::ipa::IpaResult;
use slo_ir::{Instr, Operand, Program, RecordId, Type};
use std::collections::HashMap;

/// What to do with one record type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeTransform {
    /// Leave the type alone.
    None,
    /// Remove the listed (dead/unused) fields; no other layout change.
    RemoveDead {
        /// Field indices to remove.
        dead: Vec<u32>,
    },
    /// Split into a hot root and a cold part behind a link pointer.
    Split {
        /// Hot fields in their new order (indices into the original type).
        hot_order: Vec<u32>,
        /// Cold (split-out) fields, original indices.
        cold: Vec<u32>,
        /// Dead fields removed entirely, original indices.
        dead: Vec<u32>,
    },
    /// Peel into one array per field (no link pointers).
    Peel {
        /// Dead fields dropped during peeling, original indices.
        dead: Vec<u32>,
    },
    /// Instance-interleave: one allocation, per-field regions (Truong et
    /// al.; needs a compile-time-constant allocation count).
    Interleave {
        /// Dead fields dropped, original indices.
        dead: Vec<u32>,
    },
}

impl TypeTransform {
    /// Number of split-out plus dead fields — Table 3's "S/D" column.
    pub fn sd_count(&self) -> (usize, usize) {
        match self {
            TypeTransform::None => (0, 0),
            TypeTransform::RemoveDead { dead } => (0, dead.len()),
            TypeTransform::Split { cold, dead, .. } => (cold.len(), dead.len()),
            TypeTransform::Peel { dead } | TypeTransform::Interleave { dead } => (0, dead.len()),
        }
    }

    /// Whether this is an actual transformation.
    pub fn is_some(&self) -> bool {
        !matches!(self, TypeTransform::None)
    }
}

/// A whole-program transformation plan (IPA's "control information for
/// the BE").
#[derive(Debug, Clone, Default)]
pub struct TransformPlan {
    /// Planned transform per record type.
    pub types: HashMap<RecordId, TypeTransform>,
}

impl TransformPlan {
    /// The planned transform for `rid` (`None` when unplanned).
    pub fn of(&self, rid: RecordId) -> &TypeTransform {
        self.types.get(&rid).unwrap_or(&TypeTransform::None)
    }

    /// Number of transformed types — Table 3's `T_t`.
    pub fn num_transformed(&self) -> usize {
        self.types.values().filter(|t| t.is_some()).count()
    }
}

/// Heuristic knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeuristicsConfig {
    /// `T_s`: fields with relative hotness (fraction of the hottest, in
    /// percent) below this are split out. 3.0 for PBO, 7.5 for ISPBO.
    pub split_threshold: f64,
    /// Minimum number of fields that must be split out (the link pointer
    /// must pay for itself). The paper uses 2.
    pub min_split_fields: usize,
    /// Allow peeling.
    pub enable_peel: bool,
    /// Allow splitting.
    pub enable_split: bool,
    /// Allow dead-field removal.
    pub enable_dead_removal: bool,
    /// Use instance interleaving instead of separate-array peeling when
    /// the allocation count is a compile-time constant (off by default;
    /// the paper did not find opportunities warranting it in its suite).
    pub prefer_interleave: bool,
}

impl HeuristicsConfig {
    /// Defaults for profile-based compilation (T_s = 3%).
    pub fn pbo() -> Self {
        HeuristicsConfig {
            split_threshold: 3.0,
            min_split_fields: 2,
            enable_peel: true,
            enable_split: true,
            enable_dead_removal: true,
            prefer_interleave: false,
        }
    }

    /// Defaults for non-profile compilation (T_s = 7.5%).
    pub fn ispbo() -> Self {
        HeuristicsConfig {
            split_threshold: 7.5,
            ..Self::pbo()
        }
    }

    /// Start building from the PBO defaults (the `Default` impl).
    pub fn builder() -> HeuristicsConfigBuilder {
        HeuristicsConfigBuilder {
            cfg: Self::default(),
        }
    }
}

/// Builder for [`HeuristicsConfig`] (see [`HeuristicsConfig::builder`]).
#[derive(Debug, Clone)]
pub struct HeuristicsConfigBuilder {
    cfg: HeuristicsConfig,
}

impl HeuristicsConfigBuilder {
    /// `T_s`: relative-hotness split threshold in percent.
    pub fn split_threshold(mut self, ts: f64) -> Self {
        self.cfg.split_threshold = ts;
        self
    }

    /// Minimum number of split-out fields for a split to pay off.
    pub fn min_split_fields(mut self, n: usize) -> Self {
        self.cfg.min_split_fields = n;
        self
    }

    /// Allow peeling.
    pub fn enable_peel(mut self, on: bool) -> Self {
        self.cfg.enable_peel = on;
        self
    }

    /// Allow splitting.
    pub fn enable_split(mut self, on: bool) -> Self {
        self.cfg.enable_split = on;
        self
    }

    /// Allow dead-field removal.
    pub fn enable_dead_removal(mut self, on: bool) -> Self {
        self.cfg.enable_dead_removal = on;
        self
    }

    /// Prefer instance interleaving over separate-array peeling.
    pub fn prefer_interleave(mut self, on: bool) -> Self {
        self.cfg.prefer_interleave = on;
        self
    }

    /// Finish.
    pub fn build(self) -> HeuristicsConfig {
        self.cfg
    }
}

impl Default for HeuristicsConfig {
    fn default() -> Self {
        Self::pbo()
    }
}

/// Decide the transformation plan for a program.
pub fn decide(
    prog: &Program,
    ipa: &IpaResult,
    graphs: &HashMap<RecordId, AffinityGraph>,
    counts: &HashMap<(RecordId, u32), FieldCounts>,
    cfg: &HeuristicsConfig,
) -> TransformPlan {
    let mut plan = TransformPlan::default();
    for rid in prog.types.record_ids() {
        let verdict = ipa.verdict(rid);
        if !verdict.legal() {
            plan.types.insert(rid, TypeTransform::None);
            continue;
        }
        // Only dynamically allocated objects are transformed.
        if !verdict.attrs.dyn_alloc {
            plan.types.insert(rid, TypeTransform::None);
            continue;
        }

        let rec = prog.types.record(rid);
        let nfields = rec.fields.len() as u32;
        let graph = graphs.get(&rid);

        // --- dead / unused fields --------------------------------------
        let mut dead: Vec<u32> = Vec::new();
        if cfg.enable_dead_removal {
            for f in 0..nfields {
                if rec.fields[f as usize].bit_width.is_some() {
                    continue; // alignment/bit-field guard
                }
                let c = counts.get(&(rid, f)).copied().unwrap_or_default();
                if c.reads == 0.0 {
                    // no reads: dead (written) or unused (untouched)
                    dead.push(f);
                }
            }
        }
        // never remove everything
        if dead.len() == rec.fields.len() && !dead.is_empty() {
            dead.pop();
        }

        // --- peeling ------------------------------------------------------
        if cfg.enable_peel && peelable(prog, rid, ipa) {
            let const_count = verdict
                .attrs
                .alloc_sites
                .first()
                .and_then(|s| s.const_count)
                .is_some();
            let t = if cfg.prefer_interleave && const_count {
                TypeTransform::Interleave { dead }
            } else {
                TypeTransform::Peel { dead }
            };
            plan.types.insert(rid, t);
            continue;
        }

        // --- splitting ------------------------------------------------------
        if cfg.enable_split {
            if let Some(g) = graph {
                let rel = g.relative_hotness();
                let mut cold: Vec<u32> = Vec::new();
                let mut hot: Vec<u32> = Vec::new();
                for f in 0..nfields {
                    if dead.contains(&f) {
                        continue;
                    }
                    if rec.fields[f as usize].bit_width.is_some() {
                        hot.push(f); // keep bit-fields in the root
                        continue;
                    }
                    if rel[f as usize] < cfg.split_threshold {
                        cold.push(f);
                    } else {
                        hot.push(f);
                    }
                }
                let enough_cold = cold.len() >= cfg.min_split_fields;
                let any_hot = !hot.is_empty();
                if enough_cold && any_hot {
                    let hot_order = order_hot_fields(&hot, g);
                    plan.types.insert(
                        rid,
                        TypeTransform::Split {
                            hot_order,
                            cold,
                            dead,
                        },
                    );
                    continue;
                }
            }
        }

        // --- dead removal only -----------------------------------------
        if !dead.is_empty() {
            plan.types.insert(rid, TypeTransform::RemoveDead { dead });
        } else {
            plan.types.insert(rid, TypeTransform::None);
        }
    }
    plan
}

/// Order the hot fields: hottest first, then greedily append the most
/// affine remaining field (reordering in the context of splitting).
pub fn order_hot_fields(hot: &[u32], g: &AffinityGraph) -> Vec<u32> {
    if hot.is_empty() {
        return Vec::new();
    }
    let mut remaining: Vec<u32> = hot.to_vec();
    remaining.sort_by(|a, b| {
        g.hotness(*b)
            .partial_cmp(&g.hotness(*a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut order = vec![remaining.remove(0)];
    while !remaining.is_empty() {
        let last = *order.last().expect("order is non-empty");
        // pick the most affine to the last placed field; fall back to the
        // hottest remaining on ties at zero
        let mut best = 0;
        let mut best_score = -1.0f64;
        for (i, &f) in remaining.iter().enumerate() {
            let score = g.edge(last, f);
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        if best_score <= 0.0 {
            // no affinity: keep hotness order
            order.push(remaining.remove(0));
        } else {
            order.push(remaining.remove(best));
        }
    }
    order
}

/// Whether a type qualifies for peeling (no link pointers needed).
///
/// Conservative conditions, matching the 179.art pattern the paper peels:
/// * the type is not recursive and no *other* record stores a pointer to
///   it (pieces could not be reached through foreign structures),
/// * exactly one allocation site, never freed or reallocated,
/// * the allocation is published through at least one global pointer,
/// * no null-pointer constants or raw pointer arithmetic mix with
///   pointers to the type (indices replace pointers during the rewrite).
pub fn peelable(prog: &Program, rid: RecordId, ipa: &IpaResult) -> bool {
    let v = ipa.verdict(rid);
    if !v.legal() || !v.attrs.dyn_alloc {
        return false;
    }
    if v.attrs.alloc_sites.len() != 1 || v.attrs.freed || v.attrs.realloced {
        return false;
    }
    if !v.attrs.has_global_ptr {
        return false;
    }
    if prog.types.is_recursive(rid) {
        return false;
    }
    // no record (including itself) may embed a pointer to rid
    for other in prog.types.record_ids() {
        for f in &prog.types.record(other).fields {
            if points_to(prog, f.ty, rid) {
                return false;
            }
        }
    }
    // scan code: no null constants or arithmetic on ptr<rid> registers
    for fid in prog.func_ids() {
        if !prog.func(fid).is_defined() {
            continue;
        }
        let tys = slo_analysis::util::reg_types(prog, fid);
        let is_rid_ptr = |op: &Operand| -> bool {
            match op {
                Operand::Reg(r) => tys[r.0 as usize]
                    .map(|t| prog.types.is_ptr(t) && prog.types.involved_record(t) == Some(rid))
                    .unwrap_or(false),
                _ => false,
            }
        };
        for (_, ins) in prog.instrs_of(fid) {
            match ins {
                Instr::Bin { lhs, rhs, .. }
                    if (is_rid_ptr(lhs) || is_rid_ptr(rhs)) => {
                        return false;
                    }
                Instr::Cmp { lhs, rhs, .. } => {
                    // comparing two peeled indices is fine; comparing
                    // against null is not
                    let null_l = matches!(lhs, Operand::Const(slo_ir::Const::Null));
                    let null_r = matches!(rhs, Operand::Const(slo_ir::Const::Null));
                    if (is_rid_ptr(lhs) && null_r) || (is_rid_ptr(rhs) && null_l) {
                        return false;
                    }
                }
                Instr::Store { value, ty, .. }
                    // storing a ptr<rid> *value* into memory is only safe
                    // when the destination cell is itself retyped; we
                    // forbid it except through the designated globals
                    if is_rid_ptr(value)
                        && prog.types.involved_record(*ty) == Some(rid)
                    => {
                        return false;
                    }
                _ => {}
            }
        }
    }
    true
}

fn points_to(prog: &Program, ty: slo_ir::TypeId, rid: RecordId) -> bool {
    match prog.types.get(ty) {
        Type::Ptr(inner) => prog.types.involved_record(*inner) == Some(rid),
        Type::Array(elem, _) => points_to(prog, *elem, rid),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_analysis::ipa::{analyze_program, LegalityConfig};
    use slo_analysis::schemes::{affinity_graphs, block_frequencies, WeightScheme};
    use slo_ir::parser::parse;

    fn plan_for(src: &str, cfg: &HeuristicsConfig) -> (slo_ir::Program, TransformPlan) {
        let p = parse(src).expect("parse");
        let ipa = analyze_program(&p, &LegalityConfig::default());
        let freqs = block_frequencies(&p, &WeightScheme::Ispbo);
        let graphs = affinity_graphs(&p, &WeightScheme::Ispbo);
        let counts = slo_analysis::affinity::build_field_counts(&p, &freqs);
        let plan = decide(&p, &ipa, &graphs, &counts, cfg);
        (p, plan)
    }

    // hot field in a loop; 3 cold fields touched once
    const SPLIT_SRC: &str = r#"
record node { hot: i64, c1: i64, c2: i64, c3: i64, link_like: ptr<node> }
func main() -> i64 {
bb0:
  r0 = alloc node, 1000
  r1 = fieldaddr r0, node.c1
  r2 = load r1 : i64
  r3 = fieldaddr r0, node.c2
  r4 = load r3 : i64
  r5 = fieldaddr r0, node.c3
  r6 = load r5 : i64
  r7 = 0
  jump bb1
bb1:
  r8 = cmp.lt r7, 1000
  br r8, bb2, bb3
bb2:
  r9 = indexaddr r0, node, r7
  r10 = fieldaddr r9, node.hot
  r11 = load r10 : i64
  r12 = fieldaddr r9, node.link_like
  r13 = load r12 : ptr<node>
  r7 = add r7, 1
  jump bb1
bb3:
  ret 0
}
"#;

    #[test]
    fn splits_cold_fields() {
        // One static loop estimates ~8.3 iterations, so straight-line cold
        // fields sit at ~12% relative hotness — exactly the "too flat"
        // histogram the paper fights with the exponent E. Use a higher
        // threshold here; the workload crate exercises the 7.5% default
        // with realistically nested/called hot code.
        let cfg = HeuristicsConfig {
            split_threshold: 20.0,
            ..HeuristicsConfig::ispbo()
        };
        let (p, plan) = plan_for(SPLIT_SRC, &cfg);
        let node = p.types.record_by_name("node").expect("node");
        match plan.of(node) {
            TypeTransform::Split {
                hot_order, cold, ..
            } => {
                assert!(cold.contains(&1) && cold.contains(&2) && cold.contains(&3));
                assert!(hot_order.contains(&0) && hot_order.contains(&4));
            }
            other => panic!("expected split, got {other:?}"),
        }
        let (s, _) = plan.of(node).sd_count();
        assert_eq!(s, 3);
    }

    #[test]
    fn no_split_with_single_cold_field() {
        let src = r#"
record node { hot: i64, c1: i64 }
func main() -> i64 {
bb0:
  r0 = alloc node, 1000
  r1 = fieldaddr r0, node.c1
  r2 = load r1 : i64
  r3 = 0
  jump bb1
bb1:
  r4 = cmp.lt r3, 1000
  br r4, bb2, bb3
bb2:
  r5 = indexaddr r0, node, r3
  r6 = fieldaddr r5, node.hot
  r7 = load r6 : i64
  r3 = add r3, 1
  jump bb1
bb3:
  ret 0
}
"#;
        let (p, plan) = plan_for(src, &HeuristicsConfig::ispbo());
        let node = p.types.record_by_name("node").expect("node");
        assert!(
            !matches!(plan.of(node), TypeTransform::Split { .. }),
            "one cold field must not trigger a split: {:?}",
            plan.of(node)
        );
    }

    #[test]
    fn dead_fields_detected() {
        let src = r#"
record node { used: i64, written_only: i64, untouched: i64 }
func main() -> i64 {
bb0:
  r0 = alloc node, 100
  r1 = fieldaddr r0, node.used
  store 1, r1 : i64
  r2 = load r1 : i64
  r3 = fieldaddr r0, node.written_only
  store 2, r3 : i64
  ret r2
}
"#;
        let (p, plan) = plan_for(src, &HeuristicsConfig::ispbo());
        let node = p.types.record_by_name("node").expect("node");
        match plan.of(node) {
            TypeTransform::RemoveDead { dead } => {
                assert_eq!(dead, &vec![1, 2]);
            }
            other => panic!("expected dead removal, got {other:?}"),
        }
    }

    #[test]
    fn peelable_art_pattern() {
        let src = r#"
record elem { w: f64, t: f64 }
global P: ptr<elem>
func main() -> i64 {
bb0:
  r0 = alloc elem, 10000
  gstore r0, P
  r1 = 0
  jump bb1
bb1:
  r2 = cmp.lt r1, 10000
  br r2, bb2, bb3
bb2:
  r3 = gload P
  r4 = indexaddr r3, elem, r1
  r5 = fieldaddr r4, elem.w
  r6 = load r5 : f64
  r1 = add r1, 1
  jump bb1
bb3:
  ret 0
}
"#;
        let (p, plan) = plan_for(src, &HeuristicsConfig::ispbo());
        let elem = p.types.record_by_name("elem").expect("elem");
        assert!(matches!(plan.of(elem), TypeTransform::Peel { .. }));
    }

    #[test]
    fn recursive_type_not_peelable() {
        let src = r#"
record list { v: i64, next: ptr<list> }
global P: ptr<list>
func main() -> i64 {
bb0:
  r0 = alloc list, 100
  gstore r0, P
  ret 0
}
"#;
        let p = parse(src).expect("parse");
        let ipa = analyze_program(&p, &LegalityConfig::default());
        let list = p.types.record_by_name("list").expect("list");
        assert!(!peelable(&p, list, &ipa));
    }

    #[test]
    fn freed_type_not_peelable() {
        let src = r#"
record elem { w: f64 }
global P: ptr<elem>
func main() -> i64 {
bb0:
  r0 = alloc elem, 100
  gstore r0, P
  free r0
  ret 0
}
"#;
        let p = parse(src).expect("parse");
        let ipa = analyze_program(&p, &LegalityConfig::default());
        let elem = p.types.record_by_name("elem").expect("elem");
        assert!(!peelable(&p, elem, &ipa));
    }

    #[test]
    fn illegal_type_untransformed() {
        let src = r#"
record node { a: i64, b: i64, c: i64 }
func main() -> i64 {
bb0:
  r0 = alloc node, 100
  r1 = cast r0 : ptr<node> -> i64
  ret r1
}
"#;
        let (p, plan) = plan_for(src, &HeuristicsConfig::ispbo());
        let node = p.types.record_by_name("node").expect("node");
        assert_eq!(plan.of(node), &TypeTransform::None);
        assert_eq!(plan.num_transformed(), 0);
    }

    #[test]
    fn non_allocated_type_untransformed() {
        let src = r#"
record node { a: i64, b: i64 }
global N: node
func main() -> i64 {
bb0:
  ret 0
}
"#;
        let (p, plan) = plan_for(src, &HeuristicsConfig::ispbo());
        let node = p.types.record_by_name("node").expect("node");
        assert_eq!(plan.of(node), &TypeTransform::None);
    }

    #[test]
    fn hot_order_by_hotness_and_affinity() {
        let mut g = AffinityGraph::new(RecordId(0), 4);
        // field 0 hottest; 0-2 strongly affine; 1 medium; 3 weak
        let mk = |fs: &[u32]| {
            fs.iter()
                .copied()
                .collect::<std::collections::BTreeSet<u32>>()
        };
        g.add_group(&mk(&[0, 2]), 100.0);
        g.add_group(&mk(&[1]), 60.0);
        g.add_group(&mk(&[3]), 5.0);
        let order = order_hot_fields(&[0, 1, 2, 3], &g);
        assert_eq!(order[0], 0, "hottest first");
        assert_eq!(order[1], 2, "affinity partner next");
        assert_eq!(order, vec![0, 2, 1, 3]);
    }

    #[test]
    fn bitfields_never_removed_or_split() {
        let src = r#"
record node { hot: i64, flags: u32:3, c1: i64, c2: i64 }
func main() -> i64 {
bb0:
  r0 = alloc node, 1000
  r1 = fieldaddr r0, node.c1
  r2 = load r1 : i64
  r3 = fieldaddr r0, node.c2
  r4 = load r3 : i64
  r5 = 0
  jump bb1
bb1:
  r6 = cmp.lt r5, 1000
  br r6, bb2, bb3
bb2:
  r7 = indexaddr r0, node, r5
  r8 = fieldaddr r7, node.hot
  r9 = load r8 : i64
  r5 = add r5, 1
  jump bb1
bb3:
  ret 0
}
"#;
        let cfg = HeuristicsConfig {
            split_threshold: 20.0,
            ..HeuristicsConfig::ispbo()
        };
        let (p, plan) = plan_for(src, &cfg);
        let node = p.types.record_by_name("node").expect("node");
        if let TypeTransform::Split {
            hot_order,
            cold,
            dead,
        } = plan.of(node)
        {
            assert!(hot_order.contains(&1), "bit-field stays in root");
            assert!(!cold.contains(&1));
            assert!(!dead.contains(&1));
        } else {
            panic!("expected split, got {:?}", plan.of(node));
        }
    }
}
