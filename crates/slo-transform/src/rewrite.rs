//! The BE: applying a [`TransformPlan`] to a program.
//!
//! Structure splitting rewrites the type table (the root keeps the hot
//! fields in their new order plus a trailing link pointer; a fresh
//! `<name>_cold` record receives the cold fields), every allocation site
//! (allocate both parts, then run a compiler-inserted loop wiring the link
//! pointers — exactly the paper's Figure 1(b) shape), every `free` (free
//! the cold part through the link first), and every field access (cold
//! accesses indirect through the link pointer — the extra load whose cost
//! §2.4 measures). Dead-field removal drops the fields from the layout and
//! deletes the now-dead stores.

use crate::plan::{TransformPlan, TypeTransform};
use slo_ir::{
    BasicBlock, BinOp, BlockId, CmpOp, Const, FuncId, Instr, Operand, Program, RecordId,
    RecordType, Reg, TypeId,
};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Rewrite failures (all indicate planner/rewriter disagreement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// A load from a field the plan removed.
    DeadFieldRead(String),
    /// A realloc of a split type (the planner must not split those).
    ReallocOfSplitType(String),
    /// Any other unsupported construct.
    Unsupported(String),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::DeadFieldRead(m) => write!(f, "load from removed field: {m}"),
            RewriteError::ReallocOfSplitType(m) => write!(f, "realloc of split type: {m}"),
            RewriteError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
        }
    }
}

impl std::error::Error for RewriteError {}

/// Where an original field ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FieldLoc {
    /// In the (rewritten) root record at this index.
    Hot(u32),
    /// In the cold record at this index.
    Cold(u32),
    /// Removed entirely.
    Removed,
}

#[derive(Debug, Clone)]
struct TypeRewrite {
    /// Per original field index, where it went.
    map: Vec<FieldLoc>,
    /// The cold record (splits only).
    cold: Option<ColdPart>,
}

#[derive(Debug, Clone, Copy)]
struct ColdPart {
    rid: RecordId,
    /// `Type::Record(cold_rid)` id.
    ty: TypeId,
    /// `ptr<cold>` id.
    ptr_ty: TypeId,
    /// Index of the link field in the rewritten root.
    link_idx: u32,
}

/// Apply a plan, producing the transformed program. The input program is
/// not modified.
///
/// # Errors
///
/// Returns a [`RewriteError`] when the plan conflicts with the code (e.g.
/// a split type is `realloc`ed, or a removed field is read).
pub fn apply_plan(prog: &Program, plan: &TransformPlan) -> Result<Program, RewriteError> {
    let mut out = prog.clone();

    // Peels/interleaves first (whole-program pointer→index rewrite),
    // then splits.
    for rid in prog.types.record_ids() {
        match plan.of(rid) {
            TypeTransform::Peel { dead } => {
                crate::peel::apply_peel(&mut out, rid, dead)?;
            }
            TypeTransform::Interleave { dead } => {
                crate::peel::apply_interleave(&mut out, rid, dead)?;
            }
            _ => {}
        }
    }

    // Register types must be inferred against the *pre-split* type table
    // (field indices change during the rewrite).
    let mut reg_tys_of: HashMap<FuncId, Vec<Option<TypeId>>> = HashMap::new();
    for fid in out.func_ids() {
        if out.func(fid).is_defined() {
            reg_tys_of.insert(fid, slo_analysis::util::reg_types(&out, fid));
        }
    }

    // Build type rewrites for splits and dead removals.
    let mut rewrites: HashMap<RecordId, TypeRewrite> = HashMap::new();
    for rid in prog.types.record_ids() {
        match plan.of(rid) {
            TypeTransform::Split {
                hot_order,
                cold,
                dead,
            } => {
                rewrites.insert(rid, build_split(&mut out, rid, hot_order, cold, dead));
            }
            TypeTransform::RemoveDead { dead } => {
                rewrites.insert(rid, build_removal(&mut out, rid, dead));
            }
            _ => {}
        }
    }

    if rewrites.is_empty() {
        return Ok(out);
    }

    // Rewrite every defined function.
    for fid in out.func_ids().collect::<Vec<_>>() {
        if !out.func(fid).is_defined() {
            continue;
        }
        let reg_tys = reg_tys_of.remove(&fid).unwrap_or_default();
        rewrite_function(&mut out, fid, &rewrites, &reg_tys)?;
    }

    Ok(out)
}

/// Mutate the type table for a split; returns the field map.
fn build_split(
    out: &mut Program,
    rid: RecordId,
    hot_order: &[u32],
    cold: &[u32],
    dead: &[u32],
) -> TypeRewrite {
    let rec = out.types.record(rid).clone();
    let mut map = vec![FieldLoc::Removed; rec.fields.len()];

    let mut hot_fields = Vec::new();
    for (new_i, &old) in hot_order.iter().enumerate() {
        map[old as usize] = FieldLoc::Hot(new_i as u32);
        hot_fields.push(rec.fields[old as usize].clone());
    }
    let mut cold_fields = Vec::new();
    for (new_i, &old) in cold.iter().enumerate() {
        map[old as usize] = FieldLoc::Cold(new_i as u32);
        cold_fields.push(rec.fields[old as usize].clone());
    }
    for &d in dead {
        map[d as usize] = FieldLoc::Removed;
    }

    // the cold record
    let cold_name = unique_record_name(out, &format!("{}_cold", rec.name));
    let (cold_rid, cold_ty) = out.types.add_record(RecordType {
        name: cold_name,
        fields: cold_fields,
    });
    let cold_ptr = out.types.ptr(cold_ty);

    // the root: hot fields + trailing link
    let link_idx = hot_fields.len() as u32;
    hot_fields.push(slo_ir::Field::new("__link", cold_ptr));
    out.types.replace_record(
        rid,
        RecordType {
            name: rec.name,
            fields: hot_fields,
        },
    );

    TypeRewrite {
        map,
        cold: Some(ColdPart {
            rid: cold_rid,
            ty: cold_ty,
            ptr_ty: cold_ptr,
            link_idx,
        }),
    }
}

/// Mutate the type table for dead-field removal; returns the field map.
fn build_removal(out: &mut Program, rid: RecordId, dead: &[u32]) -> TypeRewrite {
    let rec = out.types.record(rid).clone();
    let mut map = Vec::with_capacity(rec.fields.len());
    let mut kept = Vec::new();
    for (i, f) in rec.fields.iter().enumerate() {
        if dead.contains(&(i as u32)) {
            map.push(FieldLoc::Removed);
        } else {
            map.push(FieldLoc::Hot(kept.len() as u32));
            kept.push(f.clone());
        }
    }
    out.types.replace_record(
        rid,
        RecordType {
            name: rec.name,
            fields: kept,
        },
    );
    TypeRewrite { map, cold: None }
}

fn unique_record_name(out: &Program, base: &str) -> String {
    if out.types.record_by_name(base).is_none() {
        return base.to_string();
    }
    for i in 2.. {
        let cand = format!("{base}{i}");
        if out.types.record_by_name(&cand).is_none() {
            return cand;
        }
    }
    unreachable!("name space exhausted")
}

fn rewrite_function(
    out: &mut Program,
    fid: FuncId,
    rewrites: &HashMap<RecordId, TypeRewrite>,
    reg_tys: &[Option<TypeId>],
) -> Result<(), RewriteError> {
    let f = out.func(fid).clone();
    let fname = f.name.clone();

    let mut new_blocks: Vec<BasicBlock> =
        (0..f.blocks.len()).map(|_| BasicBlock::default()).collect();
    let mut next_reg = f.num_regs;
    let mut fresh = || {
        let r = Reg(next_reg);
        next_reg += 1;
        r
    };
    let mut dead_addrs: HashSet<u32> = HashSet::new();

    // record id of a pointer-typed register, pre-rewrite
    let ptr_rec = |r: Reg, prog: &Program| -> Option<RecordId> {
        reg_tys[r.0 as usize].and_then(|t| {
            if prog.types.is_ptr(t) {
                prog.types.involved_record(t)
            } else {
                None
            }
        })
    };

    for (bi, block) in f.blocks.iter().enumerate() {
        let mut cur = bi;
        for ins in &block.instrs {
            match ins {
                Instr::FieldAddr {
                    dst,
                    base,
                    record,
                    field,
                } => {
                    let Some(rw) = rewrites.get(record) else {
                        new_blocks[cur].instrs.push(ins.clone());
                        continue;
                    };
                    match rw.map[*field as usize] {
                        FieldLoc::Hot(ni) => {
                            new_blocks[cur].instrs.push(Instr::FieldAddr {
                                dst: *dst,
                                base: *base,
                                record: *record,
                                field: ni,
                            });
                        }
                        FieldLoc::Cold(ni) => {
                            let cold = rw.cold.expect("cold part exists for split");
                            let la = fresh();
                            let cp = fresh();
                            new_blocks[cur].instrs.push(Instr::FieldAddr {
                                dst: la,
                                base: *base,
                                record: *record,
                                field: cold.link_idx,
                            });
                            new_blocks[cur].instrs.push(Instr::Load {
                                dst: cp,
                                addr: la.into(),
                                ty: cold.ptr_ty,
                            });
                            new_blocks[cur].instrs.push(Instr::FieldAddr {
                                dst: *dst,
                                base: cp.into(),
                                record: cold.rid,
                                field: ni,
                            });
                        }
                        FieldLoc::Removed => {
                            dead_addrs.insert(dst.0);
                        }
                    }
                }
                Instr::Store { addr, .. } => {
                    if let Operand::Reg(r) = addr {
                        if dead_addrs.contains(&r.0) {
                            continue; // dead store removed
                        }
                    }
                    new_blocks[cur].instrs.push(ins.clone());
                }
                Instr::Load { addr, .. } => {
                    if let Operand::Reg(r) = addr {
                        if dead_addrs.contains(&r.0) {
                            return Err(RewriteError::DeadFieldRead(format!("in `{fname}`")));
                        }
                    }
                    new_blocks[cur].instrs.push(ins.clone());
                }
                Instr::Alloc {
                    dst,
                    elem,
                    count,
                    zeroed,
                } => {
                    let rec = out.types.involved_record(*elem);
                    let rw = rec.and_then(|r| rewrites.get(&r).map(|rw| (r, rw)));
                    match rw {
                        Some((r, rw)) if rw.cold.is_some() => {
                            let cold = rw.cold.expect("checked");
                            // hot alloc (unchanged instruction, new layout)
                            new_blocks[cur].instrs.push(ins.clone());
                            // cold alloc
                            let cold_reg = fresh();
                            new_blocks[cur].instrs.push(Instr::Alloc {
                                dst: cold_reg,
                                elem: cold.ty,
                                count: *count,
                                zeroed: *zeroed,
                            });
                            // link-init loop
                            let i = fresh();
                            new_blocks[cur].instrs.push(Instr::Assign {
                                dst: i,
                                src: Operand::Const(Const::Int(0)),
                            });
                            let header = push_block(&mut new_blocks);
                            let body = push_block(&mut new_blocks);
                            let cont = push_block(&mut new_blocks);
                            new_blocks[cur].instrs.push(Instr::Jump {
                                target: BlockId(header as u32),
                            });
                            let c = fresh();
                            new_blocks[header].instrs.push(Instr::Cmp {
                                dst: c,
                                op: CmpOp::Lt,
                                lhs: i.into(),
                                rhs: *count,
                            });
                            new_blocks[header].instrs.push(Instr::Branch {
                                cond: c.into(),
                                then_bb: BlockId(body as u32),
                                else_bb: BlockId(cont as u32),
                            });
                            let he = fresh();
                            let la = fresh();
                            let ce = fresh();
                            let inext = fresh();
                            new_blocks[body].instrs.push(Instr::IndexAddr {
                                dst: he,
                                base: (*dst).into(),
                                elem: *elem,
                                index: i.into(),
                            });
                            new_blocks[body].instrs.push(Instr::FieldAddr {
                                dst: la,
                                base: he.into(),
                                record: r,
                                field: cold.link_idx,
                            });
                            new_blocks[body].instrs.push(Instr::IndexAddr {
                                dst: ce,
                                base: cold_reg.into(),
                                elem: cold.ty,
                                index: i.into(),
                            });
                            new_blocks[body].instrs.push(Instr::Store {
                                addr: la.into(),
                                value: ce.into(),
                                ty: cold.ptr_ty,
                            });
                            new_blocks[body].instrs.push(Instr::Bin {
                                dst: inext,
                                op: BinOp::Add,
                                lhs: i.into(),
                                rhs: Operand::Const(Const::Int(1)),
                            });
                            new_blocks[body].instrs.push(Instr::Assign {
                                dst: i,
                                src: inext.into(),
                            });
                            new_blocks[body].instrs.push(Instr::Jump {
                                target: BlockId(header as u32),
                            });
                            cur = cont;
                        }
                        _ => new_blocks[cur].instrs.push(ins.clone()),
                    }
                }
                Instr::Free { ptr } => {
                    let split = match ptr {
                        Operand::Reg(r) => {
                            ptr_rec(*r, out).and_then(|rec| rewrites.get(&rec).map(|rw| (rec, rw)))
                        }
                        _ => None,
                    };
                    match split {
                        Some((rec, rw)) if rw.cold.is_some() => {
                            let cold = rw.cold.expect("checked");
                            let la = fresh();
                            let cp = fresh();
                            new_blocks[cur].instrs.push(Instr::FieldAddr {
                                dst: la,
                                base: *ptr,
                                record: rec,
                                field: cold.link_idx,
                            });
                            new_blocks[cur].instrs.push(Instr::Load {
                                dst: cp,
                                addr: la.into(),
                                ty: cold.ptr_ty,
                            });
                            new_blocks[cur].instrs.push(Instr::Free { ptr: cp.into() });
                            new_blocks[cur].instrs.push(Instr::Free { ptr: *ptr });
                        }
                        _ => new_blocks[cur].instrs.push(ins.clone()),
                    }
                }
                Instr::Realloc { elem, .. } => {
                    if let Some(rec) = out.types.involved_record(*elem) {
                        if rewrites.get(&rec).map(|rw| rw.cold.is_some()) == Some(true) {
                            return Err(RewriteError::ReallocOfSplitType(format!("in `{fname}`")));
                        }
                    }
                    new_blocks[cur].instrs.push(ins.clone());
                }
                other => new_blocks[cur].instrs.push(other.clone()),
            }
        }
    }

    let f = out.func_mut(fid);
    f.blocks = new_blocks;
    f.num_regs = next_reg;
    Ok(())
}

fn push_block(blocks: &mut Vec<BasicBlock>) -> usize {
    blocks.push(BasicBlock::default());
    blocks.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_ir::parser::parse;
    use slo_ir::verify::assert_valid;
    use slo_vm::{run, Value, VmOptions};

    fn split_plan(
        p: &Program,
        name: &str,
        hot: Vec<u32>,
        cold: Vec<u32>,
        dead: Vec<u32>,
    ) -> TransformPlan {
        let rid = p.types.record_by_name(name).expect("record");
        let mut plan = TransformPlan::default();
        plan.types.insert(
            rid,
            TypeTransform::Split {
                hot_order: hot,
                cold,
                dead,
            },
        );
        plan
    }

    const SRC: &str = r#"
record node { hot: i64, c1: i64, c2: i64 }
func main() -> i64 {
bb0:
  r0 = alloc node, 10
  r1 = 0
  jump bb1
bb1:
  r2 = cmp.lt r1, 10
  br r2, bb2, bb3
bb2:
  r3 = indexaddr r0, node, r1
  r4 = fieldaddr r3, node.hot
  store r1, r4 : i64
  r5 = fieldaddr r3, node.c1
  store 7, r5 : i64
  r6 = fieldaddr r3, node.c2
  store 9, r6 : i64
  r1 = add r1, 1
  jump bb1
bb3:
  r7 = indexaddr r0, node, 5
  r8 = fieldaddr r7, node.hot
  r9 = load r8 : i64
  r10 = fieldaddr r7, node.c1
  r11 = load r10 : i64
  r12 = fieldaddr r7, node.c2
  r13 = load r12 : i64
  r14 = add r9, r11
  r15 = add r14, r13
  free r0
  ret r15
}
"#;

    #[test]
    fn split_preserves_semantics() {
        let p = parse(SRC).expect("parse");
        let before = run(&p, &VmOptions::default()).expect("run before");
        let plan = split_plan(&p, "node", vec![0], vec![1, 2], vec![]);
        let q = apply_plan(&p, &plan).expect("rewrite");
        assert_valid(&q);
        let after = run(&q, &VmOptions::default()).expect("run after");
        // 5 + 7 + 9 = 21 both times
        assert_eq!(before.exit, Value::Int(21));
        assert_eq!(after.exit, Value::Int(21));
    }

    #[test]
    fn split_changes_layout() {
        let p = parse(SRC).expect("parse");
        let plan = split_plan(&p, "node", vec![0], vec![1, 2], vec![]);
        let q = apply_plan(&p, &plan).expect("rewrite");
        let node = q.types.record_by_name("node").expect("node");
        let rec = q.types.record(node);
        assert_eq!(rec.fields.len(), 2); // hot + __link
        assert_eq!(rec.fields[0].name, "hot");
        assert_eq!(rec.fields[1].name, "__link");
        let cold = q.types.record_by_name("node_cold").expect("cold record");
        assert_eq!(q.types.record(cold).fields.len(), 2);
        // root shrank from 24 to 16 bytes
        assert_eq!(q.types.layout_of(node).size, 16);
    }

    #[test]
    fn split_keeps_free_balanced() {
        let p = parse(SRC).expect("parse");
        let plan = split_plan(&p, "node", vec![0], vec![1, 2], vec![]);
        let q = apply_plan(&p, &plan).expect("rewrite");
        let out = run(&q, &VmOptions::default()).expect("run");
        // both allocations freed: 2 allocs, 2 frees
        assert_eq!(out.stats.allocated_bytes, 10 * 16 + 10 * 16);
    }

    #[test]
    fn dead_removal_drops_stores_and_shrinks() {
        let src = r#"
record node { used: i64, dead: i64 }
func main() -> i64 {
bb0:
  r0 = alloc node, 4
  r1 = fieldaddr r0, node.dead
  store 5, r1 : i64
  r2 = fieldaddr r0, node.used
  store 8, r2 : i64
  r3 = load r2 : i64
  ret r3
}
"#;
        let p = parse(src).expect("parse");
        let rid = p.types.record_by_name("node").expect("node");
        let mut plan = TransformPlan::default();
        plan.types
            .insert(rid, TypeTransform::RemoveDead { dead: vec![1] });
        let q = apply_plan(&p, &plan).expect("rewrite");
        assert_valid(&q);
        assert_eq!(q.types.layout_of(rid).size, 8);
        let out = run(&q, &VmOptions::default()).expect("run");
        assert_eq!(out.exit, Value::Int(8));
        // the dead store is gone
        let main = q.main().expect("main");
        let stores = q
            .instrs_of(main)
            .filter(|(_, i)| matches!(i, Instr::Store { .. }))
            .count();
        assert_eq!(stores, 1);
    }

    #[test]
    fn dead_field_read_is_error() {
        let src = r#"
record node { a: i64, b: i64 }
func main() -> i64 {
bb0:
  r0 = alloc node, 4
  r1 = fieldaddr r0, node.b
  r2 = load r1 : i64
  ret r2
}
"#;
        let p = parse(src).expect("parse");
        let rid = p.types.record_by_name("node").expect("node");
        let mut plan = TransformPlan::default();
        plan.types
            .insert(rid, TypeTransform::RemoveDead { dead: vec![1] });
        match apply_plan(&p, &plan) {
            Err(RewriteError::DeadFieldRead(_)) => {}
            other => panic!("expected DeadFieldRead, got {other:?}"),
        }
    }

    #[test]
    fn realloc_of_split_type_is_error() {
        let src = r#"
record node { a: i64, b: i64, c: i64 }
func main() -> i64 {
bb0:
  r0 = alloc node, 4
  r1 = realloc r0, node, 8
  ret 0
}
"#;
        let p = parse(src).expect("parse");
        let plan = split_plan(&p, "node", vec![0], vec![1, 2], vec![]);
        match apply_plan(&p, &plan) {
            Err(RewriteError::ReallocOfSplitType(_)) => {}
            other => panic!("expected ReallocOfSplitType, got {other:?}"),
        }
    }

    #[test]
    fn split_with_reorder_and_dead() {
        let src = r#"
record node { d: i64, c1: i64, h2: i64, h1: i64, c2: i64 }
func main() -> i64 {
bb0:
  r0 = alloc node, 8
  r1 = fieldaddr r0, node.d
  store 1, r1 : i64
  r2 = fieldaddr r0, node.h1
  store 10, r2 : i64
  r3 = fieldaddr r0, node.h2
  store 20, r3 : i64
  r4 = fieldaddr r0, node.c1
  store 30, r4 : i64
  r5 = fieldaddr r0, node.c2
  store 40, r5 : i64
  r6 = load r2 : i64
  r7 = load r3 : i64
  r8 = load r4 : i64
  r9 = load r5 : i64
  r10 = add r6, r7
  r11 = add r10, r8
  r12 = add r11, r9
  ret r12
}
"#;
        let p = parse(src).expect("parse");
        // hot: h1 (idx 3) first then h2 (idx 2); cold: c1, c2; dead: d
        let plan = split_plan(&p, "node", vec![3, 2], vec![1, 4], vec![0]);
        let q = apply_plan(&p, &plan).expect("rewrite");
        assert_valid(&q);
        let out = run(&q, &VmOptions::default()).expect("run");
        assert_eq!(out.exit, Value::Int(100));
        let node = q.types.record_by_name("node").expect("node");
        let rec = q.types.record(node);
        assert_eq!(
            rec.fields
                .iter()
                .map(|f| f.name.as_str())
                .collect::<Vec<_>>(),
            vec!["h1", "h2", "__link"]
        );
    }

    #[test]
    fn unplanned_program_unchanged() {
        let p = parse(SRC).expect("parse");
        let q = apply_plan(&p, &TransformPlan::default()).expect("rewrite");
        assert_eq!(
            slo_ir::printer::print_program(&p),
            slo_ir::printer::print_program(&q)
        );
    }

    #[test]
    fn cold_access_costs_an_extra_load() {
        let p = parse(SRC).expect("parse");
        let plan = split_plan(&p, "node", vec![0], vec![1, 2], vec![]);
        let q = apply_plan(&p, &plan).expect("rewrite");
        let before = run(&p, &VmOptions::default()).expect("run");
        let after = run(&q, &VmOptions::default()).expect("run");
        assert!(
            after.stats.loads > before.stats.loads,
            "cold accesses must add link loads: {} vs {}",
            after.stats.loads,
            before.stats.loads
        );
    }
}
