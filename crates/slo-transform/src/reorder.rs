//! Standalone field reordering.
//!
//! The automatic framework only reorders in the context of splitting
//! (§2.4), but the advisory tool's case studies (§3.4) apply reordering as
//! a *source-level* change — grouping the four hot fields of a >128-byte
//! class together gained 2.5%. This module provides that rewrite so the
//! case studies can be executed mechanically.

use crate::rewrite::RewriteError;
use slo_ir::{Instr, Program, RecordId, RecordType};

/// Reorder the fields of `rid` to `new_order` (a permutation of the
/// original indices), rewriting every field access.
///
/// # Examples
///
/// ```
/// use slo_transform::reorder_by_names;
///
/// let prog = slo_ir::parser::parse(
///     "record s { a: i64, b: i64 }\nfunc main() -> i64 {\nbb0:\n  ret 0\n}\n",
/// ).expect("valid source");
/// let swapped = reorder_by_names(&prog, "s", &["b", "a"])?;
/// let rid = swapped.types.record_by_name("s").expect("record");
/// assert_eq!(swapped.types.record(rid).fields[0].name, "b");
/// # Ok::<(), slo_transform::RewriteError>(())
/// ```
///
/// # Errors
///
/// Returns [`RewriteError::Unsupported`] if `new_order` is not a
/// permutation of `0..nfields`.
pub fn reorder_fields(
    prog: &Program,
    rid: RecordId,
    new_order: &[u32],
) -> Result<Program, RewriteError> {
    let mut out = prog.clone();
    let rec = out.types.record(rid).clone();
    let n = rec.fields.len();
    let mut seen = vec![false; n];
    if new_order.len() != n {
        return Err(RewriteError::Unsupported(format!(
            "order has {} entries for {} fields",
            new_order.len(),
            n
        )));
    }
    for &i in new_order {
        if (i as usize) >= n || seen[i as usize] {
            return Err(RewriteError::Unsupported(
                "order is not a permutation".to_string(),
            ));
        }
        seen[i as usize] = true;
    }

    // old index -> new index
    let mut remap = vec![0u32; n];
    for (new_i, &old) in new_order.iter().enumerate() {
        remap[old as usize] = new_i as u32;
    }

    let fields = new_order
        .iter()
        .map(|&old| rec.fields[old as usize].clone())
        .collect();
    out.types.replace_record(
        rid,
        RecordType {
            name: rec.name,
            fields,
        },
    );

    for f in &mut out.funcs {
        for b in &mut f.blocks {
            for ins in &mut b.instrs {
                if let Instr::FieldAddr { record, field, .. } = ins {
                    if *record == rid {
                        *field = remap[*field as usize];
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Reorder by field names (convenience for examples).
///
/// # Errors
///
/// Returns [`RewriteError::Unsupported`] if the record or a field name is
/// unknown, or the names are not a permutation.
pub fn reorder_by_names(
    prog: &Program,
    record: &str,
    names: &[&str],
) -> Result<Program, RewriteError> {
    let rid = prog
        .types
        .record_by_name(record)
        .ok_or_else(|| RewriteError::Unsupported(format!("no record `{record}`")))?;
    let rec = prog.types.record(rid);
    let order: Result<Vec<u32>, RewriteError> = names
        .iter()
        .map(|n| {
            rec.field_index(n)
                .map(|i| i as u32)
                .ok_or_else(|| RewriteError::Unsupported(format!("no field `{n}`")))
        })
        .collect();
    reorder_fields(prog, rid, &order?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_ir::parser::parse;
    use slo_ir::verify::assert_valid;
    use slo_vm::{run, Value, VmOptions};

    const SRC: &str = r#"
record s { a: i64, b: i64, c: i64 }
func main() -> i64 {
bb0:
  r0 = alloc s, 4
  r1 = fieldaddr r0, s.a
  store 1, r1 : i64
  r2 = fieldaddr r0, s.b
  store 2, r2 : i64
  r3 = fieldaddr r0, s.c
  store 4, r3 : i64
  r4 = load r1 : i64
  r5 = load r2 : i64
  r6 = load r3 : i64
  r7 = add r4, r5
  r8 = add r7, r6
  ret r8
}
"#;

    #[test]
    fn reorder_preserves_semantics() {
        let p = parse(SRC).expect("parse");
        let rid = p.types.record_by_name("s").expect("s");
        let q = reorder_fields(&p, rid, &[2, 0, 1]).expect("reorder");
        assert_valid(&q);
        let out = run(&q, &VmOptions::default()).expect("run");
        assert_eq!(out.exit, Value::Int(7));
        let rec = q.types.record(rid);
        assert_eq!(
            rec.fields
                .iter()
                .map(|f| f.name.as_str())
                .collect::<Vec<_>>(),
            vec!["c", "a", "b"]
        );
    }

    #[test]
    fn reorder_by_names_works() {
        let p = parse(SRC).expect("parse");
        let q = reorder_by_names(&p, "s", &["b", "c", "a"]).expect("reorder");
        let rid = q.types.record_by_name("s").expect("s");
        assert_eq!(q.types.record(rid).fields[0].name, "b");
        let out = run(&q, &VmOptions::default()).expect("run");
        assert_eq!(out.exit, Value::Int(7));
    }

    #[test]
    fn bad_permutation_rejected() {
        let p = parse(SRC).expect("parse");
        let rid = p.types.record_by_name("s").expect("s");
        assert!(reorder_fields(&p, rid, &[0, 0, 1]).is_err());
        assert!(reorder_fields(&p, rid, &[0, 1]).is_err());
        assert!(reorder_fields(&p, rid, &[0, 1, 9]).is_err());
    }

    #[test]
    fn unknown_names_rejected() {
        let p = parse(SRC).expect("parse");
        assert!(reorder_by_names(&p, "nope", &[]).is_err());
        assert!(reorder_by_names(&p, "s", &["a", "b", "zz"]).is_err());
    }
}
