//! # slo-advisor — the structure layout advisory tool
//!
//! Section 3 of *"Practical Structure Layout Optimization and Advice"*
//! (CGO 2006): the compiler reused as a performance analysis and
//! reporting tool. It correlates the static analyses (legality verdicts,
//! affinity graphs, hotness, read/write counts) with runtime measurements
//! (PMU-sampled d-cache misses and latencies attributed to fields) and
//! renders:
//!
//! * annotated structure definitions in the Figure 2 format
//!   ([`report::render_report`]),
//! * VCG graph control files ([`vcg::render_vcg`]),
//! * the §3.3 field-group scenario classification
//!   ([`scenarios::classify`]), including the multi-threaded
//!   false-sharing heuristic sketched in §2.4,
//! * concrete, mechanically applicable layout suggestions
//!   ([`suggest::suggest_layout`]) — the advice the §3.4 case studies
//!   apply by hand.
//!
//! The advisor is usable standalone (the paper's §5 "re-packaging the
//! analysis phase into a standalone tool"): it only *reads* analysis
//! results and never requires the transformations to run.

#![warn(missing_docs)]

pub mod input;
pub mod report;
pub mod scenarios;
pub mod suggest;
pub mod vcg;

pub use input::AdvisorInput;
pub use report::{render_report, render_type};
pub use scenarios::{classify, Advice, ScenarioConfig};
pub use suggest::{render_suggestion, suggest_layout, LayoutSuggestion};
pub use vcg::render_vcg;
