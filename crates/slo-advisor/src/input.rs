//! Bundled inputs for the advisory tool.

use slo_analysis::affinity::{AffinityGraph, FieldCounts};
use slo_analysis::dcache::FieldDcache;
use slo_analysis::ipa::IpaResult;
use slo_ir::{Program, RecordId};
use slo_transform::TransformPlan;
use std::collections::HashMap;

/// Everything the advisor correlates: static analysis results plus the
/// optional runtime measurements.
#[derive(Debug, Clone, Copy)]
pub struct AdvisorInput<'a> {
    /// The analyzed program.
    pub prog: &'a Program,
    /// IPA legality verdicts and attributes.
    pub ipa: &'a IpaResult,
    /// Affinity graphs (under the chosen weighting scheme).
    pub graphs: &'a HashMap<RecordId, AffinityGraph>,
    /// Per-field read/write counts.
    pub counts: &'a HashMap<(RecordId, u32), FieldCounts>,
    /// Attributed d-cache samples (None for purely static runs).
    pub dcache: Option<&'a HashMap<(RecordId, u32), FieldDcache>>,
    /// Attributed dominant strides (None for purely static runs).
    pub strides: Option<&'a HashMap<(RecordId, u32), slo_vm::profile::StrideInfo>>,
    /// The planned transformations, if IPA has decided them.
    pub plan: Option<&'a TransformPlan>,
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use slo_analysis::ipa::{analyze_program, LegalityConfig};
    use slo_analysis::schemes::{affinity_graphs, block_frequencies, WeightScheme};
    use slo_ir::parser::parse;
    use slo_transform::{decide, HeuristicsConfig};
    use slo_vm::{run, VmOptions};

    /// A small mcf-flavoured program with one hot type (loop-accessed
    /// fields + cold + unused), one cold type, sampling and a plan.
    #[allow(clippy::type_complexity)]
    pub(crate) fn mcf_like_input() -> (
        Program,
        IpaResult,
        HashMap<RecordId, AffinityGraph>,
        HashMap<(RecordId, u32), FieldCounts>,
        HashMap<(RecordId, u32), FieldDcache>,
        TransformPlan,
    ) {
        let src = r#"
record node { hot: i64, warm: i64, cold1: i64, cold2: i64, unused: i64 }
record coldtype { x: i64 }
func main() -> i64 {
bb0:
  r0 = alloc node, 4096
  r20 = alloc coldtype, 4
  r21 = fieldaddr r20, coldtype.x
  store 1, r21 : i64
  r1 = fieldaddr r0, node.cold1
  store 1, r1 : i64
  r2 = fieldaddr r0, node.cold2
  r3 = load r2 : i64
  r4 = 0
  jump bb1
bb1:
  r5 = cmp.lt r4, 4096
  br r5, bb2, bb3
bb2:
  r6 = indexaddr r0, node, r4
  r7 = fieldaddr r6, node.hot
  r8 = load r7 : i64
  r9 = fieldaddr r6, node.warm
  store r8, r9 : i64
  r4 = add r4, 1
  jump bb1
bb3:
  ret 0
}
"#;
        let prog = parse(src).expect("parse");
        let out = run(&prog, &VmOptions::profiling()).expect("run");
        let scheme = WeightScheme::Pbo(&out.feedback);
        let graphs = affinity_graphs(&prog, &scheme);
        let freqs = block_frequencies(&prog, &scheme);
        let counts = slo_analysis::affinity::build_field_counts(&prog, &freqs);
        let dcache = slo_analysis::dcache::attribute_samples(&prog, &out.feedback);
        let ipa = analyze_program(&prog, &LegalityConfig::default());
        let plan = decide(&prog, &ipa, &graphs, &counts, &HeuristicsConfig::pbo());
        (prog, ipa, graphs, counts, dcache, plan)
    }

    #[test]
    fn fixture_builds() {
        let (prog, ipa, graphs, ..) = mcf_like_input();
        assert_eq!(prog.types.num_records(), 2);
        assert_eq!(ipa.num_types(), 2);
        assert_eq!(graphs.len(), 2);
    }
}
