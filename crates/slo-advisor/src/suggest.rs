//! Concrete layout suggestions — the actionable half of the advisory
//! output.
//!
//! The §3.4 case studies apply the advisor's insight by hand: "grouping
//! those fields together resulted in a performance improvement of 2.5%".
//! This module turns the affinity graph into a concrete recommended field
//! order (hot fields first, affinity-clustered, cold tail), the same
//! greedy policy the automatic splitter uses for its hot section —
//! making the advice mechanically applicable via
//! [`slo_transform::reorder_fields`].

use slo_analysis::affinity::AffinityGraph;
use slo_ir::{Program, RecordId};

/// A recommended layout for one record type.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutSuggestion {
    /// The type.
    pub record: RecordId,
    /// Recommended field order (original indices).
    pub order: Vec<u32>,
    /// Index into `order` where the cold tail starts (fields below the
    /// given hotness threshold).
    pub cold_start: usize,
    /// Estimated bytes of hot data per element under the suggestion
    /// (hot fields packed front).
    pub hot_bytes: u64,
    /// Total element size (unchanged by reordering).
    pub total_bytes: u64,
}

impl LayoutSuggestion {
    /// Whether the suggestion differs from the declaration order.
    pub fn is_nontrivial(&self) -> bool {
        !self.order.iter().enumerate().all(|(i, &f)| i as u32 == f)
    }

    /// The suggested order as field names.
    pub fn names<'p>(&self, prog: &'p Program) -> Vec<&'p str> {
        let rec = prog.types.record(self.record);
        self.order
            .iter()
            .map(|&f| rec.fields[f as usize].name.as_str())
            .collect()
    }
}

/// Compute the recommended order: fields at or above `hot_threshold`
/// (percent relative hotness) first, ordered by descending hotness with
/// greedy affinity grouping (the splitter's `order_hot_fields` policy),
/// then the cold tail in descending hotness.
pub fn suggest_layout(
    prog: &Program,
    rid: RecordId,
    graph: &AffinityGraph,
    hot_threshold: f64,
) -> LayoutSuggestion {
    let rec = prog.types.record(rid);
    let n = rec.fields.len() as u32;
    let rel = graph.relative_hotness();

    let mut hot: Vec<u32> = Vec::new();
    let mut cold: Vec<u32> = Vec::new();
    for f in 0..n {
        if rel[f as usize] >= hot_threshold {
            hot.push(f);
        } else {
            cold.push(f);
        }
    }
    let mut order = slo_transform::plan::order_hot_fields(&hot, graph);
    let cold_start = order.len();
    cold.sort_by(|a, b| {
        graph
            .hotness(*b)
            .partial_cmp(&graph.hotness(*a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order.extend(cold);

    let hot_bytes: u64 = order[..cold_start]
        .iter()
        .map(|&f| prog.types.size_of(rec.fields[f as usize].ty))
        .sum();
    LayoutSuggestion {
        record: rid,
        order,
        cold_start,
        hot_bytes,
        total_bytes: prog.types.layout_of(rid).size,
    }
}

/// Render the suggestion as a source-level `record` declaration comment,
/// the form a developer would paste back into their code.
pub fn render_suggestion(prog: &Program, s: &LayoutSuggestion) -> String {
    let rec = prog.types.record(s.record);
    let mut out = String::new();
    out.push_str(&format!(
        "suggested layout for `{}` ({} hot bytes of {}):\n",
        rec.name, s.hot_bytes, s.total_bytes
    ));
    out.push_str(&format!("  record {} {{\n", rec.name));
    for (i, &f) in s.order.iter().enumerate() {
        let fld = &rec.fields[f as usize];
        let marker = if i == s.cold_start {
            "    // --- cold ---\n"
        } else {
            ""
        };
        out.push_str(marker);
        out.push_str(&format!(
            "    {}: {},\n",
            fld.name,
            prog.types.display(fld.ty)
        ));
    }
    out.push_str("  }\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_ir::{Field, ProgramBuilder, ScalarKind};
    use std::collections::BTreeSet;

    fn setup() -> (Program, RecordId, AffinityGraph) {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let (rid, _) = pb.record(
            "s",
            vec![
                Field::new("cold_a", i64t),
                Field::new("hot_x", i64t),
                Field::new("cold_b", i64t),
                Field::new("hot_y", i64t),
                Field::new("warm", i64t),
            ],
        );
        let p = pb.finish();
        let mut g = AffinityGraph::new(rid, 5);
        let set = |fs: &[u32]| fs.iter().copied().collect::<BTreeSet<u32>>();
        g.add_group(&set(&[1, 3]), 100.0); // hot pair
        g.add_group(&set(&[4]), 20.0); // warm
        g.add_group(&set(&[0]), 1.0);
        g.add_group(&set(&[2]), 0.5);
        (p, rid, g)
    }

    #[test]
    fn hot_fields_first_affinity_grouped() {
        let (p, rid, g) = setup();
        let s = suggest_layout(&p, rid, &g, 10.0);
        assert_eq!(&s.order[..2], &[1, 3], "hot pair leads");
        assert_eq!(s.order[2], 4, "warm next");
        assert_eq!(s.cold_start, 3);
        assert_eq!(s.hot_bytes, 24);
        assert_eq!(s.total_bytes, 40);
        assert!(s.is_nontrivial());
        // cold tail in descending hotness
        assert_eq!(&s.order[3..], &[0, 2]);
    }

    #[test]
    fn trivial_when_already_ordered() {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let (rid, _) = pb.record("t", vec![Field::new("a", i64t), Field::new("b", i64t)]);
        let p = pb.finish();
        let mut g = AffinityGraph::new(rid, 2);
        let set = |fs: &[u32]| fs.iter().copied().collect::<BTreeSet<u32>>();
        g.add_group(&set(&[0]), 100.0);
        g.add_group(&set(&[1]), 50.0);
        let s = suggest_layout(&p, rid, &g, 10.0);
        assert!(!s.is_nontrivial());
    }

    #[test]
    fn render_contains_cold_marker_and_names() {
        let (p, rid, g) = setup();
        let s = suggest_layout(&p, rid, &g, 10.0);
        let text = render_suggestion(&p, &s);
        assert!(text.contains("record s {"));
        assert!(text.contains("// --- cold ---"));
        let hot_pos = text.find("hot_x").expect("hot_x");
        let cold_pos = text.find("cold_a").expect("cold_a");
        assert!(hot_pos < cold_pos);
        assert_eq!(s.names(&p)[0], "hot_x");
    }

    #[test]
    fn suggestion_is_applicable() {
        // the suggested order feeds straight into reorder_fields and
        // preserves program behaviour
        let mut pb = ProgramBuilder::new();
        let i64t = pb.scalar(ScalarKind::I64);
        let (rid, rty) = pb.record(
            "s",
            vec![
                Field::new("a", i64t),
                Field::new("b", i64t),
                Field::new("c", i64t),
            ],
        );
        let main = pb.declare("main", vec![], i64t);
        pb.define(main, |fb| {
            let x = fb.alloc(rty, slo_ir::Operand::int(4));
            fb.store_field(x.into(), rid, 0, slo_ir::Operand::int(1));
            fb.store_field(x.into(), rid, 1, slo_ir::Operand::int(2));
            fb.store_field(x.into(), rid, 2, slo_ir::Operand::int(4));
            let a = fb.load_field(x.into(), rid, 0);
            let b = fb.load_field(x.into(), rid, 1);
            let c = fb.load_field(x.into(), rid, 2);
            let s1 = fb.add(a.into(), b.into());
            let s2 = fb.add(s1.into(), c.into());
            fb.ret(Some(s2.into()));
        });
        let p = pb.finish();
        let mut g = AffinityGraph::new(rid, 3);
        let set = |fs: &[u32]| fs.iter().copied().collect::<BTreeSet<u32>>();
        g.add_group(&set(&[2]), 100.0);
        g.add_group(&set(&[0, 1]), 5.0);
        let s = suggest_layout(&p, rid, &g, 50.0);
        let q = slo_transform::reorder_fields(&p, rid, &s.order).expect("reorder");
        let before = slo_vm::run(&p, &slo_vm::VmOptions::default()).expect("run");
        let after = slo_vm::run(&q, &slo_vm::VmOptions::default()).expect("run");
        assert_eq!(before.exit, after.exit);
        assert_eq!(q.types.record(rid).fields[0].name, "c");
    }
}
