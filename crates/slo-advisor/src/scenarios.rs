//! §3.3 — combining d-cache misses, hotness and affinity into advice.
//!
//! The paper enumerates the interesting configurations of two spatially
//! distant field groups `G_x`, `G_y` of a type `T`:
//!
//! 1. both hot, low mutual affinity → split *conceptually at the source
//!    level* (link pointers are prohibitive; the automatic framework
//!    cannot handle this case),
//! 2. both hot, high mutual affinity → group them together (cache effects
//!    of one may hide behind the latencies of the other),
//! 3. one group cold → split it out (automatically, or at source level),
//! 4. a hot group with a high d-cache component → scheduling/data-structure
//!    complexity hint,
//! 5. multi-threaded: separate written fields from read-mostly fields to
//!    avoid coherency traffic (false sharing).

use slo_analysis::affinity::{AffinityGraph, FieldCounts};
use slo_analysis::dcache::FieldDcache;
use slo_ir::{Program, RecordId};
use std::collections::HashMap;
use std::fmt;

/// One piece of advice about a type's layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Advice {
    /// Two hot groups rarely used together: restructure at source level.
    SplitConceptually {
        /// First group (field indices).
        group_a: Vec<u32>,
        /// Second group.
        group_b: Vec<u32>,
    },
    /// Hot, strongly affine fields that are far apart in the declaration:
    /// group them together.
    GroupTogether {
        /// The fields to co-locate.
        fields: Vec<u32>,
    },
    /// A cold group that could be split out.
    SplitOutCold {
        /// The cold fields.
        fields: Vec<u32>,
    },
    /// A hot field with a dominant d-cache component.
    SchedulingHint {
        /// The field.
        field: u32,
        /// Its mean latency.
        avg_latency: f64,
    },
    /// Written-hot fields sharing a cache line with read-mostly fields
    /// (multi-threaded false-sharing risk).
    FalseSharingRisk {
        /// Heavily written fields.
        written: Vec<u32>,
        /// Read-mostly fields on the same line.
        read_mostly: Vec<u32>,
    },
}

impl fmt::Display for Advice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Advice::SplitConceptually { group_a, group_b } => write!(
                f,
                "hot groups {group_a:?} and {group_b:?} are rarely used together; split the type at the source level"
            ),
            Advice::GroupTogether { fields } => {
                write!(f, "co-locate strongly affine hot fields {fields:?}")
            }
            Advice::SplitOutCold { fields } => {
                write!(f, "cold fields {fields:?} could be split out")
            }
            Advice::SchedulingHint { field, avg_latency } => write!(
                f,
                "field {field} has a dominant d-cache component ({avg_latency:.1} cyc avg); check loop scheduling"
            ),
            Advice::FalseSharingRisk { written, read_mostly } => write!(
                f,
                "written fields {written:?} share cache lines with read-mostly fields {read_mostly:?}; separate them for multi-threaded use"
            ),
        }
    }
}

/// Tunables for the classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Fields with relative hotness at or above this are "hot".
    pub hot_threshold: f64,
    /// Mutual affinity (relative) below this counts as "low".
    pub low_affinity: f64,
    /// Mutual affinity (relative) above this counts as "high".
    pub high_affinity: f64,
    /// Mean latency above this triggers the scheduling hint.
    pub latency_hint: f64,
    /// Write share above this marks a field "written-hot".
    pub write_share: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            hot_threshold: 30.0,
            low_affinity: 10.0,
            high_affinity: 50.0,
            latency_hint: 20.0,
            write_share: 0.5,
        }
    }
}

/// Classify a type's fields into the §3.3 scenarios.
pub fn classify(
    prog: &Program,
    rid: RecordId,
    graph: &AffinityGraph,
    counts: &HashMap<(RecordId, u32), FieldCounts>,
    dcache: Option<&HashMap<(RecordId, u32), FieldDcache>>,
    cfg: &ScenarioConfig,
) -> Vec<Advice> {
    let rec = prog.types.record(rid);
    let n = rec.fields.len() as u32;
    let rel = graph.relative_hotness();
    let mut advice = Vec::new();

    let hot: Vec<u32> = (0..n)
        .filter(|&f| rel[f as usize] >= cfg.hot_threshold)
        .collect();
    let cold: Vec<u32> = (0..n)
        .filter(|&f| rel[f as usize] < cfg.hot_threshold && rel[f as usize] > 0.0)
        .collect();

    // Partition hot fields into affinity clusters (union by high affinity).
    let clusters = cluster_hot(&hot, graph, cfg);

    // scenario 1: two hot clusters with low mutual affinity
    for i in 0..clusters.len() {
        for j in i + 1..clusters.len() {
            let aff = cluster_affinity(&clusters[i], &clusters[j], graph);
            if aff < cfg.low_affinity {
                advice.push(Advice::SplitConceptually {
                    group_a: clusters[i].clone(),
                    group_b: clusters[j].clone(),
                });
            }
        }
    }

    // scenario 2: a hot cluster whose members are declared far apart
    for c in &clusters {
        if c.len() >= 2 {
            let span = c.iter().max().expect("non-empty") - c.iter().min().expect("non-empty");
            if span as usize >= c.len() {
                advice.push(Advice::GroupTogether { fields: c.clone() });
            }
        }
    }

    // scenario 3: cold fields
    if !cold.is_empty() {
        advice.push(Advice::SplitOutCold { fields: cold });
    }

    // scenario 4: hot field with dominant d-cache latency
    if let Some(d) = dcache {
        for &f in &hot {
            if let Some(s) = d.get(&(rid, f)) {
                if s.avg_latency() >= cfg.latency_hint {
                    advice.push(Advice::SchedulingHint {
                        field: f,
                        avg_latency: s.avg_latency(),
                    });
                }
            }
        }
    }

    // scenario 5: false sharing — hot written fields vs read-mostly fields
    let mut written = Vec::new();
    let mut read_mostly = Vec::new();
    for &f in &hot {
        let c = counts.get(&(rid, f)).copied().unwrap_or_default();
        let total = c.reads + c.writes;
        if total == 0.0 {
            continue;
        }
        if c.writes / total >= cfg.write_share {
            written.push(f);
        } else {
            read_mostly.push(f);
        }
    }
    if !written.is_empty() && !read_mostly.is_empty() {
        advice.push(Advice::FalseSharingRisk {
            written,
            read_mostly,
        });
    }

    advice
}

fn cluster_hot(hot: &[u32], graph: &AffinityGraph, cfg: &ScenarioConfig) -> Vec<Vec<u32>> {
    let mut clusters: Vec<Vec<u32>> = Vec::new();
    for &f in hot {
        let mut placed = false;
        for c in &mut clusters {
            let aff = c
                .iter()
                .map(|&g| graph.relative_affinity(f, g))
                .fold(0.0f64, f64::max);
            if aff >= cfg.high_affinity {
                c.push(f);
                placed = true;
                break;
            }
        }
        if !placed {
            clusters.push(vec![f]);
        }
    }
    clusters
}

fn cluster_affinity(a: &[u32], b: &[u32], graph: &AffinityGraph) -> f64 {
    let mut max = 0.0f64;
    for &x in a {
        for &y in b {
            max = max.max(graph.relative_affinity(x, y));
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn program_with(nfields: usize) -> (Program, RecordId) {
        let mut pb = slo_ir::ProgramBuilder::new();
        let i64t = pb.scalar(slo_ir::ScalarKind::I64);
        let fields = (0..nfields)
            .map(|i| slo_ir::Field::new(format!("f{i}"), i64t))
            .collect();
        let (rid, _) = pb.record("t", fields);
        (pb.finish(), rid)
    }

    fn set(fs: &[u32]) -> BTreeSet<u32> {
        fs.iter().copied().collect()
    }

    #[test]
    fn two_hot_phases_suggest_conceptual_split() {
        let (p, rid) = program_with(4);
        let mut g = AffinityGraph::new(rid, 4);
        g.add_group(&set(&[0, 1]), 100.0); // phase 1
        g.add_group(&set(&[2, 3]), 90.0); // phase 2, never together
        let advice = classify(
            &p,
            rid,
            &g,
            &HashMap::new(),
            None,
            &ScenarioConfig::default(),
        );
        assert!(
            advice
                .iter()
                .any(|a| matches!(a, Advice::SplitConceptually { .. })),
            "advice: {advice:?}"
        );
    }

    #[test]
    fn affine_hot_fields_group_together() {
        let (p, rid) = program_with(6);
        let mut g = AffinityGraph::new(rid, 6);
        // fields 0 and 5 hot and affine, declared far apart
        g.add_group(&set(&[0, 5]), 100.0);
        let advice = classify(
            &p,
            rid,
            &g,
            &HashMap::new(),
            None,
            &ScenarioConfig::default(),
        );
        assert!(
            advice
                .iter()
                .any(|a| matches!(a, Advice::GroupTogether { fields } if fields.contains(&0) && fields.contains(&5))),
            "advice: {advice:?}"
        );
    }

    #[test]
    fn cold_fields_suggested_for_split() {
        let (p, rid) = program_with(3);
        let mut g = AffinityGraph::new(rid, 3);
        g.add_group(&set(&[0]), 100.0);
        g.add_group(&set(&[1]), 2.0);
        g.add_group(&set(&[2]), 1.0);
        let advice = classify(
            &p,
            rid,
            &g,
            &HashMap::new(),
            None,
            &ScenarioConfig::default(),
        );
        assert!(advice
            .iter()
            .any(|a| matches!(a, Advice::SplitOutCold { fields } if fields == &vec![1, 2])));
    }

    #[test]
    fn latency_triggers_scheduling_hint() {
        let (p, rid) = program_with(2);
        let mut g = AffinityGraph::new(rid, 2);
        g.add_group(&set(&[0]), 100.0);
        let mut d = HashMap::new();
        d.insert(
            (rid, 0u32),
            FieldDcache {
                misses: 1000.0,
                total_latency: 50_000.0,
                accesses: 1000.0,
            },
        );
        let advice = classify(
            &p,
            rid,
            &g,
            &HashMap::new(),
            Some(&d),
            &ScenarioConfig::default(),
        );
        assert!(advice
            .iter()
            .any(|a| matches!(a, Advice::SchedulingHint { field: 0, .. })));
    }

    #[test]
    fn false_sharing_detected() {
        let (p, rid) = program_with(2);
        let mut g = AffinityGraph::new(rid, 2);
        g.add_group(&set(&[0, 1]), 100.0);
        let mut counts = HashMap::new();
        counts.insert(
            (rid, 0u32),
            FieldCounts {
                reads: 10.0,
                writes: 1000.0,
            },
        );
        counts.insert(
            (rid, 1u32),
            FieldCounts {
                reads: 1000.0,
                writes: 0.0,
            },
        );
        let advice = classify(&p, rid, &g, &counts, None, &ScenarioConfig::default());
        assert!(advice.iter().any(|a| matches!(
            a,
            Advice::FalseSharingRisk { written, read_mostly }
                if written == &vec![0] && read_mostly == &vec![1]
        )));
    }

    #[test]
    fn advice_displays() {
        let a = Advice::SplitOutCold { fields: vec![1] };
        assert!(a.to_string().contains("cold fields"));
        let b = Advice::GroupTogether { fields: vec![0, 5] };
        assert!(b.to_string().contains("co-locate"));
    }
}
