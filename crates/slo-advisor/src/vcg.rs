//! VCG graph emission.
//!
//! "Sometimes a graphical representation is helpful. For this purpose we
//! also output control files for the VCG graph visualization tool and use
//! colors and line-thickness to indicate higher relative weights and
//! affinities." (§3.2)

use slo_analysis::affinity::AffinityGraph;
use slo_ir::{Program, RecordId};
use std::fmt::Write as _;

/// Render one type's affinity graph as a VCG control file.
pub fn render_vcg(prog: &Program, rid: RecordId, graph: &AffinityGraph) -> String {
    let rec = prog.types.record(rid);
    let rel = graph.relative_hotness();
    let mut out = String::new();
    let _ = writeln!(out, "graph: {{");
    let _ = writeln!(out, "  title: \"{}\"", rec.name);
    let _ = writeln!(out, "  layoutalgorithm: forcedir");
    for (i, f) in rec.fields.iter().enumerate() {
        let h = rel.get(i).copied().unwrap_or(0.0);
        let _ = writeln!(
            out,
            "  node: {{ title: \"{}\" label: \"{}\\n{h:.1}%\" color: {} }}",
            f.name,
            f.name,
            color_for(h)
        );
    }
    let max_edge = graph.pair_edges().map(|(_, w)| w).fold(0.0f64, f64::max);
    for ((a, b), w) in graph.pair_edges() {
        let rel_w = if max_edge > 0.0 { w / max_edge } else { 0.0 };
        let thickness = 1 + (rel_w * 4.0).round() as u32;
        let _ = writeln!(
            out,
            "  edge: {{ sourcename: \"{}\" targetname: \"{}\" thickness: {thickness} color: {} }}",
            rec.fields[a as usize].name,
            rec.fields[b as usize].name,
            color_for(rel_w * 100.0)
        );
    }
    let _ = writeln!(out, "}}");
    out
}

fn color_for(rel_percent: f64) -> &'static str {
    if rel_percent >= 75.0 {
        "red"
    } else if rel_percent >= 40.0 {
        "orange"
    } else if rel_percent >= 10.0 {
        "yellow"
    } else {
        "lightblue"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn vcg_structure() {
        let mut pb = slo_ir::ProgramBuilder::new();
        let i64t = pb.scalar(slo_ir::ScalarKind::I64);
        let (rid, _) = pb.record(
            "t",
            vec![
                slo_ir::Field::new("a", i64t),
                slo_ir::Field::new("b", i64t),
                slo_ir::Field::new("c", i64t),
            ],
        );
        let p = pb.finish();
        let mut g = AffinityGraph::new(rid, 3);
        let set: BTreeSet<u32> = [0u32, 1].into_iter().collect();
        g.add_group(&set, 100.0);
        let set2: BTreeSet<u32> = [2u32].into_iter().collect();
        g.add_group(&set2, 5.0);
        let vcg = render_vcg(&p, rid, &g);
        assert!(vcg.starts_with("graph: {"));
        assert!(vcg.contains("title: \"t\""));
        assert!(vcg.contains("node: { title: \"a\""));
        assert!(vcg.contains("node: { title: \"c\""));
        assert!(vcg.contains("sourcename: \"a\" targetname: \"b\""));
        assert!(vcg.trim_end().ends_with('}'));
        // hot nodes red, cold blue
        assert!(vcg.contains("red"));
        assert!(vcg.contains("lightblue"));
    }

    #[test]
    fn colors_by_band() {
        assert_eq!(color_for(100.0), "red");
        assert_eq!(color_for(50.0), "orange");
        assert_eq!(color_for(20.0), "yellow");
        assert_eq!(color_for(1.0), "lightblue");
    }
}
