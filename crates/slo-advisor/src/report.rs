//! The advisory report — annotated structure definitions (Figure 2).
//!
//! For each record type, sorted by type hotness, the report prints the
//! type header (name, field count, size, relative/absolute hotness, the
//! planned transformation, legality status and attribute flags) followed
//! by each field in declaration order with its hotness bar, read/write
//! bar, attributed d-cache misses and latencies, and uni-directional
//! affinity edges.

use crate::input::AdvisorInput;
use slo_ir::RecordId;
use slo_transform::TypeTransform;
use std::fmt::Write as _;

/// Render the full advisory report for every record type.
pub fn render_report(input: &AdvisorInput<'_>) -> String {
    let mut out = String::new();
    let mut order: Vec<RecordId> = input.prog.types.record_ids().collect();
    let total_hot: f64 = order
        .iter()
        .map(|r| input.graphs.get(r).map(|g| g.type_hotness()).unwrap_or(0.0))
        .sum();
    let max_hot = order
        .iter()
        .map(|r| input.graphs.get(r).map(|g| g.type_hotness()).unwrap_or(0.0))
        .fold(0.0f64, f64::max);
    order.sort_by(|a, b| {
        let ha = input.graphs.get(a).map(|g| g.type_hotness()).unwrap_or(0.0);
        let hb = input.graphs.get(b).map(|g| g.type_hotness()).unwrap_or(0.0);
        hb.partial_cmp(&ha).unwrap_or(std::cmp::Ordering::Equal)
    });
    for rid in order {
        render_type(input, rid, total_hot, max_hot, &mut out);
        out.push('\n');
    }
    out
}

/// Render one type's annotated definition.
pub fn render_type(
    input: &AdvisorInput<'_>,
    rid: RecordId,
    total_hot: f64,
    max_hot: f64,
    out: &mut String,
) {
    let rec = input.prog.types.record(rid);
    let layout = input.prog.types.layout_of(rid);
    let graph = input.graphs.get(&rid);
    let type_hot = graph.map(|g| g.type_hotness()).unwrap_or(0.0);
    let rel = if max_hot > 0.0 {
        type_hot / max_hot * 100.0
    } else {
        0.0
    };
    let abs = if total_hot > 0.0 {
        type_hot / total_hot * 100.0
    } else {
        0.0
    };

    let _ = writeln!(out, "Type     : {}", rec.name);
    let _ = writeln!(
        out,
        "Fields   : {}, {} bytes",
        rec.fields.len(),
        layout.size
    );
    let _ = writeln!(out, "Hotness  : {rel:.1}% rel, {abs:.1}% abs");
    let _ = writeln!(out, "Transform: {}", transform_name(input, rid));
    let _ = writeln!(out, "Status   : {}", status_line(input, rid));
    let _ = writeln!(out, "{}", "-".repeat(69));

    let rel_hot = graph.map(|g| g.relative_hotness()).unwrap_or_default();
    let type_misses: f64 = (0..rec.fields.len() as u32)
        .map(|f| {
            input
                .dcache
                .and_then(|d| d.get(&(rid, f)))
                .map(|s| s.misses)
                .unwrap_or(0.0)
        })
        .sum();

    for (i, field) in rec.fields.iter().enumerate() {
        let fi = i as u32;
        let hot = graph.map(|g| g.hotness(fi)).unwrap_or(0.0);
        let rh = rel_hot.get(i).copied().unwrap_or(0.0);
        let counts = input.counts.get(&(rid, fi)).copied().unwrap_or_default();
        let marker = if counts.reads == 0.0 && counts.writes == 0.0 && hot == 0.0 {
            " *unused*"
        } else if counts.reads == 0.0 && counts.writes > 0.0 {
            " *dead*"
        } else {
            ""
        };
        let off = layout.offsets[i];
        let _ = writeln!(
            out,
            "Field[{i}] off: {off}:0 |{}| \"{}\"{marker}",
            hotness_bar(rh),
            field.name
        );
        if marker.is_empty() || counts.writes > 0.0 {
            let _ = writeln!(out, "  hot: {rh:.1}% weight: {hot:.3e}");
            let _ = writeln!(
                out,
                "  read : {:.3e}, write: {:.3e}   |{}|",
                counts.reads,
                counts.writes,
                rw_bar(counts.reads, counts.writes)
            );
        }
        if let Some(st) = input.strides.and_then(|m| m.get(&(rid, fi))) {
            if st.samples > 0 {
                let _ = writeln!(
                    out,
                    "  stride: {} [B] ({:.0}% of accesses)",
                    st.dominant,
                    st.confidence() * 100.0
                );
            }
        }
        if let Some(d) = input.dcache.and_then(|d| d.get(&(rid, fi))) {
            let pct = if type_misses > 0.0 {
                d.misses / type_misses * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  miss : {:.0}, {pct:.1}%, lat: {:.1} [cyc]",
                d.misses,
                d.avg_latency()
            );
        }
        if let Some(g) = graph {
            // uni-directional: self plus edges to later fields
            for j in i as u32..rec.fields.len() as u32 {
                let w = g.edge(fi, j);
                if w > 0.0 {
                    let _ = writeln!(
                        out,
                        "  aff: {:.1}% --> {}",
                        g.relative_affinity(fi, j),
                        rec.fields[j as usize].name
                    );
                }
            }
        }
    }
}

fn transform_name(input: &AdvisorInput<'_>, rid: RecordId) -> &'static str {
    match input.plan.map(|p| p.of(rid)) {
        Some(TypeTransform::Split { .. }) => "Splitting",
        Some(TypeTransform::Peel { .. }) => "Peeling",
        Some(TypeTransform::Interleave { .. }) => "Instance Interleaving",
        Some(TypeTransform::RemoveDead { .. }) => "Dead Field Removal",
        _ => "(none)",
    }
}

fn status_line(input: &AdvisorInput<'_>, rid: RecordId) -> String {
    let v = input.ipa.verdict(rid);
    let mut parts: Vec<String> = Vec::new();
    if v.legal() {
        parts.push("*OK*".to_string());
    } else {
        for t in &v.invalid {
            parts.push(t.abbrev().to_string());
        }
    }
    parts.push("/".to_string());
    let a = &v.attrs;
    for (flag, set) in [
        ("LPTR", a.has_local_ptr),
        ("GPTR", a.has_global_ptr),
        ("GVAR", a.has_global_var),
        ("ARRY", a.has_static_array),
        ("DYNA", a.dyn_alloc),
        ("FREE", a.freed),
        ("RALC", a.realloced),
    ] {
        if set {
            parts.push(flag.to_string());
        }
    }
    parts.join(" ")
}

/// Ten-character hotness bar: `#` per 10% relative hotness.
pub fn hotness_bar(rel_percent: f64) -> String {
    let filled = ((rel_percent / 10.0).round() as usize).min(10);
    format!("{}{}", "#".repeat(filled), "-".repeat(10 - filled))
}

/// Eight-character read/write bar. More reads than writes uses uppercase
/// `R` / lowercase `w`, otherwise lowercase `r` / uppercase `W` (the
/// Figure 2 convention).
pub fn rw_bar(reads: f64, writes: f64) -> String {
    let total = reads + writes;
    if total == 0.0 {
        return " ".repeat(8);
    }
    let r_chars = ((reads / total * 8.0).round() as usize).min(8);
    let (rc, wc) = if reads > writes {
        ('R', 'w')
    } else {
        ('r', 'W')
    };
    let mut s = String::new();
    for _ in 0..r_chars {
        s.push(rc);
    }
    for _ in r_chars..8 {
        s.push(wc);
    }
    s
}

/// Abbreviation list of the legality violations of a type (for summaries).
pub fn violations_abbrev(input: &AdvisorInput<'_>, rid: RecordId) -> Vec<&'static str> {
    input
        .ipa
        .verdict(rid)
        .invalid
        .iter()
        .map(|t| t.abbrev())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::tests::mcf_like_input;

    #[test]
    fn bars_render() {
        assert_eq!(hotness_bar(0.0), "----------");
        assert_eq!(hotness_bar(100.0), "##########");
        assert_eq!(hotness_bar(52.0), "#####-----");
        assert_eq!(rw_bar(100.0, 0.0), "RRRRRRRR");
        assert_eq!(rw_bar(0.0, 10.0), "WWWWWWWW");
        assert_eq!(rw_bar(3.0, 1.0), "RRRRRRww");
        assert_eq!(rw_bar(0.0, 0.0), "        ");
    }

    #[test]
    fn report_contains_figure2_elements() {
        let (prog, ipa, graphs, counts, dcache, plan) = mcf_like_input();
        let input = AdvisorInput {
            prog: &prog,
            ipa: &ipa,
            graphs: &graphs,
            counts: &counts,
            dcache: Some(&dcache),
            strides: None,
            plan: Some(&plan),
        };
        let report = render_report(&input);
        assert!(report.contains("Type     : node"));
        assert!(report.contains("Fields   :"));
        assert!(report.contains("bytes"));
        assert!(report.contains("Hotness  : 100.0% rel"));
        assert!(report.contains("Status   :"));
        assert!(report.contains("\"hot\""));
        assert!(report.contains("aff:"));
        assert!(report.contains("miss :"));
        assert!(report.contains("[cyc]"));
    }

    #[test]
    fn unused_fields_marked() {
        let (prog, ipa, graphs, counts, dcache, plan) = mcf_like_input();
        let input = AdvisorInput {
            prog: &prog,
            ipa: &ipa,
            graphs: &graphs,
            counts: &counts,
            dcache: Some(&dcache),
            strides: None,
            plan: Some(&plan),
        };
        let report = render_report(&input);
        assert!(report.contains("*unused*"), "report:\n{report}");
    }

    #[test]
    fn hottest_type_first() {
        let (prog, ipa, graphs, counts, dcache, plan) = mcf_like_input();
        let input = AdvisorInput {
            prog: &prog,
            ipa: &ipa,
            graphs: &graphs,
            counts: &counts,
            dcache: Some(&dcache),
            strides: None,
            plan: Some(&plan),
        };
        let report = render_report(&input);
        let node_pos = report.find("Type     : node").expect("node present");
        let other_pos = report
            .find("Type     : coldtype")
            .expect("coldtype present");
        assert!(node_pos < other_pos, "hotter type must come first");
    }
}
