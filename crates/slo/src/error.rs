//! `SloError` — the one workspace-wide error type.
//!
//! Every fallible entry point of the facade crate (and the CLI and
//! batch service built on it) funnels into this enum, replacing the
//! stringly `CliError(String)` and ad-hoc `Box<dyn Error>` returns the
//! crates grew independently. Variants follow the pipeline's failure
//! domains, and each lower-level error type converts via `From`, so
//! `?` composes across crate boundaries without `map_err` noise.

use slo_ir::parser::ParseError;
use slo_transform::RewriteError;
use slo_vm::{ExecError, FeedbackParseError};
use std::fmt;

/// Workspace-wide error: what went wrong, by pipeline domain.
#[derive(Debug)]
pub enum SloError {
    /// Textual IR / profile / manifest input did not parse or verify.
    Parse(String),
    /// A legality precondition was violated (e.g. a forced transform on
    /// a type the analysis rejects).
    Legality(String),
    /// The BE rewrite failed.
    Transform(RewriteError),
    /// The simulated machine faulted.
    Vm(ExecError),
    /// A per-request budget (wall clock or VM step limit) was exhausted.
    Budget(String),
    /// Host filesystem I/O failed.
    Io(String),
    /// Bad command-line / job-spec usage.
    Usage(String),
}

impl fmt::Display for SloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SloError::Parse(m) => write!(f, "parse error: {m}"),
            SloError::Legality(m) => write!(f, "legality error: {m}"),
            SloError::Transform(e) => write!(f, "transform error: {e}"),
            SloError::Vm(e) => write!(f, "vm error: {e}"),
            SloError::Budget(m) => write!(f, "budget exhausted: {m}"),
            SloError::Io(m) => write!(f, "io error: {m}"),
            SloError::Usage(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for SloError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SloError::Transform(e) => Some(e),
            SloError::Vm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for SloError {
    fn from(e: ParseError) -> Self {
        SloError::Parse(e.to_string())
    }
}

impl From<FeedbackParseError> for SloError {
    fn from(e: FeedbackParseError) -> Self {
        SloError::Parse(format!("profile: {e}"))
    }
}

impl From<RewriteError> for SloError {
    fn from(e: RewriteError) -> Self {
        SloError::Transform(e)
    }
}

impl From<ExecError> for SloError {
    fn from(e: ExecError) -> Self {
        // A step-limit abort is a budget outcome, not a machine fault:
        // the service sizes `VmOptions::step_limit` from the job budget
        // and must be able to tell "ran out of budget" from "crashed".
        match e {
            ExecError::StepLimit => SloError::Budget("VM step limit exceeded".into()),
            other => SloError::Vm(other),
        }
    }
}

impl From<std::io::Error> for SloError {
    fn from(e: std::io::Error) -> Self {
        SloError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_prefixed_by_domain() {
        let e: SloError = RewriteError::Unsupported("x".into()).into();
        assert!(e.to_string().starts_with("transform error:"));
        let e: SloError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().starts_with("io error:"));
    }

    #[test]
    fn step_limit_becomes_budget() {
        let e: SloError = ExecError::StepLimit.into();
        assert!(matches!(e, SloError::Budget(_)));
        let e: SloError = ExecError::CallDepth.into();
        assert!(matches!(e, SloError::Vm(_)));
    }

    #[test]
    fn parse_errors_convert() {
        let perr = slo_ir::parser::parse("record {").unwrap_err();
        let e: SloError = perr.into();
        assert!(matches!(e, SloError::Parse(_)));
    }
}
