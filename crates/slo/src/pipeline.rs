//! The SYZYGY-style compilation pipeline: FE → IPA → BE.
//!
//! Mirrors the paper's phase structure (§2):
//!
//! * **FE** (per compilation unit, parallelizable): legality tests,
//!   attribute collection, affinity-group/read-write-count annotations.
//! * **IPA** (monolithic): summary aggregation, type-escape analysis,
//!   profitability analysis (affinity graphs + hotness under the chosen
//!   weighting scheme), heuristics → a [`TransformPlan`].
//! * **BE** (parallelizable): the actual rewrites.
//!
//! Each phase is timed so the §2.5 compile-time overhead experiment can
//! be regenerated.

use slo_analysis::affinity::{
    build_affinity_graphs, build_field_counts, AffinityGraph, FieldCounts,
};
use slo_analysis::dcache::FieldDcache;
use slo_analysis::ipa::{aggregate, IpaResult, LegalityConfig};
use slo_analysis::legality::analyze_all_units;
use slo_analysis::schemes::{block_frequencies, WeightScheme};
use slo_ir::{Program, RecordId};
use slo_transform::{apply_plan, decide, HeuristicsConfig, RewriteError, TransformPlan};
use slo_vm::Feedback;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Legality configuration (relaxation flag, SMAL threshold).
    pub legality: LegalityConfig,
    /// Heuristic knobs; `None` derives the paper's defaults from the
    /// scheme (T_s = 3% for PBO/PPBO, 7.5% otherwise).
    pub heuristics: Option<HeuristicsConfig>,
    /// Attribute d-cache samples (needs a feedback with samples).
    pub attribute_dcache: bool,
}

/// Wall-clock time spent per phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// FE legality + annotation collection.
    pub fe: Duration,
    /// IPA aggregation + profitability + heuristics.
    pub ipa: Duration,
    /// BE rewriting.
    pub be: Duration,
}

/// Everything the pipeline produced.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// The transformed program.
    pub program: Program,
    /// The plan IPA handed to the BE.
    pub plan: TransformPlan,
    /// Legality verdicts.
    pub ipa: IpaResult,
    /// Affinity graphs under the chosen scheme.
    pub graphs: HashMap<RecordId, AffinityGraph>,
    /// Read/write counts.
    pub counts: HashMap<(RecordId, u32), FieldCounts>,
    /// Attributed d-cache samples, when requested and available.
    pub dcache: Option<HashMap<(RecordId, u32), FieldDcache>>,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
}

/// Run the full pipeline over `prog` under `scheme`.
///
/// # Errors
///
/// Propagates [`RewriteError`] from the BE.
pub fn compile(
    prog: &Program,
    scheme: &WeightScheme<'_>,
    cfg: &PipelineConfig,
) -> Result<CompileResult, RewriteError> {
    // --- FE -----------------------------------------------------------
    let t0 = Instant::now();
    let summaries = analyze_all_units(prog);
    let freqs = block_frequencies(prog, scheme);
    let fe = t0.elapsed();

    // --- IPA ----------------------------------------------------------
    let t1 = Instant::now();
    let ipa = aggregate(prog, &summaries, &cfg.legality);
    let graphs = build_affinity_graphs(prog, &freqs);
    let counts = build_field_counts(prog, &freqs);
    let heuristics = cfg.heuristics.unwrap_or_else(|| match scheme {
        WeightScheme::Pbo(_) | WeightScheme::Ppbo(_) => HeuristicsConfig::pbo(),
        _ => HeuristicsConfig::ispbo(),
    });
    let plan = decide(prog, &ipa, &graphs, &counts, &heuristics);
    let dcache = if cfg.attribute_dcache {
        match scheme {
            WeightScheme::Pbo(fb) | WeightScheme::Ppbo(fb) => {
                Some(slo_analysis::dcache::attribute_samples(prog, fb))
            }
            _ => None,
        }
    } else {
        None
    };
    let ipa_time = t1.elapsed();

    // --- BE -----------------------------------------------------------
    let t2 = Instant::now();
    let program = apply_plan(prog, &plan)?;
    let be = t2.elapsed();

    Ok(CompileResult {
        program,
        plan,
        ipa,
        graphs,
        counts,
        dcache,
        timings: PhaseTimings {
            fe,
            ipa: ipa_time,
            be,
        },
    })
}

/// The PBO collection phase: run the instrumented program on the training
/// input (the program itself encodes its input; callers model training vs
/// reference inputs by building different programs) and return the
/// feedback file.
///
/// # Errors
///
/// Propagates VM execution errors.
pub fn collect_profile(prog: &Program) -> Result<Feedback, slo_vm::ExecError> {
    let out = slo_vm::run(prog, &slo_vm::VmOptions::profiling())?;
    Ok(out.feedback)
}

/// Before/after performance comparison on the simulated machine.
#[derive(Debug, Clone, Copy)]
pub struct Evaluation {
    /// Cycles of the untransformed program.
    pub baseline_cycles: u64,
    /// Cycles of the transformed program.
    pub optimized_cycles: u64,
    /// Simulated instructions retired by the untransformed program.
    pub baseline_instructions: u64,
    /// Simulated instructions retired by the transformed program.
    pub optimized_instructions: u64,
}

impl Evaluation {
    /// Speedup in percent, the paper's Table 3 presentation
    /// (positive = faster after transformation).
    pub fn speedup_percent(&self) -> f64 {
        if self.optimized_cycles == 0 {
            return 0.0;
        }
        (self.baseline_cycles as f64 / self.optimized_cycles as f64 - 1.0) * 100.0
    }
}

/// Run both versions on the simulated machine and compare cycle counts.
///
/// Both programs execute on the pre-decoded engine by default
/// ([`slo_vm::Engine::Decoded`], the [`slo_vm::VmOptions`] default);
/// pass `VmOptions::default().structured()` to force the structured
/// reference interpreter. The two engines are observationally identical
/// (same exit value, cycle count, and profile), so the choice only
/// affects host wall time.
///
/// # Errors
///
/// Propagates VM execution errors; also fails if the two programs do not
/// compute the same result (a transformation-correctness guard).
pub fn evaluate(
    baseline: &Program,
    optimized: &Program,
    opts: &slo_vm::VmOptions,
) -> Result<Evaluation, slo_vm::ExecError> {
    let b = slo_vm::run(baseline, opts)?;
    let o = slo_vm::run(optimized, opts)?;
    assert_eq!(
        b.exit, o.exit,
        "transformed program changed the computed result"
    );
    Ok(Evaluation {
        baseline_cycles: b.stats.cycles,
        optimized_cycles: o.stats.cycles,
        baseline_instructions: b.stats.instructions,
        optimized_instructions: o.stats.instructions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_ir::parser::parse;
    use slo_ir::verify::assert_valid;

    // a peelable type plus an illegal one
    const SRC: &str = r#"
record elem { w: f64, t: f64 }
record bad  { x: i64 }
global P: ptr<elem>
func main() -> f64 {
bb0:
  r20 = alloc bad, 10
  r21 = cast r20 : ptr<bad> -> i64
  r0 = alloc elem, 1000
  gstore r0, P
  r1 = 0
  jump bb1
bb1:
  r2 = cmp.lt r1, 1000
  br r2, bb2, bb3
bb2:
  r3 = gload P
  r4 = indexaddr r3, elem, r1
  r5 = fieldaddr r4, elem.w
  store 1.0, r5 : f64
  r1 = add r1, 1
  jump bb1
bb3:
  r6 = gload P
  r7 = indexaddr r6, elem, 500
  r8 = fieldaddr r7, elem.w
  r9 = load r8 : f64
  ret r9
}
"#;

    #[test]
    fn end_to_end_compile() {
        let p = parse(SRC).expect("parse");
        let res = compile(&p, &WeightScheme::Ispbo, &PipelineConfig::default()).expect("compile");
        assert_valid(&res.program);
        assert_eq!(res.plan.num_transformed(), 1);
        let elem = p.types.record_by_name("elem").expect("elem");
        assert!(res.plan.of(elem).is_some());
        let bad = p.types.record_by_name("bad").expect("bad");
        assert!(!res.plan.of(bad).is_some());
    }

    #[test]
    fn evaluation_guards_semantics() {
        let p = parse(SRC).expect("parse");
        let res = compile(&p, &WeightScheme::Ispbo, &PipelineConfig::default()).expect("compile");
        let eval = evaluate(&p, &res.program, &slo_vm::VmOptions::default()).expect("evaluate");
        assert!(eval.baseline_cycles > 0);
        assert!(eval.optimized_cycles > 0);
    }

    #[test]
    fn pbo_collection_and_use() {
        let p = parse(SRC).expect("parse");
        let fb = collect_profile(&p).expect("collect");
        assert!(fb.func("main").is_some());
        let res = compile(
            &p,
            &WeightScheme::Pbo(&fb),
            &PipelineConfig {
                attribute_dcache: true,
                ..Default::default()
            },
        )
        .expect("compile");
        assert!(res.dcache.is_some());
        assert_valid(&res.program);
    }

    #[test]
    fn timings_populated() {
        let p = parse(SRC).expect("parse");
        let res = compile(&p, &WeightScheme::Spbo, &PipelineConfig::default()).expect("compile");
        // sanity: phases took measurable (>= 0) time and the struct is
        // plumbed; no absolute expectations
        let t = res.timings;
        assert!(t.fe.as_nanos() + t.ipa.as_nanos() + t.be.as_nanos() > 0);
    }

    #[test]
    fn speedup_math() {
        let e = Evaluation {
            baseline_cycles: 1500,
            optimized_cycles: 1000,
            baseline_instructions: 0,
            optimized_instructions: 0,
        };
        assert!((e.speedup_percent() - 50.0).abs() < 1e-9);
        let e = Evaluation {
            baseline_cycles: 900,
            optimized_cycles: 1000,
            baseline_instructions: 0,
            optimized_instructions: 0,
        };
        assert!(e.speedup_percent() < 0.0);
    }
}
