//! The SYZYGY-style compilation pipeline: FE → IPA → BE.
//!
//! Mirrors the paper's phase structure (§2):
//!
//! * **FE** (per compilation unit, parallelizable): legality tests,
//!   attribute collection, affinity-group/read-write-count annotations.
//! * **IPA** (monolithic): summary aggregation, type-escape analysis,
//!   profitability analysis (affinity graphs + hotness under the chosen
//!   weighting scheme), heuristics → a [`TransformPlan`].
//! * **BE** (parallelizable): the actual rewrites.
//!
//! Each phase is timed so the §2.5 compile-time overhead experiment can
//! be regenerated.
//!
//! The FE + IPA half is exposed separately from the BE half
//! ([`analyze`] / [`apply`]) so the batch service can memoize analysis
//! results by content hash ([`analysis_cache_key`]) and re-run only the
//! rewrite per job; [`compile`] is the one-shot composition.

use crate::error::SloError;
use slo_analysis::affinity::{
    build_affinity_graphs, build_field_counts, AffinityGraph, FieldCounts,
};
use slo_analysis::dcache::FieldDcache;
use slo_analysis::fingerprint::{fold_legality_config, fold_scheme};
use slo_analysis::ipa::{aggregate, IpaResult, LegalityConfig};
use slo_analysis::legality::analyze_all_units;
use slo_analysis::schemes::{block_frequencies, WeightScheme};
use slo_ir::{Fnv64, Program, RecordId};
use slo_transform::{apply_plan, decide, HeuristicsConfig, TransformPlan};
use slo_vm::Feedback;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Pipeline configuration.
///
/// The unified config every front end (CLI, batch service, fuzzer,
/// bench drivers) constructs the same way — via [`PipelineConfig::builder`].
/// Plain field-struct literals over `Default` keep compiling.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Legality configuration (relaxation flag, SMAL threshold).
    pub legality: LegalityConfig,
    /// Heuristic knobs; `None` derives the paper's defaults from the
    /// scheme (T_s = 3% for PBO/PPBO, 7.5% otherwise).
    pub heuristics: Option<HeuristicsConfig>,
    /// Attribute d-cache samples (needs a feedback with samples).
    pub attribute_dcache: bool,
}

impl PipelineConfig {
    /// Start building a configuration.
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder {
            cfg: PipelineConfig::default(),
        }
    }

    /// Fold every knob into a stable hasher — the config part of the
    /// analysis cache key. `None` heuristics and an explicit
    /// scheme-default config hash differently on purpose: they *are*
    /// different requests (the former tracks future default changes).
    pub fn fold_into(&self, h: &mut Fnv64) {
        use std::hash::Hasher as _;
        h.write_str("PipelineConfig");
        fold_legality_config(&self.legality, h);
        match &self.heuristics {
            None => h.write_bool(false),
            Some(hc) => {
                h.write_bool(true);
                h.write_f64(hc.split_threshold);
                h.write_u64(hc.min_split_fields as u64);
                h.write_bool(hc.enable_peel);
                h.write_bool(hc.enable_split);
                h.write_bool(hc.enable_dead_removal);
                h.write_bool(hc.prefer_interleave);
            }
        }
        h.write_bool(self.attribute_dcache);
    }
}

/// Builder for [`PipelineConfig`] (see [`PipelineConfig::builder`]).
#[derive(Debug, Clone, Default)]
pub struct PipelineConfigBuilder {
    cfg: PipelineConfig,
}

impl PipelineConfigBuilder {
    /// Replace the whole legality configuration.
    pub fn legality(mut self, legality: LegalityConfig) -> Self {
        self.cfg.legality = legality;
        self
    }

    /// Tolerate CSTT/CSTF/ATKN unconditionally (Table 1's "Relax").
    pub fn relax_cast_addr(mut self, relax: bool) -> Self {
        self.cfg.legality.relax_cast_addr = relax;
        self
    }

    /// Relax only where field-sensitive points-to sets stay precise.
    pub fn pointsto_relax(mut self, relax: bool) -> Self {
        self.cfg.legality.pointsto_relax = relax;
        self
    }

    /// SMAL threshold *A* (constant allocation counts `<= A` invalidate).
    pub fn smal_threshold(mut self, a: i64) -> Self {
        self.cfg.legality.smal_threshold = a;
        self
    }

    /// Pin the full heuristics configuration (disables the
    /// derive-from-scheme default).
    pub fn heuristics(mut self, heuristics: HeuristicsConfig) -> Self {
        self.cfg.heuristics = Some(heuristics);
        self
    }

    /// Pin the split threshold `T_s` (percent), keeping the other
    /// heuristic knobs at their current (or default) values. Like
    /// [`Self::heuristics`], this disables the derive-from-scheme
    /// default.
    pub fn split_threshold(mut self, ts: f64) -> Self {
        let mut hc = self.cfg.heuristics.unwrap_or_default();
        hc.split_threshold = ts;
        self.cfg.heuristics = Some(hc);
        self
    }

    /// Attribute d-cache samples (needs a PBO/PPBO scheme with samples).
    pub fn attribute_dcache(mut self, on: bool) -> Self {
        self.cfg.attribute_dcache = on;
        self
    }

    /// Finish.
    pub fn build(self) -> PipelineConfig {
        self.cfg
    }
}

/// Wall-clock time spent per phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// FE legality + annotation collection.
    pub fe: Duration,
    /// IPA aggregation + profitability + heuristics.
    pub ipa: Duration,
    /// BE rewriting.
    pub be: Duration,
}

/// Everything the pipeline produced.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// The transformed program.
    pub program: Program,
    /// The plan IPA handed to the BE.
    pub plan: TransformPlan,
    /// Legality verdicts.
    pub ipa: IpaResult,
    /// Affinity graphs under the chosen scheme.
    pub graphs: HashMap<RecordId, AffinityGraph>,
    /// Read/write counts.
    pub counts: HashMap<(RecordId, u32), FieldCounts>,
    /// Attributed d-cache samples, when requested and available.
    pub dcache: Option<HashMap<(RecordId, u32), FieldDcache>>,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
}

/// The FE + IPA products for one (program, scheme, config) triple: the
/// unit the batch service memoizes by [`analysis_cache_key`]. Applying
/// a (possibly cached) `Analysis` to its program via [`apply`] yields
/// the same [`CompileResult`] a one-shot [`compile`] produces.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Legality verdicts (IPA aggregation).
    pub ipa: IpaResult,
    /// Affinity graphs under the chosen scheme.
    pub graphs: HashMap<RecordId, AffinityGraph>,
    /// Read/write counts.
    pub counts: HashMap<(RecordId, u32), FieldCounts>,
    /// Attributed d-cache samples, when requested and available.
    pub dcache: Option<HashMap<(RecordId, u32), FieldDcache>>,
    /// The plan IPA hands to the BE.
    pub plan: TransformPlan,
    /// FE wall-clock time (zero when replayed from cache).
    pub fe: Duration,
    /// IPA wall-clock time (zero when replayed from cache).
    pub ipa_time: Duration,
}

/// Content-hash cache key for the analysis of `prog` under `scheme` and
/// `cfg`: normalized IR (printer fixpoint) + scheme name/profile +
/// every config knob. Stable across processes and platforms.
pub fn analysis_cache_key(prog: &Program, scheme: &WeightScheme<'_>, cfg: &PipelineConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(&slo_ir::printer::print_program(prog));
    fold_scheme(scheme, &mut h);
    cfg.fold_into(&mut h);
    h.digest()
}

/// Run the FE and IPA phases (legality, profitability, planning) over
/// `prog` under `scheme` — everything up to but excluding the rewrite.
pub fn analyze(prog: &Program, scheme: &WeightScheme<'_>, cfg: &PipelineConfig) -> Analysis {
    analyze_with(prog, scheme, cfg, &slo_obs::Recorder::disabled())
}

/// [`analyze`] with a trace recorder: one span per phase — `legality`
/// (FE), then `escape` / `profile` / `plan` (IPA). The disabled
/// recorder makes this identical to [`analyze`].
pub fn analyze_with(
    prog: &Program,
    scheme: &WeightScheme<'_>,
    cfg: &PipelineConfig,
    rec: &slo_obs::Recorder,
) -> Analysis {
    // --- FE: per-unit legality tests + attribute collection -----------
    let t0 = Instant::now();
    let summaries = {
        let _s = rec.span("pipeline", "legality");
        analyze_all_units(prog)
    };
    let fe = t0.elapsed();

    // --- IPA ----------------------------------------------------------
    let t1 = Instant::now();
    let ipa = {
        let mut s = rec.span("pipeline", "escape");
        let ipa = aggregate(prog, &summaries, &cfg.legality);
        s.arg("records", prog.types.num_records());
        ipa
    };
    // Profitability evidence: hotness under the chosen weighting
    // scheme, affinity graphs, read/write counts, d-cache attribution.
    let (graphs, counts, dcache) = {
        let mut s = rec.span("pipeline", "profile");
        s.arg("scheme", scheme.name());
        let freqs = block_frequencies(prog, scheme);
        let graphs = build_affinity_graphs(prog, &freqs);
        let counts = build_field_counts(prog, &freqs);
        let dcache = if cfg.attribute_dcache {
            match scheme {
                WeightScheme::Pbo(fb) | WeightScheme::Ppbo(fb) => {
                    Some(slo_analysis::dcache::attribute_samples(prog, fb))
                }
                _ => None,
            }
        } else {
            None
        };
        (graphs, counts, dcache)
    };
    let plan = {
        let mut s = rec.span("pipeline", "plan");
        let heuristics = cfg.heuristics.unwrap_or_else(|| match scheme {
            WeightScheme::Pbo(_) | WeightScheme::Ppbo(_) => HeuristicsConfig::pbo(),
            _ => HeuristicsConfig::ispbo(),
        });
        let plan = decide(prog, &ipa, &graphs, &counts, &heuristics);
        s.arg("transformed_types", plan.num_transformed());
        plan
    };
    let ipa_time = t1.elapsed();

    Analysis {
        ipa,
        graphs,
        counts,
        dcache,
        plan,
        fe,
        ipa_time,
    }
}

/// Run the BE over `prog` using an (often cached) [`Analysis`].
///
/// # Errors
///
/// Propagates BE rewrite failures as [`SloError::Transform`]; a
/// transformed program that fails the IR verifier is reported as
/// [`SloError::Legality`].
pub fn apply(prog: &Program, analysis: &Analysis) -> Result<CompileResult, SloError> {
    apply_with(prog, analysis, &slo_obs::Recorder::disabled())
}

/// [`apply`] with a trace recorder: `transform` and `verify` spans.
///
/// # Errors
///
/// See [`apply`].
pub fn apply_with(
    prog: &Program,
    analysis: &Analysis,
    rec: &slo_obs::Recorder,
) -> Result<CompileResult, SloError> {
    let t2 = Instant::now();
    let program = {
        let mut s = rec.span("pipeline", "transform");
        let program = apply_plan(prog, &analysis.plan)?;
        s.arg("transformed_types", analysis.plan.num_transformed());
        program
    };
    {
        let mut s = rec.span("pipeline", "verify");
        let errors = slo_ir::verify::verify(&program);
        s.arg("errors", errors.len());
        if let Some(first) = errors.first() {
            return Err(SloError::Legality(format!(
                "transformed program failed verification: {first}"
            )));
        }
    }
    let be = t2.elapsed();
    Ok(CompileResult {
        program,
        plan: analysis.plan.clone(),
        ipa: analysis.ipa.clone(),
        graphs: analysis.graphs.clone(),
        counts: analysis.counts.clone(),
        dcache: analysis.dcache.clone(),
        timings: PhaseTimings {
            fe: analysis.fe,
            ipa: analysis.ipa_time,
            be,
        },
    })
}

/// Run the full pipeline over `prog` under `scheme`.
///
/// # Errors
///
/// Propagates BE rewrite failures as [`SloError::Transform`].
pub fn compile(
    prog: &Program,
    scheme: &WeightScheme<'_>,
    cfg: &PipelineConfig,
) -> Result<CompileResult, SloError> {
    apply(prog, &analyze(prog, scheme, cfg))
}

/// [`compile`] with a trace recorder: the full FE → IPA → BE pipeline
/// with one span per phase (`legality`, `escape`, `profile`, `plan`,
/// `transform`, `verify`), all nested under a `compile` span. The
/// `parse` and `profile`-collection spans are recorded by the callers
/// that own those steps (CLI, service).
///
/// # Errors
///
/// See [`apply`].
pub fn compile_with(
    prog: &Program,
    scheme: &WeightScheme<'_>,
    cfg: &PipelineConfig,
    rec: &slo_obs::Recorder,
) -> Result<CompileResult, SloError> {
    let mut span = rec.span("pipeline", "compile");
    span.arg("scheme", scheme.name());
    apply_with(prog, &analyze_with(prog, scheme, cfg, rec), rec)
}

/// The PBO collection phase: run the instrumented program on the training
/// input (the program itself encodes its input; callers model training vs
/// reference inputs by building different programs) and return the
/// feedback file.
///
/// # Errors
///
/// Propagates VM execution errors as [`SloError::Vm`] (or
/// [`SloError::Budget`] on a step-limit abort).
pub fn collect_profile(prog: &Program) -> Result<Feedback, SloError> {
    let out = slo_vm::run(prog, &slo_vm::VmOptions::profiling())?;
    Ok(out.feedback)
}

/// [`collect_profile`] with a trace recorder: the instrumented training
/// run appears as a `profile` span (with the VM's own `vm.run` span
/// nested inside it).
///
/// # Errors
///
/// See [`collect_profile`].
pub fn collect_profile_with(prog: &Program, rec: &slo_obs::Recorder) -> Result<Feedback, SloError> {
    let mut span = rec.span("pipeline", "profile");
    span.arg("instrumented", true);
    let opts = slo_vm::VmOptions::builder()
        .collect_edges(true)
        .sample_dcache(true)
        .trace(rec.clone())
        .build();
    let out = slo_vm::run(prog, &opts)?;
    span.arg("instructions", out.stats.instructions);
    Ok(out.feedback)
}

/// Before/after performance comparison on the simulated machine.
#[derive(Debug, Clone, Copy)]
pub struct Evaluation {
    /// Cycles of the untransformed program.
    pub baseline_cycles: u64,
    /// Cycles of the transformed program.
    pub optimized_cycles: u64,
    /// Simulated instructions retired by the untransformed program.
    pub baseline_instructions: u64,
    /// Simulated instructions retired by the transformed program.
    pub optimized_instructions: u64,
}

impl Evaluation {
    /// Speedup in percent, the paper's Table 3 presentation
    /// (positive = faster after transformation).
    pub fn speedup_percent(&self) -> f64 {
        if self.optimized_cycles == 0 {
            return 0.0;
        }
        (self.baseline_cycles as f64 / self.optimized_cycles as f64 - 1.0) * 100.0
    }
}

/// Run both versions on the simulated machine and compare cycle counts.
///
/// Both programs execute on the pre-decoded engine by default
/// ([`slo_vm::Engine::Decoded`], the [`slo_vm::VmOptions`] default);
/// pass `VmOptions::default().structured()` to force the structured
/// reference interpreter. The two engines are observationally identical
/// (same exit value, cycle count, and profile), so the choice only
/// affects host wall time.
///
/// # Errors
///
/// Propagates VM execution errors; also fails if the two programs do not
/// compute the same result (a transformation-correctness guard).
pub fn evaluate(
    baseline: &Program,
    optimized: &Program,
    opts: &slo_vm::VmOptions,
) -> Result<Evaluation, SloError> {
    let b = slo_vm::run(baseline, opts)?;
    let o = slo_vm::run(optimized, opts)?;
    assert_eq!(
        b.exit, o.exit,
        "transformed program changed the computed result"
    );
    Ok(Evaluation {
        baseline_cycles: b.stats.cycles,
        optimized_cycles: o.stats.cycles,
        baseline_instructions: b.stats.instructions,
        optimized_instructions: o.stats.instructions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_ir::parser::parse;
    use slo_ir::verify::assert_valid;

    // a peelable type plus an illegal one
    const SRC: &str = r#"
record elem { w: f64, t: f64 }
record bad  { x: i64 }
global P: ptr<elem>
func main() -> f64 {
bb0:
  r20 = alloc bad, 10
  r21 = cast r20 : ptr<bad> -> i64
  r0 = alloc elem, 1000
  gstore r0, P
  r1 = 0
  jump bb1
bb1:
  r2 = cmp.lt r1, 1000
  br r2, bb2, bb3
bb2:
  r3 = gload P
  r4 = indexaddr r3, elem, r1
  r5 = fieldaddr r4, elem.w
  store 1.0, r5 : f64
  r1 = add r1, 1
  jump bb1
bb3:
  r6 = gload P
  r7 = indexaddr r6, elem, 500
  r8 = fieldaddr r7, elem.w
  r9 = load r8 : f64
  ret r9
}
"#;

    #[test]
    fn end_to_end_compile() {
        let p = parse(SRC).expect("parse");
        let res = compile(&p, &WeightScheme::Ispbo, &PipelineConfig::default()).expect("compile");
        assert_valid(&res.program);
        assert_eq!(res.plan.num_transformed(), 1);
        let elem = p.types.record_by_name("elem").expect("elem");
        assert!(res.plan.of(elem).is_some());
        let bad = p.types.record_by_name("bad").expect("bad");
        assert!(!res.plan.of(bad).is_some());
    }

    #[test]
    fn evaluation_guards_semantics() {
        let p = parse(SRC).expect("parse");
        let res = compile(&p, &WeightScheme::Ispbo, &PipelineConfig::default()).expect("compile");
        let eval = evaluate(&p, &res.program, &slo_vm::VmOptions::default()).expect("evaluate");
        assert!(eval.baseline_cycles > 0);
        assert!(eval.optimized_cycles > 0);
    }

    #[test]
    fn pbo_collection_and_use() {
        let p = parse(SRC).expect("parse");
        let fb = collect_profile(&p).expect("collect");
        assert!(fb.func("main").is_some());
        let res = compile(
            &p,
            &WeightScheme::Pbo(&fb),
            &PipelineConfig {
                attribute_dcache: true,
                ..Default::default()
            },
        )
        .expect("compile");
        assert!(res.dcache.is_some());
        assert_valid(&res.program);
    }

    #[test]
    fn timings_populated() {
        let p = parse(SRC).expect("parse");
        let res = compile(&p, &WeightScheme::Spbo, &PipelineConfig::default()).expect("compile");
        // sanity: phases took measurable (>= 0) time and the struct is
        // plumbed; no absolute expectations
        let t = res.timings;
        assert!(t.fe.as_nanos() + t.ipa.as_nanos() + t.be.as_nanos() > 0);
    }

    #[test]
    fn speedup_math() {
        let e = Evaluation {
            baseline_cycles: 1500,
            optimized_cycles: 1000,
            baseline_instructions: 0,
            optimized_instructions: 0,
        };
        assert!((e.speedup_percent() - 50.0).abs() < 1e-9);
        let e = Evaluation {
            baseline_cycles: 900,
            optimized_cycles: 1000,
            baseline_instructions: 0,
            optimized_instructions: 0,
        };
        assert!(e.speedup_percent() < 0.0);
    }
}
