//! # slo — practical structure layout optimization and advice
//!
//! The facade crate of the reproduction of Hundt, Mannarswamy &
//! Chakrabarti, *"Practical Structure Layout Optimization and Advice"*
//! (CGO 2006): a SYZYGY-style FE → IPA → BE pipeline
//! ([`pipeline::compile`]) that runs the legality and profitability
//! analyses, decides structure splitting / peeling / dead-field-removal /
//! reordering, applies the rewrites, and can evaluate the result on the
//! simulated Itanium-flavoured machine ([`pipeline::evaluate`]).
//!
//! The member crates are re-exported for convenience:
//!
//! * [`ir`] — the compiler IR substrate,
//! * [`vm`] — interpreter, cache simulator, profiler, PMU sampler,
//! * [`analysis`] — legality, affinity/hotness, frequency schemes,
//! * [`transform`] — the planning heuristics and rewrites,
//! * [`advisor`] — the advisory reporting tool.
//!
//! # Examples
//!
//! ```
//! use slo::analysis::WeightScheme;
//! use slo::pipeline::{compile, evaluate, PipelineConfig};
//!
//! let src = r#"
//! record pt { x: f64, y: f64 }
//! global P: ptr<pt>
//! func main() -> f64 {
//! bb0:
//!   r0 = alloc pt, 256
//!   gstore r0, P
//!   r1 = 0
//!   jump bb1
//! bb1:
//!   r2 = cmp.lt r1, 256
//!   br r2, bb2, bb3
//! bb2:
//!   r3 = gload P
//!   r4 = indexaddr r3, pt, r1
//!   r5 = fieldaddr r4, pt.x
//!   store 1.0, r5 : f64
//!   r1 = add r1, 1
//!   jump bb1
//! bb3:
//!   ret 0.0
//! }
//! "#;
//! let prog = slo::ir::parser::parse(src)?;
//! let result = compile(&prog, &WeightScheme::Ispbo, &PipelineConfig::default())?;
//! let eval = evaluate(&prog, &result.program, &slo::vm::VmOptions::default())?;
//! assert!(eval.baseline_cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod pipeline;
pub mod serial;

pub use error::SloError;
pub use pipeline::{
    analysis_cache_key, analyze, analyze_with, apply, apply_with, collect_profile,
    collect_profile_with, compile, compile_with, evaluate, Analysis, CompileResult, Evaluation,
    PhaseTimings, PipelineConfig, PipelineConfigBuilder,
};
pub use serial::{decode_analysis, encode_analysis, SerialError, ANALYSIS_VERSION};

pub use slo_obs as obs;

pub use slo_advisor as advisor;
pub use slo_analysis as analysis;
pub use slo_ir as ir;
pub use slo_transform as transform;
pub use slo_vm as vm;
