//! Versioned binary serialization of [`Analysis`] for the persistent
//! analysis store.
//!
//! The in-memory analysis cache dies with the process; the persistent
//! store (`slo-service`'s segment store) survives it, so the FE + IPA
//! half of the pipeline must round-trip through disk bytes: legality
//! verdicts ([`IpaResult`]), affinity graphs, field read/write counts,
//! attributed d-cache samples and the [`TransformPlan`].
//!
//! The workspace is deliberately serde-free, so the format is a small
//! hand-rolled little-endian binary layout:
//!
//! * a 4-byte magic (`SLOA`) plus a `u16` version — decoding rejects
//!   unknown versions instead of misreading them;
//! * length-prefixed collections, with map entries emitted in sorted
//!   key order so encoding is deterministic: the same analysis always
//!   produces the same bytes (and therefore the same store checksum);
//! * `f64` by bit pattern — weights and sample estimates round-trip
//!   exactly, keeping replayed-from-store outcomes bit-identical to
//!   recomputed ones.
//!
//! Integrity is layered *above* this module: the store wraps each
//! encoded record in a length-prefixed header with an FNV checksum over
//! the full record bytes (note that [`ipa_fingerprint`] digests only
//! the planner-relevant subset of the IPA result, so it alone cannot
//! detect bit rot in, say, an affinity weight). Decoding here still
//! validates structurally — truncation, bad tags and trailing garbage
//! all fail loudly — so a record that passes both the checksum and
//! this decoder is safe to serve.
//!
//! [`ipa_fingerprint`]: slo_analysis::ipa_fingerprint

use crate::pipeline::Analysis;
use slo_analysis::legality::{AllocSite, LegalityTest, TypeObservations};
use slo_analysis::{AffinityGraph, FieldCounts, FieldDcache, IpaResult, TypeVerdict};
use slo_ir::instr::{BlockId, FuncId, InstrRef};
use slo_ir::RecordId;
use slo_transform::{TransformPlan, TypeTransform};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::time::Duration;

/// Magic prefix of an encoded analysis record.
pub const ANALYSIS_MAGIC: [u8; 4] = *b"SLOA";

/// Current format version; bump on any layout change.
pub const ANALYSIS_VERSION: u16 = 1;

/// Why a byte buffer failed to decode as an [`Analysis`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerialError {
    /// The buffer ended before the structure did.
    Truncated,
    /// The magic prefix is not `SLOA`.
    BadMagic,
    /// The version is newer (or older) than this decoder speaks.
    UnsupportedVersion(u16),
    /// An enum tag byte had no matching variant.
    BadTag(&'static str, u8),
    /// Decoding finished with bytes left over.
    TrailingBytes(usize),
}

impl fmt::Display for SerialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerialError::Truncated => write!(f, "truncated analysis record"),
            SerialError::BadMagic => write!(f, "bad magic (not an analysis record)"),
            SerialError::UnsupportedVersion(v) => {
                write!(f, "unsupported analysis format version {v}")
            }
            SerialError::BadTag(what, t) => write!(f, "invalid {what} tag {t}"),
            SerialError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after analysis"),
        }
    }
}

impl std::error::Error for SerialError {}

/// `LegalityTest` variants in tag order (tag = index). Append-only:
/// reordering or removing entries changes the meaning of stored bytes.
const TESTS: [LegalityTest; 9] = [
    LegalityTest::Cstt,
    LegalityTest::Cstf,
    LegalityTest::Atkn,
    LegalityTest::Libc,
    LegalityTest::Ind,
    LegalityTest::Smal,
    LegalityTest::Mset,
    LegalityTest::Nest,
    LegalityTest::Escape,
];

fn test_tag(t: LegalityTest) -> u8 {
    TESTS
        .iter()
        .position(|&x| x == t)
        .expect("every LegalityTest has a tag") as u8
}

// ---------------------------------------------------------------------------
// primitive writer / reader
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn vec_u32(&mut self, v: &[u32]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u32(x);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SerialError> {
        let end = self.pos.checked_add(n).ok_or(SerialError::Truncated)?;
        if end > self.buf.len() {
            return Err(SerialError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SerialError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, SerialError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, SerialError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SerialError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, SerialError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, SerialError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bool(&mut self) -> Result<bool, SerialError> {
        Ok(self.u8()? != 0)
    }
    /// A collection length whose elements occupy at least `min_elem`
    /// bytes each — rejects counts the remaining buffer cannot hold, so
    /// a corrupted length field fails fast instead of over-allocating.
    fn count(&mut self, min_elem: usize) -> Result<usize, SerialError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem) > self.buf.len() - self.pos {
            return Err(SerialError::Truncated);
        }
        Ok(n)
    }
    fn vec_u32(&mut self) -> Result<Vec<u32>, SerialError> {
        let n = self.count(4)?;
        (0..n).map(|_| self.u32()).collect()
    }
}

// ---------------------------------------------------------------------------
// encode
// ---------------------------------------------------------------------------

/// Encode `a` into the versioned binary record format. Deterministic:
/// equal analyses produce equal bytes.
pub fn encode_analysis(a: &Analysis) -> Vec<u8> {
    let mut w = Writer::default();
    w.buf.extend_from_slice(&ANALYSIS_MAGIC);
    w.u16(ANALYSIS_VERSION);

    // --- IPA verdicts ---------------------------------------------------
    w.u32(a.ipa.verdicts.len() as u32);
    for v in &a.ipa.verdicts {
        w.u32(v.record.0);
        encode_observations(&mut w, &v.attrs);
        w.u8(v.invalid.len() as u8);
        for &t in &v.invalid {
            w.u8(test_tag(t));
        }
    }

    // --- affinity graphs (sorted by record id) --------------------------
    let mut graph_ids: Vec<&RecordId> = a.graphs.keys().collect();
    graph_ids.sort_unstable();
    w.u32(graph_ids.len() as u32);
    for rid in graph_ids {
        let g = &a.graphs[rid];
        w.u32(rid.0);
        w.u32(g.record.0);
        w.u32(g.nfields as u32);
        let edges: Vec<((u32, u32), f64)> = g.edges().collect();
        w.u32(edges.len() as u32);
        for ((x, y), weight) in edges {
            w.u32(x);
            w.u32(y);
            w.f64(weight);
        }
    }

    // --- field read/write counts (sorted by (record, field)) ------------
    let mut count_keys: Vec<&(RecordId, u32)> = a.counts.keys().collect();
    count_keys.sort_unstable();
    w.u32(count_keys.len() as u32);
    for k in count_keys {
        let c = &a.counts[k];
        w.u32(k.0 .0);
        w.u32(k.1);
        w.f64(c.reads);
        w.f64(c.writes);
    }

    // --- attributed d-cache samples (optional) ---------------------------
    match &a.dcache {
        None => w.u8(0),
        Some(d) => {
            w.u8(1);
            let mut keys: Vec<&(RecordId, u32)> = d.keys().collect();
            keys.sort_unstable();
            w.u32(keys.len() as u32);
            for k in keys {
                let s = &d[k];
                w.u32(k.0 .0);
                w.u32(k.1);
                w.f64(s.misses);
                w.f64(s.total_latency);
                w.f64(s.accesses);
            }
        }
    }

    // --- transform plan (sorted by record id) ----------------------------
    let mut plan_ids: Vec<&RecordId> = a.plan.types.keys().collect();
    plan_ids.sort_unstable();
    w.u32(plan_ids.len() as u32);
    for rid in plan_ids {
        w.u32(rid.0);
        encode_transform(&mut w, &a.plan.types[rid]);
    }

    // --- phase timings ----------------------------------------------------
    w.u64(a.fe.as_nanos() as u64);
    w.u64(a.ipa_time.as_nanos() as u64);
    w.buf
}

fn encode_observations(w: &mut Writer, o: &TypeObservations) {
    w.u8(o.violations.len() as u8);
    for (&t, &c) in &o.violations {
        w.u8(test_tag(t));
        w.u32(c);
    }
    w.bool(o.has_global_var);
    w.bool(o.has_global_ptr);
    w.bool(o.has_local_ptr);
    w.bool(o.has_static_array);
    w.bool(o.dyn_alloc);
    w.bool(o.freed);
    w.bool(o.realloced);
    w.u32(o.alloc_sites.len() as u32);
    for s in &o.alloc_sites {
        w.u32(s.at.func.0);
        w.u32(s.at.block.0);
        w.u32(s.at.index);
        match s.const_count {
            None => w.u8(0),
            Some(n) => {
                w.u8(1);
                w.i64(n);
            }
        }
        w.bool(s.zeroed);
    }
    w.u32(o.escapes_to.len() as u32);
    for f in &o.escapes_to {
        w.u32(f.0);
    }
}

fn encode_transform(w: &mut Writer, t: &TypeTransform) {
    match t {
        TypeTransform::None => w.u8(0),
        TypeTransform::RemoveDead { dead } => {
            w.u8(1);
            w.vec_u32(dead);
        }
        TypeTransform::Split {
            hot_order,
            cold,
            dead,
        } => {
            w.u8(2);
            w.vec_u32(hot_order);
            w.vec_u32(cold);
            w.vec_u32(dead);
        }
        TypeTransform::Peel { dead } => {
            w.u8(3);
            w.vec_u32(dead);
        }
        TypeTransform::Interleave { dead } => {
            w.u8(4);
            w.vec_u32(dead);
        }
    }
}

// ---------------------------------------------------------------------------
// decode
// ---------------------------------------------------------------------------

/// Decode bytes produced by [`encode_analysis`].
///
/// # Errors
///
/// [`SerialError`] on a bad magic, an unsupported version, truncation,
/// an invalid tag, or trailing bytes — any structural damage the
/// store's checksum somehow missed.
pub fn decode_analysis(bytes: &[u8]) -> Result<Analysis, SerialError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != ANALYSIS_MAGIC {
        return Err(SerialError::BadMagic);
    }
    let version = r.u16()?;
    if version != ANALYSIS_VERSION {
        return Err(SerialError::UnsupportedVersion(version));
    }

    let nverdicts = r.count(1)?;
    let mut verdicts = Vec::with_capacity(nverdicts);
    for _ in 0..nverdicts {
        let record = RecordId(r.u32()?);
        let attrs = decode_observations(&mut r)?;
        let ninvalid = r.u8()? as usize;
        let mut invalid = BTreeSet::new();
        for _ in 0..ninvalid {
            invalid.insert(decode_test(&mut r)?);
        }
        verdicts.push(TypeVerdict {
            record,
            attrs,
            invalid,
        });
    }

    let ngraphs = r.count(1)?;
    let mut graphs = HashMap::with_capacity(ngraphs);
    for _ in 0..ngraphs {
        let key = RecordId(r.u32()?);
        let record = RecordId(r.u32()?);
        let nfields = r.u32()? as usize;
        let nedges = r.count(16)?;
        let mut edges = Vec::with_capacity(nedges);
        for _ in 0..nedges {
            let a = r.u32()?;
            let b = r.u32()?;
            let weight = r.f64()?;
            edges.push(((a, b), weight));
        }
        graphs.insert(key, AffinityGraph::from_edges(record, nfields, edges));
    }

    let ncounts = r.count(24)?;
    let mut counts = HashMap::with_capacity(ncounts);
    for _ in 0..ncounts {
        let rid = RecordId(r.u32()?);
        let field = r.u32()?;
        let reads = r.f64()?;
        let writes = r.f64()?;
        counts.insert((rid, field), FieldCounts { reads, writes });
    }

    let dcache = if r.bool()? {
        let n = r.count(32)?;
        let mut d = HashMap::with_capacity(n);
        for _ in 0..n {
            let rid = RecordId(r.u32()?);
            let field = r.u32()?;
            let misses = r.f64()?;
            let total_latency = r.f64()?;
            let accesses = r.f64()?;
            d.insert(
                (rid, field),
                FieldDcache {
                    misses,
                    total_latency,
                    accesses,
                },
            );
        }
        Some(d)
    } else {
        None
    };

    let nplans = r.count(5)?;
    let mut types = HashMap::with_capacity(nplans);
    for _ in 0..nplans {
        let rid = RecordId(r.u32()?);
        types.insert(rid, decode_transform(&mut r)?);
    }

    let fe = Duration::from_nanos(r.u64()?);
    let ipa_time = Duration::from_nanos(r.u64()?);
    if r.pos != bytes.len() {
        return Err(SerialError::TrailingBytes(bytes.len() - r.pos));
    }
    Ok(Analysis {
        ipa: IpaResult { verdicts },
        graphs,
        counts,
        dcache,
        plan: TransformPlan { types },
        fe,
        ipa_time,
    })
}

fn decode_test(r: &mut Reader<'_>) -> Result<LegalityTest, SerialError> {
    let tag = r.u8()?;
    TESTS
        .get(tag as usize)
        .copied()
        .ok_or(SerialError::BadTag("legality test", tag))
}

fn decode_observations(r: &mut Reader<'_>) -> Result<TypeObservations, SerialError> {
    let nviol = r.u8()? as usize;
    let mut violations = BTreeMap::new();
    for _ in 0..nviol {
        let t = decode_test(r)?;
        let c = r.u32()?;
        violations.insert(t, c);
    }
    let has_global_var = r.bool()?;
    let has_global_ptr = r.bool()?;
    let has_local_ptr = r.bool()?;
    let has_static_array = r.bool()?;
    let dyn_alloc = r.bool()?;
    let freed = r.bool()?;
    let realloced = r.bool()?;
    let nsites = r.count(14)?;
    let mut alloc_sites = Vec::with_capacity(nsites);
    for _ in 0..nsites {
        let at = InstrRef {
            func: FuncId(r.u32()?),
            block: BlockId(r.u32()?),
            index: r.u32()?,
        };
        let const_count = if r.bool()? { Some(r.i64()?) } else { None };
        let zeroed = r.bool()?;
        alloc_sites.push(AllocSite {
            at,
            const_count,
            zeroed,
        });
    }
    let nescapes = r.count(4)?;
    let mut escapes_to = BTreeSet::new();
    for _ in 0..nescapes {
        escapes_to.insert(FuncId(r.u32()?));
    }
    Ok(TypeObservations {
        violations,
        has_global_var,
        has_global_ptr,
        has_local_ptr,
        has_static_array,
        dyn_alloc,
        freed,
        realloced,
        alloc_sites,
        escapes_to,
    })
}

fn decode_transform(r: &mut Reader<'_>) -> Result<TypeTransform, SerialError> {
    Ok(match r.u8()? {
        0 => TypeTransform::None,
        1 => TypeTransform::RemoveDead { dead: r.vec_u32()? },
        2 => TypeTransform::Split {
            hot_order: r.vec_u32()?,
            cold: r.vec_u32()?,
            dead: r.vec_u32()?,
        },
        3 => TypeTransform::Peel { dead: r.vec_u32()? },
        4 => TypeTransform::Interleave { dead: r.vec_u32()? },
        tag => return Err(SerialError::BadTag("transform", tag)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{analyze, PipelineConfig};
    use slo_analysis::{ipa_fingerprint, WeightScheme};
    use slo_ir::parser::parse;

    const SRC: &str = r#"
record pair { hot: i64, c1: i64, c2: i64 }
record lone { only: i64 }
func main() -> i64 {
bb0:
  r0 = alloc pair, 64
  r1 = 0
  jump bb1
bb1:
  r2 = cmp.lt r1, 64
  br r2, bb2, bb3
bb2:
  r3 = indexaddr r0, pair, r1
  r4 = fieldaddr r3, pair.hot
  store r1, r4 : i64
  r5 = load r4 : i64
  r1 = add r1, 1
  jump bb1
bb3:
  r6 = fieldaddr r0, pair.c1
  store 1, r6 : i64
  r7 = load r6 : i64
  ret r7
}
"#;

    fn sample() -> Analysis {
        let prog = parse(SRC).expect("parse");
        analyze(&prog, &WeightScheme::Ispbo, &PipelineConfig::default())
    }

    #[test]
    fn roundtrip_preserves_everything_observable() {
        let a = sample();
        let bytes = encode_analysis(&a);
        let b = decode_analysis(&bytes).expect("decode");
        // The encoder is deterministic, so byte-equality of a re-encode
        // is full structural equality (Analysis has no PartialEq).
        assert_eq!(bytes, encode_analysis(&b));
        assert_eq!(ipa_fingerprint(&a.ipa), ipa_fingerprint(&b.ipa));
        assert_eq!(a.ipa.verdicts.len(), b.ipa.verdicts.len());
        assert_eq!(a.graphs.len(), b.graphs.len());
        for (rid, g) in &a.graphs {
            let h = &b.graphs[rid];
            assert_eq!(g.nfields, h.nfields);
            assert_eq!(g.edges().collect::<Vec<_>>(), h.edges().collect::<Vec<_>>());
        }
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.dcache, b.dcache);
        assert_eq!(a.plan.types, b.plan.types);
        assert_eq!(a.fe, b.fe);
        assert_eq!(a.ipa_time, b.ipa_time);
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = sample();
        assert_eq!(encode_analysis(&a), encode_analysis(&a));
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let a = sample();
        let mut bytes = encode_analysis(&a);
        bytes[0] ^= 0xff;
        assert!(matches!(
            decode_analysis(&bytes),
            Err(SerialError::BadMagic)
        ));
        let mut bytes = encode_analysis(&a);
        bytes[4] = 0x7f; // version low byte
        assert!(matches!(
            decode_analysis(&bytes),
            Err(SerialError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = encode_analysis(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode_analysis(&bytes[..cut]).is_err(),
                "a {cut}-byte prefix of {} must not decode",
                bytes.len()
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_analysis(&sample());
        bytes.push(0);
        assert!(matches!(
            decode_analysis(&bytes),
            Err(SerialError::TrailingBytes(1))
        ));
    }

    #[test]
    fn decoded_analysis_drives_the_backend_identically() {
        let prog = parse(SRC).expect("parse");
        let a = analyze(&prog, &WeightScheme::Ispbo, &PipelineConfig::default());
        let b = decode_analysis(&encode_analysis(&a)).expect("decode");
        let ra = crate::pipeline::apply(&prog, &a).expect("apply original");
        let rb = crate::pipeline::apply(&prog, &b).expect("apply decoded");
        assert_eq!(
            slo_ir::printer::print_program(&ra.program),
            slo_ir::printer::print_program(&rb.program),
            "stored analysis must produce bit-identical transformed IR"
        );
    }
}
