//! Inter-procedurally scaled static frequencies — the paper's ISPBO.
//!
//! Local static estimates are propagated top-down over the call graph:
//! `N_g(main) = 1`, `N_g(f) = Σ E_g(c)` over call sites `c` of `f`, and
//! every local count inside `f` is scaled by `S = N_g(f) / N_loc(f)`
//! (our local entry count is 1, so `S = N_g(f)`).
//!
//! Because the local back-edge probabilities produce hotness histograms
//! that are "too flat", the paper additionally raises the scaling factor
//! to the power `E = 1.5` (`S` is either >1 or <1, so exponentiation
//! improves hot/cold separability). `ISPBO.NO` is the same computation
//! with `E = 1`.
//!
//! Recursion is handled by processing call-graph SCCs in topological order
//! and resolving intra-SCC flow with a damped geometric fixpoint (a
//! recursive call contributes `damping` of its caller's count per round),
//! which converges for any call-frequency matrix.

use crate::freq::{estimate_static, BranchProbs, FuncFreq};
use slo_ir::callgraph::CallGraph;
use slo_ir::{FuncId, Program};
use std::collections::HashMap;

/// Configuration for the ISPBO computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IspboConfig {
    /// The separability exponent `E` applied to the scaling factor.
    pub exponent: f64,
    /// Branch probability heuristics for the local estimates.
    pub probs: BranchProbs,
    /// Damping factor for intra-SCC (recursive) call flow.
    pub damping: f64,
    /// Fixpoint rounds for recursive SCCs.
    pub rounds: u32,
}

impl Default for IspboConfig {
    fn default() -> Self {
        IspboConfig {
            exponent: 1.5,
            probs: BranchProbs::default(),
            damping: 0.5,
            rounds: 12,
        }
    }
}

impl IspboConfig {
    /// The ISPBO.NO variant: no exponent.
    pub fn without_exponent() -> Self {
        IspboConfig {
            exponent: 1.0,
            ..Default::default()
        }
    }

    /// The ISPBO.W variant: no exponent, raised back-edge probabilities.
    pub fn with_raised_probs() -> Self {
        IspboConfig {
            exponent: 1.0,
            probs: BranchProbs::raised(),
            ..Default::default()
        }
    }
}

/// Result: globally scaled frequencies plus the raw global entry counts.
#[derive(Debug, Clone, Default)]
pub struct IspboResult {
    /// Scaled block/edge frequencies per defined function.
    pub freqs: HashMap<FuncId, FuncFreq>,
    /// Global entry counts `N_g(f)`.
    pub global_counts: HashMap<FuncId, f64>,
}

/// Compute inter-procedurally scaled static frequencies.
pub fn interprocedural_freqs(prog: &Program, cfg: &IspboConfig) -> IspboResult {
    let cg = CallGraph::build(prog);

    // 1. Local estimates (entry count 1.0 each).
    let mut local: HashMap<FuncId, FuncFreq> = HashMap::new();
    for fid in prog.func_ids() {
        if prog.func(fid).is_defined() {
            local.insert(fid, estimate_static(prog, fid, &cfg.probs));
        }
    }

    // 2. Local call-site frequencies: E_loc(c) = local freq of the block
    //    containing the call.
    let site_local_freq = |caller: FuncId, block: slo_ir::BlockId| -> f64 {
        local.get(&caller).map(|ff| ff.of(block)).unwrap_or(0.0)
    };

    // 3. Global counts via topological SCC order (Tarjan emits callees
    //    first; we reverse to get callers first).
    let mut n_g: HashMap<FuncId, f64> = HashMap::new();
    let main = prog.main();
    let sccs = cg.sccs(prog);

    for scc in sccs.iter().rev() {
        // external inflow (from outside this SCC)
        let mut ext: HashMap<FuncId, f64> = HashMap::new();
        for &f in scc {
            let mut inflow = 0.0;
            for site in cg.calls_to(f) {
                if scc.contains(&site.caller) {
                    continue;
                }
                let caller_ng = n_g.get(&site.caller).copied().unwrap_or(0.0);
                inflow += site_local_freq(site.caller, site.block) * caller_ng;
            }
            if Some(f) == main {
                inflow += 1.0;
            } else if inflow == 0.0 && cg.calls_to(f).next().is_none() {
                // unreached root (alternate entry point): assume one entry
                inflow = 1.0;
            }
            ext.insert(f, inflow);
        }

        let recursive =
            scc.len() > 1 || scc.iter().any(|&f| cg.calls_from(f).any(|s| s.callee == f));
        if !recursive {
            for &f in scc {
                n_g.insert(f, ext[&f]);
            }
            continue;
        }

        // Damped geometric fixpoint for recursive SCCs.
        let mut cur: HashMap<FuncId, f64> = ext.clone();
        for _ in 0..cfg.rounds {
            let mut next = ext.clone();
            for &f in scc {
                for site in cg.calls_from(f) {
                    if scc.contains(&site.callee) {
                        let contrib = site_local_freq(f, site.block)
                            * cur.get(&f).copied().unwrap_or(0.0)
                            * cfg.damping;
                        *next.entry(site.callee).or_insert(0.0) += contrib;
                    }
                }
            }
            cur = next;
        }
        for &f in scc {
            n_g.insert(f, cur.get(&f).copied().unwrap_or(0.0));
        }
    }

    // 4. Scale local frequencies by S^E.
    let mut freqs = HashMap::new();
    for (fid, ff) in &local {
        let s = n_g.get(fid).copied().unwrap_or(0.0).max(0.0);
        let scale = if s == 0.0 { 0.0 } else { s.powf(cfg.exponent) };
        let mut scaled = ff.clone();
        for b in &mut scaled.block {
            *b *= scale;
        }
        for v in scaled.edge.values_mut() {
            *v *= scale;
        }
        scaled.entry *= scale;
        freqs.insert(*fid, scaled);
    }

    IspboResult {
        freqs,
        global_counts: n_g,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_ir::parser::parse;

    #[test]
    fn callee_in_loop_is_hotter() {
        // main calls leaf() from inside a loop: leaf's blocks must end up
        // hotter than main's straight-line code.
        let src = r#"
func leaf() -> i64 {
bb0:
  ret 1
}
func main() -> i64 {
bb0:
  r0 = 0
  jump bb1
bb1:
  r1 = cmp.lt r0, 100
  br r1, bb2, bb3
bb2:
  r2 = call leaf()
  r0 = add r0, 1
  jump bb1
bb3:
  ret r0
}
"#;
        let p = parse(src).expect("parse");
        let res = interprocedural_freqs(&p, &IspboConfig::default());
        let leaf = p.func_by_name("leaf").expect("leaf");
        let main = p.main().expect("main");
        // leaf N_g = loop body freq (~7.3)
        let ng = res.global_counts[&leaf];
        assert!(ng > 5.0 && ng < 9.0, "leaf N_g = {ng}");
        assert_eq!(res.global_counts[&main], 1.0);
        // leaf's entry block freq is scaled by S^1.5
        let leaf_freq = res.freqs[&leaf].block[0];
        assert!((leaf_freq - ng.powf(1.5)).abs() < 1e-9);
    }

    #[test]
    fn deep_call_chain_compounds() {
        let src = r#"
func c() -> i64 {
bb0:
  ret 1
}
func b() -> i64 {
bb0:
  r0 = 0
  jump bb1
bb1:
  r1 = cmp.lt r0, 10
  br r1, bb2, bb3
bb2:
  r2 = call c()
  r0 = add r0, 1
  jump bb1
bb3:
  ret 0
}
func main() -> i64 {
bb0:
  r0 = 0
  jump bb1
bb1:
  r1 = cmp.lt r0, 10
  br r1, bb2, bb3
bb2:
  r2 = call b()
  r0 = add r0, 1
  jump bb1
bb3:
  ret 0
}
"#;
        let p = parse(src).expect("parse");
        let res = interprocedural_freqs(&p, &IspboConfig::without_exponent());
        let fb = p.func_by_name("b").expect("b");
        let fc = p.func_by_name("c").expect("c");
        let ng_b = res.global_counts[&fb];
        let ng_c = res.global_counts[&fc];
        assert!(ng_c > ng_b * 5.0, "c={ng_c} b={ng_b}");
    }

    #[test]
    fn recursion_terminates_and_is_finite() {
        let src = r#"
func f(i64) -> i64 {
bb0:
  r1 = cmp.gt r0, 0
  br r1, bb1, bb2
bb1:
  r2 = sub r0, 1
  r3 = call f(r2)
  ret r3
bb2:
  ret 0
}
func main() -> i64 {
bb0:
  r0 = call f(10)
  ret r0
}
"#;
        let p = parse(src).expect("parse");
        let res = interprocedural_freqs(&p, &IspboConfig::default());
        let f = p.func_by_name("f").expect("f");
        let ng = res.global_counts[&f];
        assert!(ng.is_finite());
        assert!(
            ng >= 1.0,
            "recursive callee must stay at least as hot as its external inflow, got {ng}"
        );
    }

    #[test]
    fn exponent_increases_separation() {
        let src = r#"
func hot() -> i64 {
bb0:
  ret 1
}
func main() -> i64 {
bb0:
  r0 = 0
  jump bb1
bb1:
  r1 = cmp.lt r0, 100
  br r1, bb2, bb3
bb2:
  r2 = call hot()
  r0 = add r0, 1
  jump bb1
bb3:
  ret r0
}
"#;
        let p = parse(src).expect("parse");
        let with = interprocedural_freqs(&p, &IspboConfig::default());
        let without = interprocedural_freqs(&p, &IspboConfig::without_exponent());
        let hot = p.func_by_name("hot").expect("hot");
        assert!(with.freqs[&hot].block[0] > without.freqs[&hot].block[0]);
    }

    #[test]
    fn unreached_function_gets_unit_entry() {
        let src = r#"
func orphan() -> i64 {
bb0:
  ret 0
}
func main() -> i64 {
bb0:
  ret 0
}
"#;
        let p = parse(src).expect("parse");
        let res = interprocedural_freqs(&p, &IspboConfig::default());
        let orphan = p.func_by_name("orphan").expect("orphan");
        assert_eq!(res.global_counts[&orphan], 1.0);
    }
}
