//! Stable fingerprints of analysis configurations and summaries.
//!
//! The batch service keys its analysis cache on
//! `hash(normalized IR, scheme, config)` and sanity-checks entries with
//! a digest of the *result*; both sides live here so the definition of
//! "same analysis" is owned by the analysis crate, not the cache.
//!
//! Everything folds into [`Fnv64`] (see `slo_ir::fingerprint`), which is
//! deterministic across processes — a requirement `DefaultHasher` does
//! not meet.

use crate::ipa::{IpaResult, LegalityConfig, TypeVerdict};
use crate::schemes::WeightScheme;
use slo_ir::Fnv64;
use std::hash::Hasher as _;

/// Fold a legality configuration into `h`. Every field participates:
/// flipping `relax_cast_addr`, `pointsto_relax`, or the SMAL threshold
/// must produce a different cache key.
pub fn fold_legality_config(cfg: &LegalityConfig, h: &mut Fnv64) {
    h.write_str("LegalityConfig");
    h.write_bool(cfg.relax_cast_addr);
    h.write_bool(cfg.pointsto_relax);
    h.write_u64(cfg.smal_threshold as u64);
}

/// Fold a weight scheme into `h`: the scheme name plus, for the
/// profile-driven schemes, the feedback file's canonical text (so two
/// PBO runs over different profiles never share a cache entry).
pub fn fold_scheme(scheme: &WeightScheme<'_>, h: &mut Fnv64) {
    h.write_str("WeightScheme");
    h.write_str(scheme.name());
    match scheme {
        WeightScheme::Pbo(fb) | WeightScheme::Ppbo(fb) => h.write_str(&fb.to_text()),
        _ => {}
    }
}

/// Digest of one type's legality verdict (record id, failing tests,
/// the attributes the planner consumes).
fn fold_verdict(v: &TypeVerdict, h: &mut Fnv64) {
    h.write_u32(v.record.0);
    h.write_u64(v.invalid.len() as u64);
    for t in &v.invalid {
        h.write_str(t.abbrev());
    }
    h.write_bool(v.attrs.dyn_alloc);
    h.write_bool(v.attrs.freed);
    h.write_bool(v.attrs.realloced);
    h.write_bool(v.attrs.has_global_var);
    h.write_bool(v.attrs.has_global_ptr);
    h.write_bool(v.attrs.has_static_array);
}

/// Stable digest of a whole-program legality result.
///
/// Two [`IpaResult`]s with the same verdicts (same failing tests and
/// planner-relevant attributes per type) digest identically; the batch
/// service uses this to assert that a cache hit reproduced the same
/// analysis a cold run computes.
pub fn ipa_fingerprint(res: &IpaResult) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("IpaResult");
    h.write_u64(res.num_types() as u64);
    for v in &res.verdicts {
        fold_verdict(v, &mut h);
    }
    h.digest()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipa::analyze_program;
    use slo_ir::parser::parse;

    const SRC: &str = r#"
record n { a: i64, b: i64 }
func main() -> i64 {
bb0:
  r0 = alloc n, 8
  r1 = fieldaddr r0, n.a
  store 1, r1 : i64
  r2 = load r1 : i64
  ret r2
}
"#;

    #[test]
    fn ipa_digest_is_stable_and_config_sensitive() {
        let p = parse(SRC).expect("parse");
        let strict = analyze_program(&p, &LegalityConfig::default());
        let again = analyze_program(&p, &LegalityConfig::default());
        assert_eq!(ipa_fingerprint(&strict), ipa_fingerprint(&again));

        // a cast invalidates under strict, not under relax -> digests differ
        let cast = SRC.replace("ret r2", "r9 = cast r0 : ptr<n> -> i64\n  ret r2");
        let p2 = parse(&cast).expect("parse");
        let s2 = analyze_program(&p2, &LegalityConfig::default());
        let r2 = analyze_program(
            &p2,
            &LegalityConfig {
                relax_cast_addr: true,
                ..Default::default()
            },
        );
        assert_ne!(ipa_fingerprint(&s2), ipa_fingerprint(&r2));
    }

    #[test]
    fn config_fold_distinguishes_every_knob() {
        let base = LegalityConfig::default();
        let digest = |c: &LegalityConfig| {
            let mut h = Fnv64::new();
            fold_legality_config(c, &mut h);
            h.digest()
        };
        let d0 = digest(&base);
        assert_ne!(
            d0,
            digest(&LegalityConfig {
                relax_cast_addr: true,
                ..base
            })
        );
        assert_ne!(
            d0,
            digest(&LegalityConfig {
                pointsto_relax: true,
                ..base
            })
        );
        assert_ne!(
            d0,
            digest(&LegalityConfig {
                smal_threshold: base.smal_threshold + 1,
                ..base
            })
        );
    }

    #[test]
    fn scheme_fold_separates_names_and_profiles() {
        let digest = |s: &WeightScheme<'_>| {
            let mut h = Fnv64::new();
            fold_scheme(s, &mut h);
            h.digest()
        };
        assert_ne!(digest(&WeightScheme::Ispbo), digest(&WeightScheme::Spbo));
        let empty = slo_vm::Feedback::new(1);
        assert_ne!(
            digest(&WeightScheme::Ispbo),
            digest(&WeightScheme::Pbo(&empty))
        );
    }
}
