//! Shared intra-procedural helpers: register def/use maps and a cheap
//! (flow-insensitive) register type inference.
//!
//! The FE legality pass is, per the paper, a *single* cheap pass that
//! trades accuracy for compile time. These helpers deliberately stay
//! flow-insensitive: a register gets the type of its (usually unique)
//! defining instruction, and ambiguity degrades conservatively.

use slo_ir::{FuncId, Instr, InstrRef, Operand, Program, Reg, Type, TypeId};

/// How an instruction uses a register operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseRole {
    /// As the address of a load.
    LoadAddr,
    /// As the address of a store.
    StoreAddr,
    /// As the *value* stored to memory.
    StoreValue,
    /// As an argument to a direct call.
    CallArg,
    /// As an argument to an indirect call.
    IndirectCallArg,
    /// As the base of a field/index address computation.
    AddrBase,
    /// Anything else (arithmetic, casts, branches, memcpy, ...).
    Other,
}

/// One use of a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Use {
    /// The using instruction.
    pub at: InstrRef,
    /// How the register is used there.
    pub role: UseRole,
}

/// Per-function register def/use information.
#[derive(Debug, Clone, Default)]
pub struct DefUse {
    /// Number of defs per register.
    pub def_counts: Vec<u32>,
    /// The last def site seen per register (meaningful when count == 1).
    pub unique_def: Vec<Option<InstrRef>>,
    /// All uses per register.
    pub uses: Vec<Vec<Use>>,
}

impl DefUse {
    /// Build def/use information for one defined function.
    pub fn build(prog: &Program, fid: FuncId) -> Self {
        let f = prog.func(fid);
        let n = f.num_regs as usize;
        let mut du = DefUse {
            def_counts: vec![0; n],
            unique_def: vec![None; n],
            uses: vec![Vec::new(); n],
        };
        // parameters count as defs
        for (r, _) in &f.params {
            du.def_counts[r.0 as usize] += 1;
        }
        for (at, ins) in prog.instrs_of(fid) {
            if let Some(Reg(d)) = ins.def() {
                du.def_counts[d as usize] += 1;
                du.unique_def[d as usize] = Some(at);
            }
            record_uses(ins, at, &mut du);
        }
        du
    }

    /// The unique defining instruction of `r`, if it has exactly one def.
    pub fn only_def(&self, r: Reg) -> Option<InstrRef> {
        if self.def_counts[r.0 as usize] == 1 {
            self.unique_def[r.0 as usize]
        } else {
            None
        }
    }
}

fn record_uses(ins: &Instr, at: InstrRef, du: &mut DefUse) {
    let mut add = |op: Operand, role: UseRole| {
        if let Operand::Reg(Reg(r)) = op {
            du.uses[r as usize].push(Use { at, role });
        }
    };
    match ins {
        Instr::Load { addr, .. } => add(*addr, UseRole::LoadAddr),
        Instr::Store { addr, value, .. } => {
            add(*addr, UseRole::StoreAddr);
            add(*value, UseRole::StoreValue);
        }
        Instr::Call { args, .. } => {
            for a in args {
                add(*a, UseRole::CallArg);
            }
        }
        Instr::CallIndirect { target, args, .. } => {
            add(*target, UseRole::Other);
            for a in args {
                add(*a, UseRole::IndirectCallArg);
            }
        }
        Instr::FieldAddr { base, .. } => add(*base, UseRole::AddrBase),
        Instr::IndexAddr { base, index, .. } => {
            add(*base, UseRole::AddrBase);
            add(*index, UseRole::Other);
        }
        Instr::StoreGlobal { value, .. } => add(*value, UseRole::StoreValue),
        other => {
            for op in other.uses() {
                add(op, UseRole::Other);
            }
        }
    }
}

/// Infer a static type for each register of a function.
///
/// Flow-insensitive: each defining instruction proposes a type; registers
/// with multiple conflicting defs get `None`. Parameters use their
/// declared types.
pub fn reg_types(prog: &Program, fid: FuncId) -> Vec<Option<TypeId>> {
    let f = prog.func(fid);
    let n = f.num_regs as usize;
    let mut tys: Vec<Option<TypeId>> = vec![None; n];
    let mut conflicted = vec![false; n];
    let assign =
        |tys: &mut Vec<Option<TypeId>>, conflicted: &mut Vec<bool>, r: Reg, t: Option<TypeId>| {
            let i = r.0 as usize;
            match (tys[i], t) {
                (None, Some(t)) if !conflicted[i] => tys[i] = Some(t),
                (Some(old), Some(new)) if old != new => {
                    tys[i] = None;
                    conflicted[i] = true;
                }
                _ => {}
            }
        };
    for (r, t) in &f.params {
        assign(&mut tys, &mut conflicted, *r, Some(*t));
    }
    // Two passes so Assign-copies of later-defined registers resolve.
    for _ in 0..2 {
        for (_, ins) in prog.instrs_of(fid) {
            let proposed: Option<(Reg, Option<TypeId>)> = match ins {
                Instr::Cast { dst, to, .. } => Some((*dst, Some(*to))),
                Instr::Load { dst, ty, .. } => Some((*dst, Some(*ty))),
                Instr::Alloc { dst, elem, .. } | Instr::Realloc { dst, elem, .. } => {
                    Some((*dst, Some(ptr_to(prog, *elem))))
                }
                Instr::FieldAddr {
                    dst, record, field, ..
                } => prog
                    .types
                    .record(*record)
                    .fields
                    .get(*field as usize)
                    .map(|f| (*dst, Some(ptr_to_existing(prog, f.ty)))),
                Instr::IndexAddr { dst, elem, .. } => {
                    Some((*dst, Some(ptr_to_existing(prog, *elem))))
                }
                Instr::LoadGlobal { dst, global } => {
                    Some((*dst, Some(prog.globals[global.index()].ty)))
                }
                Instr::AddrOfGlobal { dst, global } => Some((
                    *dst,
                    Some(ptr_to_existing(prog, prog.globals[global.index()].ty)),
                )),
                Instr::Call { dst, callee, .. } => dst.map(|d| (d, Some(prog.func(*callee).ret))),
                Instr::Assign {
                    dst,
                    src: Operand::Reg(s),
                } => Some((*dst, tys[s.0 as usize])),
                _ => None,
            };
            if let Some((r, t)) = proposed {
                assign(&mut tys, &mut conflicted, r, t);
            }
        }
    }
    tys
}

// Interning requires &mut; the analyses only *read* programs, so look up
// the pointer type if it already exists, otherwise synthesize a lookup
// that still identifies the pointee for the analyses' purposes. Since all
// programs built by the builder/parser intern pointer types before use,
// a missing entry means "no pointer to this type exists in the program",
// and we fall back to the pointee itself, which is still enough for
// `involved_record`.
fn ptr_to_existing(prog: &Program, pointee: TypeId) -> TypeId {
    for i in 0..prog.types.num_types() as u32 {
        if let Type::Ptr(inner) = prog.types.get(TypeId(i)) {
            if *inner == pointee {
                return TypeId(i);
            }
        }
    }
    pointee
}

fn ptr_to(prog: &Program, pointee: TypeId) -> TypeId {
    ptr_to_existing(prog, pointee)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_ir::parser::parse;

    const SRC: &str = r#"
record node { v: i64, next: ptr<node> }
global P: ptr<node>
func main() -> i64 {
bb0:
  r0 = alloc node, 10
  r1 = fieldaddr r0, node.v
  store 1, r1 : i64
  r2 = load r1 : i64
  r3 = fieldaddr r0, node.next
  r4 = r0
  gstore r0, P
  ret r2
}
"#;

    #[test]
    fn def_use_roles() {
        let p = parse(SRC).expect("parse");
        let main = p.main().expect("main");
        let du = DefUse::build(&p, main);
        // r1 (fieldaddr) used as store addr then load addr
        let roles: Vec<UseRole> = du.uses[1].iter().map(|u| u.role).collect();
        assert_eq!(roles, vec![UseRole::StoreAddr, UseRole::LoadAddr]);
        // r0 used as fieldaddr base twice, assigned, and stored to a global
        assert!(du.uses[0].iter().any(|u| u.role == UseRole::AddrBase));
        assert!(du.uses[0].iter().any(|u| u.role == UseRole::StoreValue));
        assert_eq!(du.def_counts[0], 1);
        assert!(du.only_def(Reg(0)).is_some());
        assert!(du.only_def(Reg(4)).is_some());
    }

    #[test]
    fn reg_type_inference() {
        let p = parse(SRC).expect("parse");
        let main = p.main().expect("main");
        let tys = reg_types(&p, main);
        let node = p.types.record_by_name("node").expect("node");
        // r0: ptr<node>
        assert_eq!(
            p.types.involved_record(tys[0].expect("r0 typed")),
            Some(node)
        );
        assert!(p.types.is_ptr(tys[0].expect("r0 typed")));
        // r2: i64 scalar
        let t2 = tys[2].expect("r2 typed");
        assert!(matches!(p.types.get(t2), Type::Scalar(_)));
        // r4 copies r0's type
        assert_eq!(tys[4], tys[0]);
    }

    #[test]
    fn conflicting_defs_give_none() {
        let src = r#"
func f(i64) -> i64 {
bb0:
  r1 = cast r0 : i64 -> f64
  r1 = cast r0 : i64 -> i64
  ret r0
}
"#;
        let p = parse(src).expect("parse");
        let f = p.func_by_name("f").expect("f");
        let tys = reg_types(&p, f);
        assert_eq!(tys[1], None);
        let du = DefUse::build(&p, f);
        assert_eq!(du.def_counts[1], 2);
        assert!(du.only_def(Reg(1)).is_none());
    }

    #[test]
    fn params_are_typed() {
        let src = "record r { a: i64 }\nfunc f(ptr<r>, i64) -> i64 {\nbb0:\n  ret r1\n}\n";
        let p = parse(src).expect("parse");
        let f = p.func_by_name("f").expect("f");
        let tys = reg_types(&p, f);
        let rid = p.types.record_by_name("r").expect("r");
        assert_eq!(p.types.involved_record(tys[0].expect("typed")), Some(rid));
    }
}
