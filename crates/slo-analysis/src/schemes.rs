//! The weighting schemes of Table 2, behind one interface.
//!
//! Every scheme reduces to "block frequencies per function", which then
//! feed the affinity/hotness machinery uniformly:
//!
//! | Scheme    | Source |
//! |-----------|--------|
//! | PBO       | edge profile from a *training* run |
//! | PPBO      | edge profile from the *reference* run ("perfect PBO") |
//! | SPBO      | static per-procedure estimates (Wu–Larus heuristics) |
//! | ISPBO     | SPBO scaled inter-procedurally, exponent E = 1.5 |
//! | ISPBO.NO  | ISPBO without the exponent |
//! | ISPBO.W   | ISPBO.NO with raised back-edge probabilities |
//!
//! DMISS/DLAT/DMISS.NO are not block-frequency schemes — they attribute
//! PMU samples directly to fields — and live in [`crate::dcache`].

use crate::affinity::{build_affinity_graphs, AffinityGraph};
use crate::freq::{estimate_static, from_profile, BranchProbs, FuncFreq};
use crate::ispbo::{interprocedural_freqs, IspboConfig};
use slo_ir::{FuncId, Program, RecordId};
use slo_vm::Feedback;
use std::collections::HashMap;

/// A hotness/affinity weighting scheme.
#[derive(Debug, Clone)]
pub enum WeightScheme<'a> {
    /// Profile-based (training input).
    Pbo(&'a Feedback),
    /// Perfect PBO (reference input used for the feedback file).
    Ppbo(&'a Feedback),
    /// Static intra-procedural estimates.
    Spbo,
    /// Inter-procedurally scaled static estimates with exponent E = 1.5.
    Ispbo,
    /// ISPBO without the exponent.
    IspboNo,
    /// ISPBO.NO with raised back-edge probabilities (0.98 / 0.95).
    IspboW,
    /// Fully custom ISPBO configuration (ablation studies).
    IspboCustom(IspboConfig),
}

impl WeightScheme<'_> {
    /// Display name matching the paper's column headers.
    pub fn name(&self) -> &'static str {
        match self {
            WeightScheme::Pbo(_) => "PBO",
            WeightScheme::Ppbo(_) => "PPBO",
            WeightScheme::Spbo => "SPBO",
            WeightScheme::Ispbo => "ISPBO",
            WeightScheme::IspboNo => "ISPBO.NO",
            WeightScheme::IspboW => "ISPBO.W",
            WeightScheme::IspboCustom(_) => "ISPBO.CUSTOM",
        }
    }
}

/// Compute per-function block frequencies under a scheme.
pub fn block_frequencies(prog: &Program, scheme: &WeightScheme<'_>) -> HashMap<FuncId, FuncFreq> {
    match scheme {
        WeightScheme::Pbo(fb) | WeightScheme::Ppbo(fb) => {
            let mut out = HashMap::new();
            for fid in prog.func_ids() {
                if !prog.func(fid).is_defined() {
                    continue;
                }
                if let Some(ff) = from_profile(prog, fid, fb) {
                    out.insert(fid, ff);
                }
            }
            out
        }
        WeightScheme::Spbo => {
            let mut out = HashMap::new();
            for fid in prog.func_ids() {
                if prog.func(fid).is_defined() {
                    out.insert(fid, estimate_static(prog, fid, &BranchProbs::default()));
                }
            }
            out
        }
        WeightScheme::Ispbo => interprocedural_freqs(prog, &IspboConfig::default()).freqs,
        WeightScheme::IspboNo => {
            interprocedural_freqs(prog, &IspboConfig::without_exponent()).freqs
        }
        WeightScheme::IspboW => {
            interprocedural_freqs(prog, &IspboConfig::with_raised_probs()).freqs
        }
        WeightScheme::IspboCustom(cfg) => interprocedural_freqs(prog, cfg).freqs,
    }
}

/// Affinity graphs for all record types under a scheme.
pub fn affinity_graphs(
    prog: &Program,
    scheme: &WeightScheme<'_>,
) -> HashMap<RecordId, AffinityGraph> {
    let freqs = block_frequencies(prog, scheme);
    build_affinity_graphs(prog, &freqs)
}

/// Relative field hotness (percent of the hottest field) for one record
/// under a scheme — one Table 2 column.
pub fn relative_hotness(prog: &Program, rid: RecordId, scheme: &WeightScheme<'_>) -> Vec<f64> {
    affinity_graphs(prog, scheme)
        .remove(&rid)
        .map(|g| g.relative_hotness())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlate::correlation;
    use slo_ir::parser::parse;
    use slo_vm::{run, VmOptions};

    // A loop whose trip count depends on an "input size" constant lets the
    // static schemes disagree with the profile in controlled ways.
    const SRC: &str = r#"
record node { hot: i64, warm: i64, cold: i64 }
func work(ptr<node>, i64) -> i64 {
bb0:
  r2 = 0
  r3 = 0
  jump bb1
bb1:
  r4 = cmp.lt r3, r1
  br r4, bb2, bb3
bb2:
  r5 = indexaddr r0, node, r3
  r6 = fieldaddr r5, node.hot
  r7 = load r6 : i64
  r2 = add r2, r7
  r3 = add r3, 1
  jump bb1
bb3:
  r8 = fieldaddr r0, node.cold
  r9 = load r8 : i64
  r10 = add r2, r9
  ret r10
}
func main() -> i64 {
bb0:
  r0 = alloc node, 1000
  r1 = 0
  jump bb1
bb1:
  r2 = cmp.lt r1, 100
  br r2, bb2, bb3
bb2:
  r3 = call work(r0, 1000)
  r4 = indexaddr r0, node, r1
  r5 = fieldaddr r4, node.warm
  store r3, r5 : i64
  r1 = add r1, 1
  jump bb1
bb3:
  ret 0
}
"#;

    #[test]
    fn all_schemes_rank_hot_first() {
        let p = parse(SRC).expect("parse");
        let out = run(&p, &VmOptions::profiling()).expect("run");
        let node = p.types.record_by_name("node").expect("node");
        for scheme in [
            WeightScheme::Pbo(&out.feedback),
            WeightScheme::Spbo,
            WeightScheme::Ispbo,
            WeightScheme::IspboNo,
            WeightScheme::IspboW,
        ] {
            let rel = relative_hotness(&p, node, &scheme);
            assert_eq!(rel.len(), 3, "{}", scheme.name());
            assert_eq!(rel[0], 100.0, "{}: hot must be hottest", scheme.name());
            assert!(
                rel[2] < rel[0],
                "{}: cold must be colder than hot",
                scheme.name()
            );
        }
    }

    #[test]
    fn ispbo_correlates_better_than_spbo() {
        // The hot field is touched in a callee loop; SPBO cannot see that
        // the callee runs 100x per entry, ISPBO can.
        let p = parse(SRC).expect("parse");
        let out = run(&p, &VmOptions::profiling()).expect("run");
        let node = p.types.record_by_name("node").expect("node");
        let base = relative_hotness(&p, node, &WeightScheme::Pbo(&out.feedback));
        let spbo = relative_hotness(&p, node, &WeightScheme::Spbo);
        let ispbo = relative_hotness(&p, node, &WeightScheme::Ispbo);
        let r_spbo = correlation(&base, &spbo);
        let r_ispbo = correlation(&base, &ispbo);
        assert!(
            r_ispbo >= r_spbo,
            "ISPBO ({r_ispbo:.3}) should beat SPBO ({r_spbo:.3})"
        );
    }

    #[test]
    fn names_match_paper() {
        let fb = Feedback::new(1);
        assert_eq!(WeightScheme::Pbo(&fb).name(), "PBO");
        assert_eq!(WeightScheme::Ppbo(&fb).name(), "PPBO");
        assert_eq!(WeightScheme::Spbo.name(), "SPBO");
        assert_eq!(WeightScheme::Ispbo.name(), "ISPBO");
        assert_eq!(WeightScheme::IspboNo.name(), "ISPBO.NO");
        assert_eq!(WeightScheme::IspboW.name(), "ISPBO.W");
    }

    #[test]
    fn pbo_without_profile_data_gives_empty() {
        let p = parse(SRC).expect("parse");
        let fb = Feedback::new(1);
        let freqs = block_frequencies(&p, &WeightScheme::Pbo(&fb));
        assert!(freqs.is_empty());
    }
}
