//! A simple field-sensitive, flow-insensitive points-to analysis.
//!
//! The paper estimates the benefit of its field-sensitive Points-To
//! analysis with a tolerance flag; this module goes one step further and
//! implements a lightweight Andersen-style analysis so the relaxed
//! legality mode can be *justified* per type instead of blanket-tolerated:
//! an exposed field address (ATKN) is harmless when its points-to set
//! never "collapses" — i.e. the exposed pointer can be shown to reach
//! only that one field's cell.
//!
//! Abstract locations:
//! * one object per allocation site,
//! * one object per global variable,
//! * one cell per (object, field) for record objects, plus a summary
//!   "element" cell for non-record payloads.
//!
//! The analysis is context-insensitive and treats all array elements of
//! an allocation as one abstract element (standard k=0 heap model).

use slo_ir::{FuncId, Instr, InstrRef, Operand, Program, RecordId, Reg};
use std::collections::{BTreeSet, HashMap};

/// An abstract memory object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbsObj {
    /// An allocation site.
    Alloc(InstrRef),
    /// A global variable.
    Global(u32),
}

/// What part of an object a pointer targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FieldRef {
    /// The object base / summary element.
    Base,
    /// A specific field cell.
    Exact(RecordId, u32),
    /// Somewhere inside the object, derived by pointer arithmetic from a
    /// field of this record — the "collapsed" case the paper's sharper
    /// ATKN test looks for.
    Blurred(RecordId),
}

/// An abstract pointer target: an object plus a field reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AbsLoc {
    /// The object pointed into.
    pub obj: AbsObj,
    /// Which part of the object.
    pub field: FieldRef,
}

/// Points-to sets for every register of every function, plus per-cell
/// stores (what each abstract cell may contain).
#[derive(Debug, Clone, Default)]
pub struct PointsTo {
    /// reg -> set of abstract locations, per function.
    pub reg_pts: HashMap<(FuncId, u32), BTreeSet<AbsLoc>>,
    /// abstract cell -> set of locations stored into it.
    pub cell_pts: HashMap<AbsLoc, BTreeSet<AbsLoc>>,
    /// records whose pointers may be forged from raw integers
    /// (int-to-pointer casts not covered by the malloc-result tolerance):
    /// nothing can be proven about such pointers.
    pub forged: BTreeSet<slo_ir::RecordId>,
}

impl PointsTo {
    /// Compute points-to sets for the whole program with a worklist.
    pub fn compute(prog: &Program) -> Self {
        let mut pt = PointsTo::default();
        // Iterate to a fixpoint; programs here are small enough that a
        // simple round-based solver converges quickly.
        let mut changed = true;
        let mut rounds = 0;
        while changed && rounds < 64 {
            changed = false;
            rounds += 1;
            for fid in prog.func_ids() {
                if !prog.func(fid).is_defined() {
                    continue;
                }
                if pt.flow_function(prog, fid) {
                    changed = true;
                }
            }
        }
        pt
    }

    fn get_reg(&self, fid: FuncId, r: Reg) -> BTreeSet<AbsLoc> {
        self.reg_pts.get(&(fid, r.0)).cloned().unwrap_or_default()
    }

    fn add_reg(&mut self, fid: FuncId, r: Reg, locs: impl IntoIterator<Item = AbsLoc>) -> bool {
        let set = self.reg_pts.entry((fid, r.0)).or_default();
        let before = set.len();
        set.extend(locs);
        set.len() != before
    }

    fn add_cells(&mut self, cells: &BTreeSet<AbsLoc>, vals: &BTreeSet<AbsLoc>) -> bool {
        let mut changed = false;
        for c in cells {
            let set = self.cell_pts.entry(*c).or_default();
            let before = set.len();
            set.extend(vals.iter().copied());
            changed |= set.len() != before;
        }
        changed
    }

    fn op_pts(&self, fid: FuncId, op: Operand) -> BTreeSet<AbsLoc> {
        match op {
            Operand::Reg(r) => self.get_reg(fid, r),
            _ => BTreeSet::new(),
        }
    }

    fn flow_function(&mut self, prog: &Program, fid: FuncId) -> bool {
        let mut changed = false;
        for (at, ins) in prog.instrs_of(fid) {
            match ins {
                Instr::Alloc { dst, .. } | Instr::Realloc { dst, .. } => {
                    changed |= self.add_reg(
                        fid,
                        *dst,
                        [AbsLoc {
                            obj: AbsObj::Alloc(at),
                            field: FieldRef::Base,
                        }],
                    );
                }
                Instr::AddrOfGlobal { dst, global } => {
                    changed |= self.add_reg(
                        fid,
                        *dst,
                        [AbsLoc {
                            obj: AbsObj::Global(global.0),
                            field: FieldRef::Base,
                        }],
                    );
                }
                Instr::Assign {
                    dst,
                    src: Operand::Reg(s),
                } => {
                    let locs = self.get_reg(fid, *s);
                    changed |= self.add_reg(fid, *dst, locs);
                }
                Instr::Cast { dst, src, from, to } => {
                    // pointer forging: int -> ptr<record> with no tracked
                    // source set means we can prove nothing about the type
                    if let Some(rid) = prog.types.involved_record(*to) {
                        let src_empty = match src {
                            Operand::Reg(s) => self.get_reg(fid, *s).is_empty(),
                            _ => true,
                        };
                        if prog.types.involved_record(*from).is_none()
                            && src_empty
                            && !self.forged.contains(&rid)
                        {
                            self.forged.insert(rid);
                            changed = true;
                        }
                    }
                    if let Operand::Reg(s) = src {
                        let locs = self.get_reg(fid, *s);
                        changed |= self.add_reg(fid, *dst, locs);
                    }
                }
                Instr::Bin { dst, lhs, rhs, .. } => {
                    // pointer arithmetic blurs field precision: the result
                    // may point anywhere within the same object
                    let mut blurred = BTreeSet::new();
                    for op in [lhs, rhs] {
                        for l in self.op_pts(fid, *op) {
                            let field = match l.field {
                                FieldRef::Exact(r, _) => FieldRef::Blurred(r),
                                other => other,
                            };
                            blurred.insert(AbsLoc { obj: l.obj, field });
                        }
                    }
                    if !blurred.is_empty() {
                        changed |= self.add_reg(fid, *dst, blurred);
                    }
                }
                Instr::FieldAddr {
                    dst,
                    base,
                    record,
                    field,
                } => {
                    let bases = self.op_pts(fid, *base);
                    let locs: Vec<AbsLoc> = bases
                        .iter()
                        .map(|b| AbsLoc {
                            obj: b.obj,
                            field: FieldRef::Exact(*record, *field),
                        })
                        .collect();
                    changed |= self.add_reg(fid, *dst, locs);
                }
                Instr::IndexAddr { dst, base, .. } => {
                    // element summary: keep pointing at the object base
                    let bases: Vec<AbsLoc> = self
                        .op_pts(fid, *base)
                        .iter()
                        .map(|b| AbsLoc {
                            obj: b.obj,
                            field: FieldRef::Base,
                        })
                        .collect();
                    changed |= self.add_reg(fid, *dst, bases);
                }
                Instr::Load { dst, addr, .. } => {
                    let cells = self.op_pts(fid, *addr);
                    let mut vals = BTreeSet::new();
                    for c in &cells {
                        if let Some(s) = self.cell_pts.get(c) {
                            vals.extend(s.iter().copied());
                        }
                    }
                    changed |= self.add_reg(fid, *dst, vals);
                }
                Instr::Store { addr, value, .. } => {
                    let cells = self.op_pts(fid, *addr);
                    let vals = self.op_pts(fid, *value);
                    if !vals.is_empty() {
                        changed |= self.add_cells(&cells, &vals);
                    }
                }
                Instr::LoadGlobal { dst, global } => {
                    let cell = AbsLoc {
                        obj: AbsObj::Global(global.0),
                        field: FieldRef::Base,
                    };
                    if let Some(vals) = self.cell_pts.get(&cell).cloned() {
                        changed |= self.add_reg(fid, *dst, vals);
                    }
                }
                Instr::StoreGlobal { global, value } => {
                    let cell = AbsLoc {
                        obj: AbsObj::Global(global.0),
                        field: FieldRef::Base,
                    };
                    let vals = self.op_pts(fid, *value);
                    if !vals.is_empty() {
                        let mut cells = BTreeSet::new();
                        cells.insert(cell);
                        changed |= self.add_cells(&cells, &vals);
                    }
                }
                Instr::Call { dst, callee, args } => {
                    // bind arguments to parameters, return set to dst
                    let cf = prog.func(*callee);
                    if cf.is_defined() {
                        for (i, a) in args.iter().enumerate() {
                            if let Some((pr, _)) = cf.params.get(i) {
                                let vals = self.op_pts(fid, *a);
                                if !vals.is_empty() {
                                    changed |= self.add_reg(*callee, *pr, vals);
                                }
                            }
                        }
                        if let Some(d) = dst {
                            // returned pointers: union of all return operands
                            for (_, rins) in prog.instrs_of(*callee) {
                                if let Instr::Return { value: Some(v) } = rins {
                                    let vals = self.op_pts(*callee, *v);
                                    if !vals.is_empty() {
                                        changed |= self.add_reg(fid, *d, vals);
                                    }
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        changed
    }

    /// Whether the points-to set of any pointer derived from a field of
    /// `rid` "collapses" — i.e. some register may point at two *different*
    /// fields of the same object, meaning exposed field addresses could
    /// be used to reach other fields. When this returns `false`, the
    /// CSTT/CSTF/ATKN violations on `rid` can be safely tolerated.
    pub fn collapses(&self, rid: RecordId) -> bool {
        if self.forged.contains(&rid) {
            return true;
        }
        for set in self.reg_pts.values() {
            let mut fields: BTreeSet<u32> = BTreeSet::new();
            for l in set {
                match l.field {
                    FieldRef::Exact(r, f) if r == rid => {
                        fields.insert(f);
                    }
                    FieldRef::Blurred(r) if r == rid => return true,
                    _ => {}
                }
            }
            if fields.len() > 1 {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_ir::parser::parse;

    #[test]
    fn alloc_flows_to_register() {
        let src = r#"
record node { a: i64 }
func main() -> i64 {
bb0:
  r0 = alloc node, 10
  r1 = r0
  ret 0
}
"#;
        let p = parse(src).expect("parse");
        let pt = PointsTo::compute(&p);
        let main = p.main().expect("main");
        let s0 = pt.get_reg(main, Reg(0));
        let s1 = pt.get_reg(main, Reg(1));
        assert_eq!(s0.len(), 1);
        assert_eq!(s0, s1);
    }

    #[test]
    fn field_addresses_are_distinct() {
        let src = r#"
record node { a: i64, b: i64 }
func main() -> i64 {
bb0:
  r0 = alloc node, 10
  r1 = fieldaddr r0, node.a
  r2 = fieldaddr r0, node.b
  ret 0
}
"#;
        let p = parse(src).expect("parse");
        let pt = PointsTo::compute(&p);
        let main = p.main().expect("main");
        let a = pt.get_reg(main, Reg(1));
        let b = pt.get_reg(main, Reg(2));
        assert_ne!(a, b);
        let node = p.types.record_by_name("node").expect("node");
        assert!(!pt.collapses(node));
    }

    #[test]
    fn collapse_via_copied_field_pointer() {
        // one register aliases both fields — the collapse case
        let src = r#"
record node { a: i64, b: i64 }
func main() -> i64 {
bb0:
  r0 = alloc node, 10
  r1 = fieldaddr r0, node.a
  r3 = r1
  r2 = fieldaddr r0, node.b
  br 1, bb1, bb2
bb1:
  r3 = r2
  jump bb2
bb2:
  ret 0
}
"#;
        let p = parse(src).expect("parse");
        let pt = PointsTo::compute(&p);
        let node = p.types.record_by_name("node").expect("node");
        assert!(pt.collapses(node));
    }

    #[test]
    fn flows_through_globals_and_loads() {
        let src = r#"
record node { a: i64 }
global P: ptr<node>
func main() -> i64 {
bb0:
  r0 = alloc node, 10
  gstore r0, P
  r1 = gload P
  r2 = fieldaddr r1, node.a
  ret 0
}
"#;
        let p = parse(src).expect("parse");
        let pt = PointsTo::compute(&p);
        let main = p.main().expect("main");
        let r1 = pt.get_reg(main, Reg(1));
        assert_eq!(r1.len(), 1, "global load must recover the allocation");
        let r2 = pt.get_reg(main, Reg(2));
        assert!(r2.iter().all(|l| matches!(l.field, FieldRef::Exact(..))));
    }

    #[test]
    fn flows_through_calls() {
        let src = r#"
record node { a: i64 }
func id(ptr<node>) -> ptr<node> {
bb0:
  ret r0
}
func main() -> i64 {
bb0:
  r0 = alloc node, 10
  r1 = call id(r0)
  r2 = fieldaddr r1, node.a
  ret 0
}
"#;
        let p = parse(src).expect("parse");
        let pt = PointsTo::compute(&p);
        let main = p.main().expect("main");
        assert_eq!(pt.get_reg(main, Reg(1)).len(), 1);
    }

    #[test]
    fn stores_into_heap_cells() {
        let src = r#"
record list { next: ptr<list> }
func main() -> i64 {
bb0:
  r0 = alloc list, 1
  r1 = alloc list, 1
  r2 = fieldaddr r0, list.next
  store r1, r2 : ptr<list>
  r3 = load r2 : ptr<list>
  ret 0
}
"#;
        let p = parse(src).expect("parse");
        let pt = PointsTo::compute(&p);
        let main = p.main().expect("main");
        let r3 = pt.get_reg(main, Reg(3));
        let r1 = pt.get_reg(main, Reg(1));
        assert_eq!(r3, r1, "load must recover what the store put there");
    }
}
