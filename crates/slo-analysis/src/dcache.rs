//! Attribution of sampled d-cache events to structure fields — §3.1.
//!
//! The feedback file carries PMU samples keyed by instruction position.
//! After CFG matching (functions by name, blocks/instructions by id), each
//! sampled load/store is traced back to the `FieldAddr` that produced its
//! address, yielding per-field miss counts and latencies — the paper's
//! DMISS and DLAT columns and the numbers shown by the advisory tool.

use crate::util::DefUse;
use slo_ir::{FuncId, Instr, Operand, Program, RecordId, Reg};
use slo_vm::Feedback;
use std::collections::HashMap;

/// Aggregated d-cache events for one field.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FieldDcache {
    /// Estimated miss count (samples scaled by the sampling period).
    pub misses: f64,
    /// Estimated total latency cycles.
    pub total_latency: f64,
    /// Estimated sampled access count.
    pub accesses: f64,
}

impl FieldDcache {
    /// Mean latency per access (0 when never sampled).
    pub fn avg_latency(&self) -> f64 {
        if self.accesses == 0.0 {
            0.0
        } else {
            self.total_latency / self.accesses
        }
    }
}

/// Attribute all samples in `fb` to record fields.
///
/// Loads/stores whose address register cannot be traced to a unique
/// `FieldAddr` within the same function (e.g. plain array element access)
/// are skipped — same as real tool chains, which can only attribute what
/// the compiler's symbolic information covers.
pub fn attribute_samples(prog: &Program, fb: &Feedback) -> HashMap<(RecordId, u32), FieldDcache> {
    let mut out: HashMap<(RecordId, u32), FieldDcache> = HashMap::new();
    let period = fb.sample_period.max(1) as f64;

    for fid in prog.func_ids() {
        let f = prog.func(fid);
        if !f.is_defined() {
            continue;
        }
        let Some(fp) = fb.func(&f.name) else {
            continue;
        };
        if fp.samples.is_empty() {
            continue;
        }
        let du = DefUse::build(prog, fid);
        for ((block, idx), s) in &fp.samples {
            let Some(field) = field_of_instr(prog, fid, &du, *block, *idx) else {
                continue;
            };
            let d = out.entry(field).or_default();
            d.misses += s.misses as f64 * period;
            d.total_latency += s.total_latency as f64 * period;
            d.accesses += s.samples as f64 * period;
        }
    }
    out
}

/// Map the instruction at `(block, idx)` of `fid` to the field it
/// accesses, chasing the address register to its unique `FieldAddr` def.
fn field_of_instr(
    prog: &Program,
    fid: FuncId,
    du: &DefUse,
    block: u32,
    idx: u32,
) -> Option<(RecordId, u32)> {
    let f = prog.func(fid);
    let b = f.blocks.get(block as usize)?;
    let ins = b.instrs.get(idx as usize)?;
    let addr = match ins {
        Instr::Load { addr, .. } => *addr,
        Instr::Store { addr, .. } => *addr,
        _ => return None,
    };
    let Operand::Reg(r) = addr else { return None };
    chase_fieldaddr(prog, du, r, 0)
}

fn chase_fieldaddr(prog: &Program, du: &DefUse, r: Reg, depth: u32) -> Option<(RecordId, u32)> {
    if depth > 4 {
        return None;
    }
    let def = du.only_def(r)?;
    let ins = prog.instr(def);
    match ins {
        Instr::FieldAddr { record, field, .. } => Some((*record, *field)),
        Instr::Assign {
            src: Operand::Reg(s),
            ..
        } => chase_fieldaddr(prog, du, *s, depth + 1),
        _ => None,
    }
}

/// Attribute stride records to fields (the paper's §2.4 stride
/// information, surfaced per field by the advisory tool). When several
/// sites touch the same field, the stride with the most evidence wins.
pub fn attribute_strides(
    prog: &Program,
    fb: &Feedback,
) -> HashMap<(RecordId, u32), slo_vm::profile::StrideInfo> {
    let mut out: HashMap<(RecordId, u32), slo_vm::profile::StrideInfo> = HashMap::new();
    for fid in prog.func_ids() {
        let f = prog.func(fid);
        if !f.is_defined() {
            continue;
        }
        let Some(fp) = fb.func(&f.name) else {
            continue;
        };
        if fp.strides.is_empty() {
            continue;
        }
        let du = DefUse::build(prog, fid);
        for ((block, idx), st) in &fp.strides {
            let Some(field) = field_of_instr(prog, fid, &du, *block, *idx) else {
                continue;
            };
            let e = out.entry(field).or_default();
            if st.hits > e.hits {
                *e = *st;
            }
        }
    }
    out
}

/// Relative per-field miss hotness for one record (percent of hottest),
/// parallel to the record's field list — the DMISS presentation.
pub fn relative_misses(
    prog: &Program,
    rid: RecordId,
    data: &HashMap<(RecordId, u32), FieldDcache>,
) -> Vec<f64> {
    relative_metric(prog, rid, data, |d| d.misses)
}

/// Relative per-field latency hotness (percent of hottest) — DLAT.
pub fn relative_latencies(
    prog: &Program,
    rid: RecordId,
    data: &HashMap<(RecordId, u32), FieldDcache>,
) -> Vec<f64> {
    relative_metric(prog, rid, data, |d| d.total_latency)
}

fn relative_metric(
    prog: &Program,
    rid: RecordId,
    data: &HashMap<(RecordId, u32), FieldDcache>,
    metric: impl Fn(&FieldDcache) -> f64,
) -> Vec<f64> {
    let n = prog.types.record(rid).fields.len() as u32;
    let vals: Vec<f64> = (0..n)
        .map(|f| data.get(&(rid, f)).map(&metric).unwrap_or(0.0))
        .collect();
    let max = vals.iter().cloned().fold(0.0f64, f64::max);
    if max == 0.0 {
        vals
    } else {
        vals.iter().map(|v| v / max * 100.0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_ir::parser::parse;
    use slo_vm::{run, VmOptions};

    // Array of two-field structs; field `a` is read every iteration,
    // field `b` only every 16th — a's miss counts must dominate.
    const SRC: &str = r#"
record cell { a: i64, b: i64, p0: i64, p1: i64, p2: i64, p3: i64, p4: i64, p5: i64 }
func main() -> i64 {
bb0:
  r0 = alloc cell, 32768
  r1 = 0
  r2 = 0
  jump bb1
bb1:
  r3 = cmp.lt r1, 32768
  br r3, bb2, bb5
bb2:
  r4 = indexaddr r0, cell, r1
  r5 = fieldaddr r4, cell.a
  r6 = load r5 : i64
  r2 = add r2, r6
  r7 = and r1, 15
  r8 = cmp.eq r7, 0
  br r8, bb3, bb4
bb3:
  r9 = fieldaddr r4, cell.b
  r10 = load r9 : i64
  r2 = add r2, r10
  jump bb4
bb4:
  r1 = add r1, 1
  jump bb1
bb5:
  ret r2
}
"#;

    fn sampled() -> (slo_ir::Program, HashMap<(RecordId, u32), FieldDcache>) {
        let p = parse(SRC).expect("parse");
        let mut opts = VmOptions::sampling_only();
        opts.sample_period = 1;
        let out = run(&p, &opts).expect("run");
        let attr = attribute_samples(&p, &out.feedback);
        (p, attr)
    }

    #[test]
    fn misses_attributed_to_fields() {
        let (p, attr) = sampled();
        let cell = p.types.record_by_name("cell").expect("cell");
        let a = attr.get(&(cell, 0)).copied().unwrap_or_default();
        let b = attr.get(&(cell, 1)).copied().unwrap_or_default();
        assert!(a.misses > 20_000.0, "a.misses = {}", a.misses);
        assert!(
            a.misses > b.misses * 4.0,
            "a {} should dominate b {}",
            a.misses,
            b.misses
        );
        assert!(a.avg_latency() > 1.0);
    }

    #[test]
    fn relative_miss_vector() {
        let (p, attr) = sampled();
        let cell = p.types.record_by_name("cell").expect("cell");
        let rel = relative_misses(&p, cell, &attr);
        assert_eq!(rel.len(), 8);
        assert!((rel[0] - 100.0).abs() < 1e-9);
        assert!(rel[1] < 40.0);
        assert_eq!(rel[7], 0.0);
        let rel_lat = relative_latencies(&p, cell, &attr);
        assert!((rel_lat[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_period_scales_estimates() {
        let p = parse(SRC).expect("parse");
        let mut o1 = VmOptions::sampling_only();
        o1.sample_period = 1;
        let full = run(&p, &o1).expect("run");
        let mut o16 = VmOptions::sampling_only();
        o16.sample_period = 16;
        let sparse = run(&p, &o16).expect("run");
        let cell = p.types.record_by_name("cell").expect("cell");
        let a_full = attribute_samples(&p, &full.feedback)[&(cell, 0)];
        let a_sparse = attribute_samples(&p, &sparse.feedback)
            .get(&(cell, 0))
            .copied()
            .unwrap_or_default();
        // scaled estimates should land within 2x of the full count
        assert!(
            a_sparse.misses > a_full.misses * 0.5 && a_sparse.misses < a_full.misses * 2.0,
            "sparse {} vs full {}",
            a_sparse.misses,
            a_full.misses
        );
    }

    #[test]
    fn unattributable_accesses_are_skipped() {
        let src = r#"
func main() -> i64 {
bb0:
  r0 = alloc i64, 64
  r1 = indexaddr r0, i64, 3
  r2 = load r1 : i64
  ret r2
}
"#;
        let p = parse(src).expect("parse");
        let mut opts = VmOptions::sampling_only();
        opts.sample_period = 1;
        let out = run(&p, &opts).expect("run");
        let attr = attribute_samples(&p, &out.feedback);
        assert!(attr.is_empty());
    }
}
