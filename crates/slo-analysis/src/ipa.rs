//! IPA aggregation of FE legality summaries — §2.2's second half.
//!
//! Reads each unit's summary ("from the IELF files"), merges observations
//! in the type-unified symbol table, runs type-escape analysis (a type
//! escaping to a function outside the IPA scope is invalidated), applies
//! the SMAL threshold, and — for the paper's relaxed-analysis experiment —
//! optionally tolerates CSTT/CSTF/ATKN, the three tests a field-sensitive
//! points-to analysis could sharpen.

use crate::legality::{LegalitySummary, LegalityTest, TypeObservations};
use slo_ir::{Program, RecordId};
use std::collections::BTreeSet;

/// IPA-side legality configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LegalityConfig {
    /// Tolerate CSTT, CSTF and ATKN unconditionally (the paper's internal
    /// flag that estimates the upper bound of a points-to-based analysis).
    pub relax_cast_addr: bool,
    /// Tolerate CSTT/CSTF/ATKN only for types whose field-sensitive
    /// points-to sets do not collapse — the *justified* version of the
    /// relaxation the paper sketches ("testing for collapsed Points-To
    /// sets can be used as a sharper legality test for ATKN, CSTT and
    /// CSTF"). Implies running [`crate::pointsto::PointsTo`] during IPA.
    pub pointsto_relax: bool,
    /// SMAL threshold *A*: an allocation site with a constant element
    /// count `<= smal_threshold` invalidates the type. The paper sets
    /// this to 1 ("arrays of size 1 — single objects").
    pub smal_threshold: i64,
}

impl Default for LegalityConfig {
    fn default() -> Self {
        LegalityConfig {
            relax_cast_addr: false,
            pointsto_relax: false,
            smal_threshold: 1,
        }
    }
}

/// The IPA verdict for one record type.
#[derive(Debug, Clone)]
pub struct TypeVerdict {
    /// The type.
    pub record: RecordId,
    /// Merged observations from all units.
    pub attrs: TypeObservations,
    /// The set of tests that invalidate the type (after config).
    pub invalid: BTreeSet<LegalityTest>,
}

impl TypeVerdict {
    /// Whether the type passed all legality tests.
    pub fn legal(&self) -> bool {
        self.invalid.is_empty()
    }
}

/// Whole-program legality result.
#[derive(Debug, Clone)]
pub struct IpaResult {
    /// One verdict per record type, indexed by `RecordId`.
    pub verdicts: Vec<TypeVerdict>,
}

impl IpaResult {
    /// Verdict for a type.
    pub fn verdict(&self, r: RecordId) -> &TypeVerdict {
        &self.verdicts[r.0 as usize]
    }

    /// Total number of record types.
    pub fn num_types(&self) -> usize {
        self.verdicts.len()
    }

    /// Number of types passing all legality tests.
    pub fn num_legal(&self) -> usize {
        self.verdicts.iter().filter(|v| v.legal()).count()
    }

    /// Ids of legal types.
    pub fn legal_types(&self) -> Vec<RecordId> {
        self.verdicts
            .iter()
            .filter(|v| v.legal())
            .map(|v| v.record)
            .collect()
    }
}

/// Aggregate FE summaries into whole-program verdicts.
pub fn aggregate(prog: &Program, summaries: &[LegalitySummary], cfg: &LegalityConfig) -> IpaResult {
    // The sharper points-to test is computed once for the whole program.
    let pointsto = cfg
        .pointsto_relax
        .then(|| crate::pointsto::PointsTo::compute(prog));
    let mut verdicts = Vec::with_capacity(prog.types.num_records());
    for rid in prog.types.record_ids() {
        let mut attrs = TypeObservations::default();
        for s in summaries {
            if let Some(o) = s.types.get(&rid) {
                attrs.merge(o);
            }
        }

        let mut invalid: BTreeSet<LegalityTest> = BTreeSet::new();
        for t in attrs.violations.keys() {
            invalid.insert(*t);
        }

        // SMAL: any allocation site with a small constant count.
        if attrs
            .alloc_sites
            .iter()
            .any(|s| matches!(s.const_count, Some(c) if c <= cfg.smal_threshold))
        {
            invalid.insert(LegalityTest::Smal);
        }

        // Escape analysis: escaping to a function without a body in the
        // IPA scope invalidates the type. (LIBC escapes were already
        // flagged by the FE.)
        if attrs.escapes_to.iter().any(|f| !prog.func(*f).is_defined()) {
            invalid.insert(LegalityTest::Escape);
        }

        if cfg.relax_cast_addr {
            invalid.remove(&LegalityTest::Cstt);
            invalid.remove(&LegalityTest::Cstf);
            invalid.remove(&LegalityTest::Atkn);
        } else if let Some(pt) = &pointsto {
            // tolerate the cast/address tests only when no pointer derived
            // from this type's fields may reach two different fields
            if !pt.collapses(rid) {
                invalid.remove(&LegalityTest::Cstt);
                invalid.remove(&LegalityTest::Cstf);
                invalid.remove(&LegalityTest::Atkn);
            }
        }

        verdicts.push(TypeVerdict {
            record: rid,
            attrs,
            invalid,
        });
    }
    IpaResult { verdicts }
}

/// Convenience: FE over all units, then IPA aggregation.
pub fn analyze_program(prog: &Program, cfg: &LegalityConfig) -> IpaResult {
    let summaries = crate::legality::analyze_all_units(prog);
    aggregate(prog, &summaries, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_ir::parser::parse;

    const SRC: &str = r#"
record clean   { a: i64, b: i64 }
record casty   { a: i64 }
record escaped { a: i64 }
record single  { a: i64 }
extern func mystery(ptr<escaped>) -> void
func main() -> i64 {
bb0:
  r0 = alloc clean, 100
  r1 = fieldaddr r0, clean.a
  store 1, r1 : i64
  r2 = alloc casty, 100
  r3 = cast r2 : ptr<casty> -> i64
  r4 = alloc escaped, 100
  call mystery(r4)
  r5 = alloc single, 1
  ret 0
}
"#;

    #[test]
    fn verdicts_cover_all_tests() {
        let p = parse(SRC).expect("parse");
        let res = analyze_program(&p, &LegalityConfig::default());
        assert_eq!(res.num_types(), 4);
        assert_eq!(res.num_legal(), 1);
        let get = |n: &str| res.verdict(p.types.record_by_name(n).expect("record"));
        assert!(get("clean").legal());
        assert!(get("casty").invalid.contains(&LegalityTest::Cstf));
        assert!(get("escaped").invalid.contains(&LegalityTest::Escape));
        assert!(get("single").invalid.contains(&LegalityTest::Smal));
    }

    #[test]
    fn relaxation_tolerates_cast_tests() {
        let p = parse(SRC).expect("parse");
        let cfg = LegalityConfig {
            relax_cast_addr: true,
            ..Default::default()
        };
        let res = analyze_program(&p, &cfg);
        let casty = p.types.record_by_name("casty").expect("record");
        assert!(res.verdict(casty).legal());
        // but escape and SMAL remain
        let escaped = p.types.record_by_name("escaped").expect("record");
        assert!(!res.verdict(escaped).legal());
        assert_eq!(res.num_legal(), 2);
    }

    #[test]
    fn smal_threshold_configurable() {
        let src = r#"
record node { a: i64 }
func main() -> i64 {
bb0:
  r0 = alloc node, 4
  ret 0
}
"#;
        let p = parse(src).expect("parse");
        let res = analyze_program(&p, &LegalityConfig::default());
        let node = p.types.record_by_name("node").expect("record");
        assert!(res.verdict(node).legal());
        let res = analyze_program(
            &p,
            &LegalityConfig {
                smal_threshold: 10,
                ..Default::default()
            },
        );
        assert!(res.verdict(node).invalid.contains(&LegalityTest::Smal));
    }

    #[test]
    fn escape_to_defined_function_is_fine() {
        let src = r#"
record node { a: i64 }
func helper(ptr<node>) -> void {
bb0:
  ret
}
func main() -> i64 {
bb0:
  r0 = alloc node, 10
  call helper(r0)
  ret 0
}
"#;
        let p = parse(src).expect("parse");
        let res = analyze_program(&p, &LegalityConfig::default());
        let node = p.types.record_by_name("node").expect("record");
        assert!(res.verdict(node).legal(), "{:?}", res.verdict(node).invalid);
    }

    #[test]
    fn pointsto_relax_is_selective() {
        // `safe`'s exposed field address is only copied (it can reach one
        // field cell); `unsafe_t` does pointer arithmetic on a field
        // address, which may reach any field of the object.
        let src = r#"
record safe { a: i64, b: i64 }
record unsafe_t { a: i64, b: i64 }
func main() -> i64 {
bb0:
  r0 = alloc safe, 10
  r1 = fieldaddr r0, safe.a
  r2 = r1
  store r2, r1 : ptr<i64>
  r3 = load r2 : i64
  r4 = alloc unsafe_t, 10
  r5 = fieldaddr r4, unsafe_t.a
  r7 = add r5, 8
  r8 = load r7 : i64
  ret r8
}
"#;
        let p = parse(src).expect("parse");
        // both trip ATKN under the strict analysis
        let strict = analyze_program(&p, &LegalityConfig::default());
        assert_eq!(strict.num_legal(), 0);
        // blanket relaxation accepts both
        let blanket = analyze_program(
            &p,
            &LegalityConfig {
                relax_cast_addr: true,
                ..Default::default()
            },
        );
        assert_eq!(blanket.num_legal(), 2);
        // the points-to-justified mode accepts only the safe one
        let justified = analyze_program(
            &p,
            &LegalityConfig {
                pointsto_relax: true,
                ..Default::default()
            },
        );
        let safe = p.types.record_by_name("safe").expect("safe");
        let uns = p.types.record_by_name("unsafe_t").expect("unsafe_t");
        assert!(
            justified.verdict(safe).legal(),
            "safe: {:?}",
            justified.verdict(safe).invalid
        );
        assert!(!justified.verdict(uns).legal());
    }

    #[test]
    fn multi_unit_merge() {
        let src = r#"
record node { a: i64 }
func f1() -> i64 {
bb0:
  r0 = alloc node, 10
  ret 0
}
func f2() -> i64 {
bb0:
  r0 = alloc node, 20
  r1 = cast r0 : ptr<node> -> i64
  ret r1
}
"#;
        let mut p = parse(src).expect("parse");
        p.add_unit("u2");
        let f2 = p.func_by_name("f2").expect("f2");
        p.func_mut(f2).unit = 1;
        let res = analyze_program(&p, &LegalityConfig::default());
        let node = p.types.record_by_name("node").expect("record");
        let v = res.verdict(node);
        assert!(v.invalid.contains(&LegalityTest::Cstf));
        assert_eq!(v.attrs.alloc_sites.len(), 2);
    }
}
