//! # slo-analysis — the paper's compiler analyses
//!
//! Implements the analysis half of *"Practical Structure Layout
//! Optimization and Advice"* (CGO 2006) over the `slo-ir` substrate:
//!
//! * **Legality** ([`legality`], [`ipa`]): the FE's single-pass tests
//!   (CSTT, CSTF, ATKN, LIBC, IND, SMAL, MSET, NEST), attribute
//!   collection, and IPA aggregation with type-escape analysis plus the
//!   relaxed-analysis mode (Table 1's "Relax" column).
//! * **Profitability** ([`affinity`], [`freq`], [`ispbo`], [`schemes`]):
//!   loop-level affinity groups, affinity graphs, field hotness and
//!   read/write counts, under the full family of weighting schemes
//!   (PBO, PPBO, SPBO, ISPBO, ISPBO.NO, ISPBO.W).
//! * **D-cache attribution** ([`dcache`]): PMU samples mapped back to
//!   structure fields (DMISS / DLAT / DMISS.NO).
//! * **Correlation** ([`correlate`]): the `r` / `r'` quality metric of
//!   Table 2.
//! * **Points-to** ([`pointsto`]): a simple field-sensitive points-to
//!   analysis that justifies the relaxed legality mode (§2.2's sharper
//!   ATKN/CSTT/CSTF tests).

#![warn(missing_docs)]

pub mod affinity;
pub mod correlate;
pub mod dcache;
pub mod fingerprint;
pub mod freq;
pub mod ipa;
pub mod ispbo;
pub mod legality;
pub mod pointsto;
pub mod schemes;
pub mod util;

pub use affinity::{AffinityGraph, AffinityGroup, FieldCounts};
pub use correlate::{argmax, correlation, correlation_excluding};
pub use dcache::{attribute_samples, attribute_strides, FieldDcache};
pub use fingerprint::{fold_legality_config, fold_scheme, ipa_fingerprint};
pub use freq::{estimate_static, from_profile, BranchProbs, FuncFreq};
pub use ipa::{analyze_program, IpaResult, LegalityConfig, TypeVerdict};
pub use ispbo::{interprocedural_freqs, IspboConfig, IspboResult};
pub use legality::{AllocSite, LegalitySummary, LegalityTest, TypeObservations};
pub use schemes::{affinity_graphs, block_frequencies, relative_hotness, WeightScheme};
