//! Intra-procedural block/edge frequency estimation.
//!
//! Two sources, mirroring the paper's §2.3:
//!
//! * **Profile-based** ([`from_profile`]): block counts reconstructed from
//!   the feedback file's edge counts (the PBO use phase).
//! * **Static** ([`estimate_static`]): source-construct probability
//!   heuristics after Wu & Larus — a loop back edge executes with
//!   probability 0.88 (0.93 for floating-point loops: "a loop is assumed
//!   to execute about 8 times on average"), if-then-else branches split
//!   50/50 — propagated through the loop nest with cyclic probabilities.

use slo_ir::loops::LoopForest;
use slo_ir::{BlockId, FuncId, Instr, Operand, Program, Type};
use slo_vm::Feedback;
use std::collections::HashMap;

/// Branch probability heuristics (the paper's §2.3 / ISPBO.W knobs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchProbs {
    /// Probability of staying in a floating-point loop.
    pub fp_loop_back: f64,
    /// Probability of staying in any other loop.
    pub int_loop_back: f64,
}

impl Default for BranchProbs {
    fn default() -> Self {
        BranchProbs {
            fp_loop_back: 0.93,
            int_loop_back: 0.88,
        }
    }
}

impl BranchProbs {
    /// The paper's ISPBO.W variant: raised back-edge probabilities
    /// (0.93 → 0.98 for FP loops, 0.88 → 0.95 otherwise).
    pub fn raised() -> Self {
        BranchProbs {
            fp_loop_back: 0.98,
            int_loop_back: 0.95,
        }
    }
}

/// Block and edge frequencies for one function.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FuncFreq {
    /// Frequency per block (indexed by block id).
    pub block: Vec<f64>,
    /// Frequency per CFG edge.
    pub edge: HashMap<(u32, u32), f64>,
    /// Frequency of function entry.
    pub entry: f64,
}

impl FuncFreq {
    /// Frequency of block `b` (0.0 if out of range).
    pub fn of(&self, b: BlockId) -> f64 {
        self.block.get(b.index()).copied().unwrap_or(0.0)
    }
}

/// Reconstruct frequencies from a profile (absolute counts).
/// Returns `None` if the feedback has no data for the function.
pub fn from_profile(prog: &Program, fid: FuncId, fb: &Feedback) -> Option<FuncFreq> {
    let f = prog.func(fid);
    let fp = fb.func(&f.name)?;
    let n = f.blocks.len();
    let mut ff = FuncFreq {
        block: vec![0.0; n],
        edge: HashMap::new(),
        entry: fp.entry_count as f64,
    };
    for ((a, b), c) in &fp.edges {
        if *a == *b {
            continue; // call-event pseudo edges
        }
        *ff.edge.entry((*a, *b)).or_insert(0.0) += *c as f64;
    }
    for b in 0..n as u32 {
        ff.block[b as usize] = fp.block_count(b) as f64;
    }
    // block 0 counts calls only via entry_count
    ff.block[0] = fp.entry_count as f64
        + ff.edge
            .iter()
            .filter(|((_, to), _)| *to == 0)
            .map(|(_, c)| *c)
            .sum::<f64>();
    Some(ff)
}

/// Whether a loop's body references floating-point data (the heuristic
/// used to pick the back-edge probability).
fn loop_is_fp(prog: &Program, fid: FuncId, blocks: &[BlockId]) -> bool {
    let f = prog.func(fid);
    for &b in blocks {
        for ins in &f.block(b).instrs {
            let fp = match ins {
                Instr::Load { ty, .. } | Instr::Store { ty, .. } => {
                    matches!(prog.types.get(*ty), Type::Scalar(k) if k.is_float())
                }
                Instr::Assign { src, .. } => {
                    matches!(src, Operand::Const(slo_ir::Const::Float(_)))
                }
                Instr::Bin { lhs, rhs, .. } => {
                    matches!(lhs, Operand::Const(slo_ir::Const::Float(_)))
                        || matches!(rhs, Operand::Const(slo_ir::Const::Float(_)))
                }
                _ => false,
            };
            if fp {
                return true;
            }
        }
    }
    false
}

/// Estimate frequencies statically (entry frequency 1.0).
pub fn estimate_static(prog: &Program, fid: FuncId, probs: &BranchProbs) -> FuncFreq {
    let f = prog.func(fid);
    let n = f.blocks.len();
    if n == 0 {
        return FuncFreq::default();
    }
    let lf = LoopForest::compute(f);
    let dt = slo_ir::dom::DomTree::compute(f);

    // --- per-edge probabilities ---------------------------------------
    let mut prob: HashMap<(u32, u32), f64> = HashMap::new();
    for bid in f.block_ids() {
        let succs = f.block(bid).successors();
        match succs.len() {
            0 => {}
            1 => {
                prob.insert((bid.0, succs[0].0), 1.0);
            }
            _ => {
                // loop heuristic: prefer the successor that stays in the
                // innermost loop containing this block.
                let in_loop = |s: BlockId| -> bool {
                    match lf.innermost(bid) {
                        Some(l) => lf.get(l).blocks.contains(&s),
                        None => false,
                    }
                };
                let stay0 = in_loop(succs[0]);
                let stay1 = in_loop(succs[1]);
                if stay0 != stay1 {
                    let lid = lf.innermost(bid).expect("block is in a loop");
                    let p = if loop_is_fp(prog, fid, &lf.get(lid).blocks) {
                        probs.fp_loop_back
                    } else {
                        probs.int_loop_back
                    };
                    let (stay, exit) = if stay0 {
                        (succs[0], succs[1])
                    } else {
                        (succs[1], succs[0])
                    };
                    prob.insert((bid.0, stay.0), p);
                    prob.insert((bid.0, exit.0), 1.0 - p);
                } else {
                    for s in &succs {
                        prob.insert((bid.0, s.0), 1.0 / succs.len() as f64);
                    }
                }
            }
        }
    }

    // --- propagation with cyclic probabilities (Wu–Larus) --------------
    let mut cyclic: HashMap<u32, f64> = HashMap::new();
    let mut ff = FuncFreq {
        block: vec![0.0; n],
        edge: HashMap::new(),
        entry: 1.0,
    };

    // is (a, b) a back edge? b must be a loop header whose loop contains a.
    let is_back_edge = |a: BlockId, b: BlockId| -> bool {
        lf.iter()
            .any(|(_, l)| l.header == b && l.blocks.contains(&a))
    };

    // process loops innermost-first, then the whole function
    let mut loop_order: Vec<_> = lf.iter().map(|(id, l)| (id, l.depth)).collect();
    loop_order.sort_by_key(|(_, d)| std::cmp::Reverse(*d));

    let rpo: Vec<BlockId> = dt.rpo().to_vec();

    let run_pass = |head: BlockId,
                    region: Option<&[BlockId]>,
                    cyclic: &mut HashMap<u32, f64>,
                    ff: &mut FuncFreq| {
        let in_region = |b: BlockId| region.map(|r| r.contains(&b)).unwrap_or(true);
        let mut bfreq: HashMap<u32, f64> = HashMap::new();
        let mut efreq: HashMap<(u32, u32), f64> = HashMap::new();
        let mut cp_head = 0.0f64;
        for &b in &rpo {
            if !in_region(b) {
                continue;
            }
            let mut bf = if b == head {
                1.0
            } else {
                // sum non-back in-edges from inside the region
                let preds = prog.func(fid).predecessors();
                preds[b.index()]
                    .iter()
                    .filter(|p| in_region(**p) && !is_back_edge(**p, b))
                    .map(|p| efreq.get(&(p.0, b.0)).copied().unwrap_or(0.0))
                    .sum()
            };
            // inner loop head: amplify by its cyclic probability
            if b != head {
                if let Some(cp) = cyclic.get(&b.0) {
                    bf /= 1.0 - cp.min(0.98);
                }
            }
            bfreq.insert(b.0, bf);
            for s in prog.func(fid).block(b).successors() {
                let p = prob.get(&(b.0, s.0)).copied().unwrap_or(0.0);
                let ef = p * bf;
                efreq.insert((b.0, s.0), ef);
                if s == head && in_region(b) {
                    cp_head += ef;
                }
            }
        }
        if region.is_some() {
            cyclic.insert(head.0, cp_head);
        } else {
            // final pass: install absolute frequencies
            for (b, v) in bfreq {
                ff.block[b as usize] = v;
            }
            ff.edge = efreq;
        }
    };

    for (lid, _) in loop_order {
        let l = lf.get(lid);
        run_pass(l.header, Some(&l.blocks), &mut cyclic, &mut ff);
    }
    // final pass over the whole function; the entry also benefits from its
    // own cyclic probability if it happens to be a loop header.
    {
        let entry = BlockId(0);
        let in_region = |_: BlockId| true;
        let mut efreq: HashMap<(u32, u32), f64> = HashMap::new();
        let preds = prog.func(fid).predecessors();
        for &b in &rpo {
            let mut bf = if b == entry {
                1.0
            } else {
                preds[b.index()]
                    .iter()
                    .filter(|p| in_region(**p) && !is_back_edge(**p, b))
                    .map(|p| efreq.get(&(p.0, b.0)).copied().unwrap_or(0.0))
                    .sum()
            };
            if let Some(cp) = cyclic.get(&b.0) {
                bf /= 1.0 - cp.min(0.98);
            }
            ff.block[b.index()] = bf;
            for s in prog.func(fid).block(b).successors() {
                let p = prob.get(&(b.0, s.0)).copied().unwrap_or(0.0);
                efreq.insert((b.0, s.0), p * bf);
            }
        }
        ff.edge = efreq;
    }
    ff
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_ir::parser::parse;
    use slo_vm::{run, VmOptions};

    fn freq_of(src: &str) -> (slo_ir::Program, FuncFreq) {
        let p = parse(src).expect("parse");
        let main = p.main().expect("main");
        let ff = estimate_static(&p, main, &BranchProbs::default());
        (p, ff)
    }

    #[test]
    fn straight_line_is_uniform() {
        let (_, ff) = freq_of("func main() -> i64 {\nbb0:\n  ret 0\n}\n");
        assert_eq!(ff.block, vec![1.0]);
    }

    #[test]
    fn single_int_loop_runs_about_8x() {
        // builder count_loop shape: bb0 -> bb1(head) -> {bb2(body), bb3}
        let src = r#"
func main() -> i64 {
bb0:
  r0 = 0
  jump bb1
bb1:
  r1 = cmp.lt r0, 100
  br r1, bb2, bb3
bb2:
  r0 = add r0, 1
  jump bb1
bb3:
  ret r0
}
"#;
        let (_, ff) = freq_of(src);
        // head freq = 1 / (1 - 0.88) = 8.33
        assert!(
            (ff.block[1] - 1.0 / 0.12).abs() < 1e-6,
            "head {}",
            ff.block[1]
        );
        assert!(
            (ff.block[2] - 0.88 / 0.12).abs() < 1e-6,
            "body {}",
            ff.block[2]
        );
        assert!((ff.block[3] - 1.0).abs() < 1e-6, "exit {}", ff.block[3]);
    }

    #[test]
    fn fp_loop_uses_higher_prob() {
        let src = r#"
func main() -> f64 {
bb0:
  r0 = 0
  r2 = alloc f64, 8
  jump bb1
bb1:
  r1 = cmp.lt r0, 100
  br r1, bb2, bb3
bb2:
  r3 = load r2 : f64
  r0 = add r0, 1
  jump bb1
bb3:
  ret r0
}
"#;
        let (_, ff) = freq_of(src);
        // head freq = 1 / (1 - 0.93) ≈ 14.3
        assert!(
            (ff.block[1] - 1.0 / 0.07).abs() < 1e-6,
            "head {}",
            ff.block[1]
        );
    }

    #[test]
    fn nested_loops_multiply() {
        let src = r#"
func main() -> i64 {
bb0:
  r0 = 0
  jump bb1
bb1:
  r1 = cmp.lt r0, 10
  br r1, bb2, bb6
bb2:
  r2 = 0
  jump bb3
bb3:
  r3 = cmp.lt r2, 10
  br r3, bb4, bb5
bb4:
  r2 = add r2, 1
  jump bb3
bb5:
  r0 = add r0, 1
  jump bb1
bb6:
  ret r0
}
"#;
        let (_, ff) = freq_of(src);
        // outer head ~8.3, inner head ~8.3 per outer iteration => ~61
        let outer_body = ff.block[2];
        let inner_head = ff.block[3];
        assert!(outer_body > 7.0 && outer_body < 7.5);
        assert!(
            (inner_head - outer_body / 0.12).abs() < 1e-6,
            "inner head {inner_head} vs outer body {outer_body}"
        );
        assert!(inner_head > 50.0);
    }

    #[test]
    fn if_then_else_splits_evenly() {
        let src = r#"
func main() -> i64 {
bb0:
  r0 = 1
  br r0, bb1, bb2
bb1:
  jump bb3
bb2:
  jump bb3
bb3:
  ret 0
}
"#;
        let (_, ff) = freq_of(src);
        assert!((ff.block[1] - 0.5).abs() < 1e-9);
        assert!((ff.block[2] - 0.5).abs() < 1e-9);
        assert!((ff.block[3] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn profile_reconstruction_matches_execution() {
        let src = r#"
func main() -> i64 {
bb0:
  r0 = 0
  jump bb1
bb1:
  r1 = cmp.lt r0, 50
  br r1, bb2, bb3
bb2:
  r0 = add r0, 1
  jump bb1
bb3:
  ret r0
}
"#;
        let p = parse(src).expect("parse");
        let out = run(&p, &VmOptions::profiling()).expect("run");
        let main = p.main().expect("main");
        let ff = from_profile(&p, main, &out.feedback).expect("profile present");
        assert_eq!(ff.block[0], 1.0);
        assert_eq!(ff.block[1], 51.0);
        assert_eq!(ff.block[2], 50.0);
        assert_eq!(ff.block[3], 1.0);
        assert_eq!(ff.edge[&(2, 1)], 50.0);
    }

    #[test]
    fn missing_profile_is_none() {
        let p = parse("func main() -> i64 {\nbb0:\n  ret 0\n}\n").expect("parse");
        let main = p.main().expect("main");
        assert!(from_profile(&p, main, &Feedback::new(1)).is_none());
    }

    #[test]
    fn raised_probs_change_estimates() {
        let src = r#"
func main() -> i64 {
bb0:
  r0 = 0
  jump bb1
bb1:
  r1 = cmp.lt r0, 100
  br r1, bb2, bb3
bb2:
  r0 = add r0, 1
  jump bb1
bb3:
  ret r0
}
"#;
        let p = parse(src).expect("parse");
        let main = p.main().expect("main");
        let low = estimate_static(&p, main, &BranchProbs::default());
        let high = estimate_static(&p, main, &BranchProbs::raised());
        assert!(high.block[2] > low.block[2] * 2.0);
    }
}
