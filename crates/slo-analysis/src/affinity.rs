//! Affinity groups, affinity graphs, field hotness and read/write counts —
//! the paper's §2.3 profitability analysis.
//!
//! * Two fields are **affine** when they are accessed close to each other;
//!   the granularity of "closeness" is the loop level: all fields of a type
//!   referenced inside the blocks of one loop (excluding nested loops,
//!   which form their own groups) make one weighted **affinity group**.
//!   Field references in remaining straight-line code form another group
//!   weighted with the routine entry frequency.
//! * Group weight = the incoming edge count of the loop header under the
//!   chosen weighting scheme (PBO / SPBO / ISPBO / ...).
//! * Groups with identical field sets merge by adding weights (these are
//!   the annotations stored in the IELF files); IPA aggregates them into
//!   one **affinity graph** per type.
//! * **Hotness** of a field is the total weight of groups containing it
//!   (the self-edge of the affinity graph).
//! * **Read/write counts** are collected statement-by-statement using
//!   block frequencies as counts.

use crate::freq::FuncFreq;
use crate::util::{DefUse, UseRole};
use slo_ir::loops::LoopForest;
use slo_ir::{BlockId, FuncId, Instr, Program, RecordId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A weighted set of fields of one record type accessed "together".
#[derive(Debug, Clone, PartialEq)]
pub struct AffinityGroup {
    /// The record type.
    pub record: RecordId,
    /// Field indices in the group.
    pub fields: BTreeSet<u32>,
    /// Accumulated weight.
    pub weight: f64,
}

/// Read/write counts for one field.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FieldCounts {
    /// Estimated dynamic reads.
    pub reads: f64,
    /// Estimated dynamic writes.
    pub writes: f64,
}

/// The IPA affinity graph of one record type.
///
/// Nodes are fields; edge `(i, j)` (with `i < j`) carries the summed weight
/// of groups containing both; the self edge `(i, i)` carries the summed
/// weight of all groups containing `i` — the field's hotness.
///
/// # Examples
///
/// ```
/// use slo_analysis::AffinityGraph;
/// use slo_ir::RecordId;
/// use std::collections::BTreeSet;
///
/// let mut g = AffinityGraph::new(RecordId(0), 3);
/// let hot_pair: BTreeSet<u32> = [0, 1].into_iter().collect();
/// g.add_group(&hot_pair, 90.0);
/// let cold: BTreeSet<u32> = [2].into_iter().collect();
/// g.add_group(&cold, 10.0);
/// assert_eq!(g.relative_hotness(), vec![100.0, 100.0, 10.0 / 90.0 * 100.0]);
/// assert_eq!(g.edge(0, 1), 90.0);
/// ```
#[derive(Debug, Clone)]
pub struct AffinityGraph {
    /// The record type.
    pub record: RecordId,
    /// Number of fields of the record.
    pub nfields: usize,
    edges: BTreeMap<(u32, u32), f64>,
}

impl AffinityGraph {
    /// Empty graph for a record with `nfields` fields.
    pub fn new(record: RecordId, nfields: usize) -> Self {
        AffinityGraph {
            record,
            nfields,
            edges: BTreeMap::new(),
        }
    }

    /// Fold one affinity group into the graph.
    pub fn add_group(&mut self, fields: &BTreeSet<u32>, weight: f64) {
        let fs: Vec<u32> = fields.iter().copied().collect();
        for (i, &a) in fs.iter().enumerate() {
            *self.edges.entry((a, a)).or_insert(0.0) += weight;
            for &b in &fs[i + 1..] {
                *self.edges.entry((a, b)).or_insert(0.0) += weight;
            }
        }
    }

    /// The affinity weight between two (distinct or equal) fields.
    pub fn edge(&self, a: u32, b: u32) -> f64 {
        let k = if a <= b { (a, b) } else { (b, a) };
        self.edges.get(&k).copied().unwrap_or(0.0)
    }

    /// Hotness of a field: total weight of groups containing it.
    pub fn hotness(&self, field: u32) -> f64 {
        self.edge(field, field)
    }

    /// Hotness of every field.
    pub fn hotness_vec(&self) -> Vec<f64> {
        (0..self.nfields as u32).map(|f| self.hotness(f)).collect()
    }

    /// Hotness of the whole type (sum over fields) — used to sort types
    /// in the advisory report.
    pub fn type_hotness(&self) -> f64 {
        self.hotness_vec().iter().sum()
    }

    /// Relative hotness in percent of the hottest field (the paper's
    /// Table 2 presentation). All-zero input yields all-zero output.
    pub fn relative_hotness(&self) -> Vec<f64> {
        let h = self.hotness_vec();
        let max = h.iter().cloned().fold(0.0f64, f64::max);
        if max == 0.0 {
            return h;
        }
        h.iter().map(|v| v / max * 100.0).collect()
    }

    /// Iterate over every raw edge `((a, b), weight)` with `a <= b`,
    /// self edges (field hotness) included — the full graph state, used
    /// by the persistent analysis store's serializer.
    pub fn edges(&self) -> impl Iterator<Item = ((u32, u32), f64)> + '_ {
        self.edges.iter().map(|(k, v)| (*k, *v))
    }

    /// Rebuild a graph from raw edge entries as produced by
    /// [`AffinityGraph::edges`] (`a <= b`; `(i, i)` carries field `i`'s
    /// hotness). The inverse of [`AffinityGraph::edges`]: weights are
    /// installed verbatim, not re-accumulated like [`AffinityGraph::add_group`].
    pub fn from_edges(
        record: RecordId,
        nfields: usize,
        edges: impl IntoIterator<Item = ((u32, u32), f64)>,
    ) -> Self {
        AffinityGraph {
            record,
            nfields,
            edges: edges.into_iter().collect(),
        }
    }

    /// Iterate over non-self edges `((a, b), weight)` with `a < b`.
    pub fn pair_edges(&self) -> impl Iterator<Item = ((u32, u32), f64)> + '_ {
        self.edges
            .iter()
            .filter(|((a, b), _)| a != b)
            .map(|(k, v)| (*k, *v))
    }

    /// Affinity of `a` to `b` relative to `a`'s strongest edge (incl. its
    /// self edge), in percent — the presentation used in Figure 2.
    pub fn relative_affinity(&self, a: u32, b: u32) -> f64 {
        let max = (0..self.nfields as u32)
            .map(|x| self.edge(a, x))
            .fold(0.0f64, f64::max);
        if max == 0.0 {
            0.0
        } else {
            self.edge(a, b) / max * 100.0
        }
    }
}

/// Collect the affinity groups of one function under the given block
/// frequencies (the FE side; groups with identical field sets are merged).
pub fn collect_groups(prog: &Program, fid: FuncId, ff: &FuncFreq) -> Vec<AffinityGroup> {
    let f = prog.func(fid);
    let lf = LoopForest::compute(f);

    // bucket: (record, loop-or-straightline) -> field set
    let mut per_region: HashMap<(RecordId, Option<u32>), BTreeSet<u32>> = HashMap::new();
    let mut region_weight: HashMap<Option<u32>, f64> = HashMap::new();

    for bid in f.block_ids() {
        let region = lf.innermost(bid).map(|l| l.0);
        let w = match region {
            Some(l) => ff.of(lf.get(slo_ir::loops::LoopId(l)).header),
            None => ff.of(BlockId(0)),
        };
        region_weight.insert(region, w);
        for ins in &f.block(bid).instrs {
            if let Instr::FieldAddr { record, field, .. } = ins {
                per_region
                    .entry((*record, region))
                    .or_default()
                    .insert(*field);
            }
        }
    }

    // merge identical (record, field-set) groups by adding weights
    let mut merged: BTreeMap<(RecordId, Vec<u32>), f64> = BTreeMap::new();
    for ((rec, region), fields) in per_region {
        let key: Vec<u32> = fields.iter().copied().collect();
        let w = region_weight.get(&region).copied().unwrap_or(0.0);
        *merged.entry((rec, key)).or_insert(0.0) += w;
    }

    merged
        .into_iter()
        .map(|((record, fields), weight)| AffinityGroup {
            record,
            fields: fields.into_iter().collect(),
            weight,
        })
        .collect()
}

/// Collect per-field read/write counts of one function.
pub fn collect_field_counts(
    prog: &Program,
    fid: FuncId,
    ff: &FuncFreq,
) -> HashMap<(RecordId, u32), FieldCounts> {
    let du = DefUse::build(prog, fid);
    let mut out: HashMap<(RecordId, u32), FieldCounts> = HashMap::new();
    for (_, ins) in prog.instrs_of(fid) {
        if let Instr::FieldAddr {
            dst, record, field, ..
        } = ins
        {
            let c = out.entry((*record, *field)).or_default();
            for u in &du.uses[dst.0 as usize] {
                let w = ff.of(u.at.block);
                match u.role {
                    UseRole::LoadAddr => c.reads += w,
                    UseRole::StoreAddr => c.writes += w,
                    _ => {}
                }
            }
        }
    }
    out
}

/// IPA aggregation: affinity graphs for every record type over the whole
/// program under the given per-function frequencies.
pub fn build_affinity_graphs(
    prog: &Program,
    freqs: &HashMap<FuncId, FuncFreq>,
) -> HashMap<RecordId, AffinityGraph> {
    let mut graphs: HashMap<RecordId, AffinityGraph> = HashMap::new();
    for rid in prog.types.record_ids() {
        graphs.insert(
            rid,
            AffinityGraph::new(rid, prog.types.record(rid).fields.len()),
        );
    }
    let empty = FuncFreq::default();
    for fid in prog.func_ids() {
        if !prog.func(fid).is_defined() {
            continue;
        }
        let ff = freqs.get(&fid).unwrap_or(&empty);
        for g in collect_groups(prog, fid, ff) {
            graphs
                .get_mut(&g.record)
                .expect("graph exists for every record")
                .add_group(&g.fields, g.weight);
        }
    }
    graphs
}

/// IPA aggregation of read/write counts over the whole program.
pub fn build_field_counts(
    prog: &Program,
    freqs: &HashMap<FuncId, FuncFreq>,
) -> HashMap<(RecordId, u32), FieldCounts> {
    let mut out: HashMap<(RecordId, u32), FieldCounts> = HashMap::new();
    let empty = FuncFreq::default();
    for fid in prog.func_ids() {
        if !prog.func(fid).is_defined() {
            continue;
        }
        let ff = freqs.get(&fid).unwrap_or(&empty);
        for ((r, fld), c) in collect_field_counts(prog, fid, ff) {
            let dst = out.entry((r, fld)).or_default();
            dst.reads += c.reads;
            dst.writes += c.writes;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::{estimate_static, BranchProbs};
    use slo_ir::parser::parse;

    const SRC: &str = r#"
record node { hot1: i64, hot2: i64, cold: i64 }
func main() -> i64 {
bb0:
  r0 = alloc node, 100
  r9 = fieldaddr r0, node.cold
  store 0, r9 : i64
  r1 = 0
  jump bb1
bb1:
  r2 = cmp.lt r1, 100
  br r2, bb2, bb3
bb2:
  r3 = indexaddr r0, node, r1
  r4 = fieldaddr r3, node.hot1
  r5 = load r4 : i64
  r6 = fieldaddr r3, node.hot2
  store r5, r6 : i64
  r1 = add r1, 1
  jump bb1
bb3:
  ret 0
}
"#;

    fn graphs(src: &str) -> (slo_ir::Program, HashMap<RecordId, AffinityGraph>) {
        let p = parse(src).expect("parse");
        let mut freqs = HashMap::new();
        for fid in p.func_ids() {
            if p.func(fid).is_defined() {
                freqs.insert(fid, estimate_static(&p, fid, &BranchProbs::default()));
            }
        }
        let g = build_affinity_graphs(&p, &freqs);
        (p, g)
    }

    #[test]
    fn loop_fields_form_one_group() {
        let p = parse(SRC).expect("parse");
        let main = p.main().expect("main");
        let ff = estimate_static(&p, main, &BranchProbs::default());
        let groups = collect_groups(&p, main, &ff);
        // one group {hot1, hot2} from the loop, one {cold} straight-line
        assert_eq!(groups.len(), 2);
        let loop_group = groups
            .iter()
            .find(|g| g.fields.len() == 2)
            .expect("loop group");
        assert!(loop_group.fields.contains(&0) && loop_group.fields.contains(&1));
        let sl_group = groups
            .iter()
            .find(|g| g.fields.len() == 1)
            .expect("straight-line group");
        assert!(sl_group.fields.contains(&2));
        assert!(loop_group.weight > sl_group.weight * 5.0);
    }

    #[test]
    fn hotness_separates_hot_from_cold() {
        let (p, g) = graphs(SRC);
        let node = p.types.record_by_name("node").expect("node");
        let graph = &g[&node];
        let rel = graph.relative_hotness();
        assert!((rel[0] - 100.0).abs() < 1e-9);
        assert!((rel[1] - 100.0).abs() < 1e-9);
        assert!(rel[2] < 20.0, "cold field rel hotness {}", rel[2]);
        // pair edge exists between hot1 and hot2, none to cold
        assert!(graph.edge(0, 1) > 0.0);
        assert_eq!(graph.edge(0, 2), 0.0);
    }

    #[test]
    fn relative_affinity_percent() {
        let (p, g) = graphs(SRC);
        let node = p.types.record_by_name("node").expect("node");
        let graph = &g[&node];
        // hot1's strongest edge is its self edge == its pair edge with hot2
        assert!((graph.relative_affinity(0, 1) - 100.0).abs() < 1e-9);
        assert_eq!(graph.relative_affinity(0, 2), 0.0);
    }

    #[test]
    fn read_write_counts() {
        let p = parse(SRC).expect("parse");
        let main = p.main().expect("main");
        let ff = estimate_static(&p, main, &BranchProbs::default());
        let counts = collect_field_counts(&p, main, &ff);
        let node = p.types.record_by_name("node").expect("node");
        let hot1 = counts[&(node, 0)];
        let hot2 = counts[&(node, 1)];
        let cold = counts[&(node, 2)];
        assert!(hot1.reads > 5.0);
        assert_eq!(hot1.writes, 0.0);
        assert_eq!(hot2.reads, 0.0);
        assert!(hot2.writes > 5.0);
        assert!((cold.writes - 1.0).abs() < 1e-9);
        assert_eq!(cold.reads, 0.0);
    }

    #[test]
    fn identical_groups_merge() {
        // two sequential loops touching the same field set must merge
        let src = r#"
record r { a: i64, b: i64 }
func main() -> i64 {
bb0:
  r0 = alloc r, 10
  r1 = 0
  jump bb1
bb1:
  r2 = cmp.lt r1, 10
  br r2, bb2, bb3
bb2:
  r3 = fieldaddr r0, r.a
  r4 = load r3 : i64
  r1 = add r1, 1
  jump bb1
bb3:
  r5 = 0
  jump bb4
bb4:
  r6 = cmp.lt r5, 10
  br r6, bb5, bb6
bb5:
  r7 = fieldaddr r0, r.a
  r8 = load r7 : i64
  r5 = add r5, 1
  jump bb4
bb6:
  ret 0
}
"#;
        let p = parse(src).expect("parse");
        let main = p.main().expect("main");
        let ff = estimate_static(&p, main, &BranchProbs::default());
        let groups = collect_groups(&p, main, &ff);
        let a_groups: Vec<_> = groups.iter().filter(|g| g.fields.contains(&0)).collect();
        assert_eq!(a_groups.len(), 1, "identical groups must merge");
        // weight is the sum of both loop header frequencies (~8.3 each)
        assert!(a_groups[0].weight > 14.0);
    }

    #[test]
    fn nested_loops_form_separate_groups() {
        let src = r#"
record r { inner: i64, outer: i64 }
func main() -> i64 {
bb0:
  r0 = alloc r, 10
  r1 = 0
  jump bb1
bb1:
  r2 = cmp.lt r1, 10
  br r2, bb2, bb6
bb2:
  r3 = fieldaddr r0, r.outer
  r4 = load r3 : i64
  r5 = 0
  jump bb3
bb3:
  r6 = cmp.lt r5, 10
  br r6, bb4, bb5
bb4:
  r7 = fieldaddr r0, r.inner
  r8 = load r7 : i64
  r5 = add r5, 1
  jump bb3
bb5:
  r1 = add r1, 1
  jump bb1
bb6:
  ret 0
}
"#;
        let p = parse(src).expect("parse");
        let main = p.main().expect("main");
        let ff = estimate_static(&p, main, &BranchProbs::default());
        let groups = collect_groups(&p, main, &ff);
        assert_eq!(groups.len(), 2);
        let inner = groups
            .iter()
            .find(|g| g.fields.contains(&0))
            .expect("inner");
        let outer = groups
            .iter()
            .find(|g| g.fields.contains(&1))
            .expect("outer");
        assert!(
            inner.weight > outer.weight * 4.0,
            "inner loop must be hotter"
        );
    }

    #[test]
    fn empty_graph_for_untouched_type() {
        let (p, g) = graphs("record unused { x: i64 }\nfunc main() -> i64 {\nbb0:\n  ret 0\n}\n");
        let rid = p.types.record_by_name("unused").expect("unused");
        assert_eq!(g[&rid].type_hotness(), 0.0);
        assert_eq!(g[&rid].relative_hotness(), vec![0.0]);
    }
}
