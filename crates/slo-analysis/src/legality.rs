//! FE legality analysis — the paper's §2.2.
//!
//! A single cheap pass over each compilation unit's IR determines, per
//! record type, which of the legality tests fire and which attributes hold
//! (dynamically allocated, freed, pointer/variable/array occurrences,
//! escape tuples). The tests, verbatim from the paper:
//!
//! | Test | Condition |
//! |------|-----------|
//! | CSTT | a cast *to* the type (type-unsafe use) — casts of fresh `malloc`/`calloc` results are tolerated |
//! | CSTF | a cast *from* the type |
//! | ATKN | the address of a field is taken (tolerated when it only flows into a call argument) |
//! | LIBC | the type escapes to a marked standard-library function |
//! | IND  | the type escapes to an indirect call |
//! | SMAL | a dynamic allocation with a constant element count below the threshold *A* (applied at IPA) |
//! | MSET | the type is used in a memory-streaming op (`memcpy`/`memset`) |
//! | NEST | the type is nested by value inside another type |

use crate::util::{reg_types, DefUse, UseRole};
use slo_ir::{FuncId, FuncKind, Instr, InstrRef, Operand, Program, RecordId, Reg};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// The legality tests (plus the IPA-side escape result).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LegalityTest {
    /// Cast to the type.
    Cstt,
    /// Cast from the type.
    Cstf,
    /// Address of a field taken.
    Atkn,
    /// Escapes to a standard-library function.
    Libc,
    /// Escapes to an indirect call.
    Ind,
    /// Small constant allocation count.
    Smal,
    /// Used in memcpy/memset.
    Mset,
    /// Nested inside another type.
    Nest,
    /// Escapes outside the IPA scope (found during IPA aggregation).
    Escape,
}

impl LegalityTest {
    /// The paper's four-letter abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            LegalityTest::Cstt => "CSTT",
            LegalityTest::Cstf => "CSTF",
            LegalityTest::Atkn => "ATKN",
            LegalityTest::Libc => "LIBC",
            LegalityTest::Ind => "IND",
            LegalityTest::Smal => "SMAL",
            LegalityTest::Mset => "MSET",
            LegalityTest::Nest => "NEST",
            LegalityTest::Escape => "ESCP",
        }
    }
}

impl fmt::Display for LegalityTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// A dynamic allocation site of a record type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSite {
    /// Where the allocation happens.
    pub at: InstrRef,
    /// The element count if it is a compile-time constant.
    pub const_count: Option<i64>,
    /// Whether it is a calloc.
    pub zeroed: bool,
}

/// Everything the FE observed about one record type in one unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypeObservations {
    /// Violations with occurrence counts.
    pub violations: BTreeMap<LegalityTest, u32>,
    /// A global variable of the record type (by value) exists.
    pub has_global_var: bool,
    /// A global pointer to the type exists.
    pub has_global_ptr: bool,
    /// A local (register) pointer to the type exists.
    pub has_local_ptr: bool,
    /// A global array of the type exists.
    pub has_static_array: bool,
    /// The type is dynamically allocated.
    pub dyn_alloc: bool,
    /// The type is freed.
    pub freed: bool,
    /// The type is reallocated.
    pub realloced: bool,
    /// All dynamic allocation sites.
    pub alloc_sites: Vec<AllocSite>,
    /// Functions (within or outside scope) the type escapes to via call
    /// arguments — the paper's `<type, function>` tuples.
    pub escapes_to: BTreeSet<FuncId>,
}

impl TypeObservations {
    /// Record one violation occurrence.
    pub fn violate(&mut self, t: LegalityTest) {
        *self.violations.entry(t).or_insert(0) += 1;
    }

    /// Merge another unit's observations into this one.
    pub fn merge(&mut self, other: &TypeObservations) {
        for (t, c) in &other.violations {
            *self.violations.entry(*t).or_insert(0) += c;
        }
        self.has_global_var |= other.has_global_var;
        self.has_global_ptr |= other.has_global_ptr;
        self.has_local_ptr |= other.has_local_ptr;
        self.has_static_array |= other.has_static_array;
        self.dyn_alloc |= other.dyn_alloc;
        self.freed |= other.freed;
        self.realloced |= other.realloced;
        self.alloc_sites.extend(other.alloc_sites.iter().copied());
        self.escapes_to.extend(other.escapes_to.iter().copied());
    }
}

/// The FE's per-unit legality summary (stored "in the IELF file").
#[derive(Debug, Clone, Default)]
pub struct LegalitySummary {
    /// Index of the compilation unit this summary describes.
    pub unit: usize,
    /// Observations per record type.
    pub types: HashMap<RecordId, TypeObservations>,
}

impl LegalitySummary {
    /// Observations for a type (default-empty if never seen in this unit).
    pub fn of(&self, r: RecordId) -> TypeObservations {
        self.types.get(&r).cloned().unwrap_or_default()
    }
}

/// Run the FE legality pass over one compilation unit.
pub fn analyze_unit(prog: &Program, unit: usize) -> LegalitySummary {
    let mut sum = LegalitySummary {
        unit,
        ..Default::default()
    };

    // NEST is a whole-type-table property; attribute it in unit 0 only so
    // merging across units does not double count.
    if unit == 0 {
        for rid in prog.types.nested_records() {
            sum.types
                .entry(rid)
                .or_default()
                .violate(LegalityTest::Nest);
        }
    }

    // Global variable / pointer / array attributes (also unit 0 only).
    if unit == 0 {
        for gid in prog.global_ids() {
            let g = prog.global(gid);
            match prog.types.get(g.ty) {
                slo_ir::Type::Record(r) => {
                    sum.types.entry(*r).or_default().has_global_var = true;
                }
                slo_ir::Type::Ptr(_) => {
                    if let Some(r) = prog.types.involved_record(g.ty) {
                        sum.types.entry(r).or_default().has_global_ptr = true;
                    }
                }
                slo_ir::Type::Array(..) => {
                    if let Some(r) = prog.types.involved_record(g.ty) {
                        let o = sum.types.entry(r).or_default();
                        o.has_static_array = true;
                    }
                }
                _ => {}
            }
        }
    }

    for fid in prog.func_ids() {
        let f = prog.func(fid);
        if !f.is_defined() || f.unit != unit {
            continue;
        }
        analyze_function(prog, fid, &mut sum);
    }
    sum
}

/// Run the FE pass for every unit of the program.
pub fn analyze_all_units(prog: &Program) -> Vec<LegalitySummary> {
    (0..prog.units.len())
        .map(|u| analyze_unit(prog, u))
        .collect()
}

fn analyze_function(prog: &Program, fid: FuncId, sum: &mut LegalitySummary) {
    let du = DefUse::build(prog, fid);
    let tys = reg_types(prog, fid);

    // Registers that (transitively through Assign) hold fresh allocation
    // results — casts from these are the tolerated malloc() casts.
    let mut alloc_regs: HashSet<u32> = HashSet::new();
    for (_, ins) in prog.instrs_of(fid) {
        match ins {
            Instr::Alloc { dst, .. } | Instr::Realloc { dst, .. } => {
                alloc_regs.insert(dst.0);
            }
            Instr::Assign {
                dst,
                src: Operand::Reg(s),
            } if alloc_regs.contains(&s.0) => {
                alloc_regs.insert(dst.0);
            }
            _ => {}
        }
    }

    let rec_of_reg = |r: Reg| -> Option<RecordId> {
        tys[r.0 as usize].and_then(|t| prog.types.involved_record(t))
    };
    let rec_of_op = |op: Operand| -> Option<RecordId> {
        match op {
            Operand::Reg(r) => rec_of_reg(r),
            _ => None,
        }
    };

    // local pointer attribute: any register typed ptr<record>. Registers
    // cannot hold records by value, so a record-typed register (the
    // fallback when `ptr<rec>` was never interned) is also a pointer.
    for t in tys.iter().flatten() {
        let is_ptr_like =
            prog.types.is_ptr(*t) || matches!(prog.types.get(*t), slo_ir::Type::Record(_));
        if is_ptr_like {
            if let Some(r) = prog.types.involved_record(*t) {
                sum.types.entry(r).or_default().has_local_ptr = true;
            }
        }
    }

    for (at, ins) in prog.instrs_of(fid) {
        match ins {
            Instr::Cast { src, from, to, .. } => {
                let from_rec = prog.types.involved_record(*from);
                let to_rec = prog.types.involved_record(*to);
                if from_rec == to_rec {
                    continue;
                }
                if let Some(r) = from_rec {
                    sum.types.entry(r).or_default().violate(LegalityTest::Cstf);
                }
                if let Some(r) = to_rec {
                    let tolerated = matches!(src, Operand::Reg(s) if alloc_regs.contains(&s.0));
                    let o = sum.types.entry(r).or_default();
                    if tolerated {
                        // the malloc-result cast: this *is* the dynamic
                        // allocation of the target type
                        o.dyn_alloc = true;
                    } else {
                        o.violate(LegalityTest::Cstt);
                    }
                }
            }
            Instr::FieldAddr { dst, record, .. } => {
                // ATKN: the field address escapes beyond an immediate
                // load/store (call arguments are tolerated, as in the paper).
                let escaping = du.uses[dst.0 as usize].iter().any(|u| {
                    !matches!(
                        u.role,
                        UseRole::LoadAddr | UseRole::StoreAddr | UseRole::CallArg
                    )
                });
                if escaping {
                    sum.types
                        .entry(*record)
                        .or_default()
                        .violate(LegalityTest::Atkn);
                }
            }
            Instr::Alloc {
                elem,
                count,
                zeroed,
                ..
            } => {
                if let Some(r) = prog.types.involved_record(*elem) {
                    let o = sum.types.entry(r).or_default();
                    o.dyn_alloc = true;
                    o.alloc_sites.push(AllocSite {
                        at,
                        const_count: count.as_const_int(),
                        zeroed: *zeroed,
                    });
                }
            }
            Instr::Realloc { ptr, elem, .. } => {
                if let Some(r) = prog
                    .types
                    .involved_record(*elem)
                    .or_else(|| rec_of_op(*ptr))
                {
                    let o = sum.types.entry(r).or_default();
                    o.realloced = true;
                    o.dyn_alloc = true;
                }
            }
            Instr::Free { ptr } => {
                if let Some(r) = rec_of_op(*ptr) {
                    sum.types.entry(r).or_default().freed = true;
                }
            }
            Instr::Memcpy { dst, src, .. } => {
                for op in [dst, src] {
                    if let Some(r) = rec_of_op(*op) {
                        sum.types.entry(r).or_default().violate(LegalityTest::Mset);
                    }
                }
            }
            Instr::Memset { dst, .. } => {
                if let Some(r) = rec_of_op(*dst) {
                    sum.types.entry(r).or_default().violate(LegalityTest::Mset);
                }
            }
            Instr::Call { callee, args, .. } => {
                let cf = prog.func(*callee);
                for (i, a) in args.iter().enumerate() {
                    // prefer the declared parameter type; fall back to the
                    // inferred operand type (varargs-style declarations)
                    let rec = cf
                        .params
                        .get(i)
                        .and_then(|(_, t)| prog.types.involved_record(*t))
                        .or_else(|| rec_of_op(*a));
                    if let Some(r) = rec {
                        let o = sum.types.entry(r).or_default();
                        match cf.kind {
                            FuncKind::Libc => o.violate(LegalityTest::Libc),
                            _ => {
                                o.escapes_to.insert(*callee);
                            }
                        }
                    }
                }
            }
            Instr::CallIndirect { args, .. } => {
                for a in args {
                    if let Some(r) = rec_of_op(*a) {
                        sum.types.entry(r).or_default().violate(LegalityTest::Ind);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_ir::parser::parse;

    fn summary(src: &str) -> (slo_ir::Program, LegalitySummary) {
        let p = parse(src).expect("parse");
        let s = analyze_unit(&p, 0);
        (p, s)
    }

    fn rid(p: &slo_ir::Program, name: &str) -> RecordId {
        p.types.record_by_name(name).expect("record exists")
    }

    #[test]
    fn clean_type_has_no_violations() {
        let (p, s) = summary(
            r#"
record node { v: i64 }
func main() -> i64 {
bb0:
  r0 = alloc node, 100
  r1 = fieldaddr r0, node.v
  store 1, r1 : i64
  r2 = load r1 : i64
  ret r2
}
"#,
        );
        let o = s.of(rid(&p, "node"));
        assert!(o.violations.is_empty());
        assert!(o.dyn_alloc);
        assert_eq!(o.alloc_sites.len(), 1);
        assert_eq!(o.alloc_sites[0].const_count, Some(100));
        assert!(o.has_local_ptr);
    }

    #[test]
    fn cstf_on_cast_from() {
        let (p, s) = summary(
            r#"
record node { v: i64 }
func main() -> i64 {
bb0:
  r0 = alloc node, 4
  r1 = cast r0 : ptr<node> -> i64
  ret r1
}
"#,
        );
        let o = s.of(rid(&p, "node"));
        assert_eq!(o.violations.get(&LegalityTest::Cstf), Some(&1));
    }

    #[test]
    fn cstt_on_cast_to_but_malloc_tolerated() {
        let (p, s) = summary(
            r#"
record node { v: i64 }
func main() -> i64 {
bb0:
  r0 = alloc u8, 800
  r1 = cast r0 : ptr<u8> -> ptr<node>
  r2 = 5
  r3 = cast r2 : i64 -> ptr<node>
  ret 0
}
"#,
        );
        let o = s.of(rid(&p, "node"));
        // first cast tolerated (fresh malloc), second one fires
        assert_eq!(o.violations.get(&LegalityTest::Cstt), Some(&1));
        assert!(
            o.dyn_alloc,
            "malloc-cast marks the type dynamically allocated"
        );
    }

    #[test]
    fn atkn_when_field_address_escapes() {
        let (p, s) = summary(
            r#"
record node { v: i64, w: i64 }
func main() -> i64 {
bb0:
  r0 = alloc node, 4
  r1 = fieldaddr r0, node.v
  r2 = add r1, 8
  r3 = load r2 : i64
  ret r3
}
"#,
        );
        let o = s.of(rid(&p, "node"));
        assert_eq!(o.violations.get(&LegalityTest::Atkn), Some(&1));
    }

    #[test]
    fn atkn_tolerated_for_call_args() {
        let (p, s) = summary(
            r#"
record node { v: i64 }
func take(ptr<i64>) -> void {
bb0:
  ret
}
func main() -> i64 {
bb0:
  r0 = alloc node, 4
  r1 = fieldaddr r0, node.v
  call take(r1)
  ret 0
}
"#,
        );
        let o = s.of(rid(&p, "node"));
        assert!(!o.violations.contains_key(&LegalityTest::Atkn));
    }

    #[test]
    fn libc_escape() {
        let (p, s) = summary(
            r#"
record node { v: i64 }
libc func fwrite(ptr<node>) -> i64
func main() -> i64 {
bb0:
  r0 = alloc node, 4
  r1 = call fwrite(r0)
  ret r1
}
"#,
        );
        let o = s.of(rid(&p, "node"));
        assert_eq!(o.violations.get(&LegalityTest::Libc), Some(&1));
    }

    #[test]
    fn ind_on_indirect_call() {
        let (p, s) = summary(
            r#"
record node { v: i64 }
func take(ptr<node>) -> void {
bb0:
  ret
}
func main() -> i64 {
bb0:
  r0 = alloc node, 4
  r1 = fnaddr take
  icall r1(r0) : (ptr<node>)
  ret 0
}
"#,
        );
        let o = s.of(rid(&p, "node"));
        assert_eq!(o.violations.get(&LegalityTest::Ind), Some(&1));
    }

    #[test]
    fn mset_on_memset_and_memcpy() {
        let (p, s) = summary(
            r#"
record node { v: i64 }
func main() -> i64 {
bb0:
  r0 = alloc node, 4
  r1 = alloc node, 4
  memset r0, 0, 32
  memcpy r1, r0, 32
  ret 0
}
"#,
        );
        let o = s.of(rid(&p, "node"));
        assert_eq!(o.violations.get(&LegalityTest::Mset), Some(&3)); // memset + 2 memcpy operands
    }

    #[test]
    fn nest_detection() {
        let (p, s) = summary(
            r#"
record inner { x: i64 }
record outer { i: inner, y: i64 }
func main() -> i64 {
bb0:
  ret 0
}
"#,
        );
        assert_eq!(
            s.of(rid(&p, "inner")).violations.get(&LegalityTest::Nest),
            Some(&1)
        );
        assert!(s.of(rid(&p, "outer")).violations.is_empty());
    }

    #[test]
    fn escape_tuples_to_defined_functions() {
        let (p, s) = summary(
            r#"
record node { v: i64 }
extern func mystery(ptr<node>) -> void
func local(ptr<node>) -> void {
bb0:
  ret
}
func main() -> i64 {
bb0:
  r0 = alloc node, 4
  call local(r0)
  call mystery(r0)
  ret 0
}
"#,
        );
        let o = s.of(rid(&p, "node"));
        let local = p.func_by_name("local").expect("local");
        let mystery = p.func_by_name("mystery").expect("mystery");
        assert!(o.escapes_to.contains(&local));
        assert!(o.escapes_to.contains(&mystery));
    }

    #[test]
    fn global_attrs() {
        let (p, s) = summary(
            r#"
record node { v: i64 }
global P: ptr<node>
global ARR: [node; 8]
global N: node
func main() -> i64 {
bb0:
  ret 0
}
"#,
        );
        let o = s.of(rid(&p, "node"));
        assert!(o.has_global_ptr);
        assert!(o.has_static_array);
        assert!(o.has_global_var);
    }

    #[test]
    fn free_and_realloc_attrs() {
        let (p, s) = summary(
            r#"
record node { v: i64 }
func main() -> i64 {
bb0:
  r0 = alloc node, 8
  r1 = realloc r0, node, 16
  free r1
  ret 0
}
"#,
        );
        let o = s.of(rid(&p, "node"));
        assert!(o.freed);
        assert!(o.realloced);
    }

    #[test]
    fn merge_observations() {
        let mut a = TypeObservations::default();
        a.violate(LegalityTest::Cstt);
        a.dyn_alloc = true;
        let mut b = TypeObservations::default();
        b.violate(LegalityTest::Cstt);
        b.violate(LegalityTest::Mset);
        b.freed = true;
        a.merge(&b);
        assert_eq!(a.violations[&LegalityTest::Cstt], 2);
        assert_eq!(a.violations[&LegalityTest::Mset], 1);
        assert!(a.dyn_alloc && a.freed);
    }

    #[test]
    fn per_unit_scoping() {
        let src = r#"
record node { v: i64 }
func f1() -> i64 {
bb0:
  r0 = alloc node, 4
  r1 = cast r0 : ptr<node> -> i64
  ret r1
}
"#;
        let mut p = parse(src).expect("parse");
        // move f1 to unit 1
        let f1 = p.func_by_name("f1").expect("f1");
        p.add_unit("second.c");
        p.func_mut(f1).unit = 1;
        let s0 = analyze_unit(&p, 0);
        let s1 = analyze_unit(&p, 1);
        let node = p.types.record_by_name("node").expect("node");
        assert!(s0.of(node).violations.is_empty());
        assert_eq!(s1.of(node).violations.get(&LegalityTest::Cstf), Some(&1));
    }
}
