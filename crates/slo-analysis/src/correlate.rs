//! Linear correlation — the paper's quality metric for weighting schemes.
//!
//! Table 2 compares each scheme's relative field hotness against the PBO
//! baseline using the Pearson correlation coefficient `r`, plus a variant
//! `r'` that disregards the dominant field (`potential` in 181.mcf), since
//! one overwhelming field can mask disagreement about the rest.

/// Pearson linear correlation coefficient of two equal-length series.
///
/// Returns 0.0 when either series is constant (no variance) or when the
/// series are shorter than 2 elements.
///
/// # Examples
///
/// ```
/// use slo_analysis::correlation;
///
/// let r = correlation(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]);
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn correlation(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "series must have equal length");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for i in 0..n {
        let a = x[i] - mx;
        let b = y[i] - my;
        num += a * b;
        dx += a * a;
        dy += b * b;
    }
    if dx == 0.0 || dy == 0.0 {
        return 0.0;
    }
    num / (dx.sqrt() * dy.sqrt())
}

/// Correlation with one index excluded (the paper's `r'`).
///
/// # Panics
///
/// Panics if the slices have different lengths or `exclude` is out of
/// range.
pub fn correlation_excluding(x: &[f64], y: &[f64], exclude: usize) -> f64 {
    assert!(exclude < x.len(), "exclude index out of range");
    let xf: Vec<f64> = x
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != exclude)
        .map(|(_, v)| *v)
        .collect();
    let yf: Vec<f64> = y
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != exclude)
        .map(|(_, v)| *v)
        .collect();
    correlation(&xf, &yf)
}

/// Index of the maximum element (first on ties); `None` for empty input.
pub fn argmax(x: &[f64]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, v) in x.iter().enumerate() {
        if *v > x[best] {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 20.0, 30.0, 40.0];
        assert!((correlation(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((correlation(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_correlation_for_constant_series() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(correlation(&x, &y), 0.0);
        assert_eq!(correlation(&y, &x), 0.0);
    }

    #[test]
    fn short_series() {
        assert_eq!(correlation(&[], &[]), 0.0);
        assert_eq!(correlation(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn symmetric() {
        let x = [1.0, 5.0, 2.0, 8.0];
        let y = [2.0, 4.0, 1.0, 9.0];
        assert!((correlation(&x, &y) - correlation(&y, &x)).abs() < 1e-12);
    }

    #[test]
    fn excluding_dominant_changes_result() {
        // y agrees with x only on the huge outlier
        let x = [100.0, 1.0, 2.0, 3.0];
        let y = [100.0, 3.0, 2.0, 1.0];
        let r = correlation(&x, &y);
        let r_prime = correlation_excluding(&x, &y, 0);
        assert!(r > 0.9, "r = {r}");
        assert!(r_prime < 0.0, "r' = {r_prime}");
    }

    #[test]
    fn argmax_works() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        correlation(&[1.0], &[1.0, 2.0]);
    }
}
