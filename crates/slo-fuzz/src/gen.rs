//! Random well-typed program generation over `slo-ir`.
//!
//! The generator builds programs that are *memory-safe and terminating
//! by construction*: every heap access goes through a constant-bounded
//! array of a record type allocated up front, every loop is a counted
//! loop, pointer-typed fields are always initialized before any chase,
//! and raw address values never flow into the computed result (so a
//! layout change can never legitimately change the exit value). Within
//! that discipline it exercises the whole legality surface of the
//! paper's analyses: bit-fields, nested records, pointer fields,
//! pointer casts (CSTT/CSTF), `memset`/`memcpy` (MSET), escapes to
//! external functions, indirect calls (IND), small constant allocations
//! (SMAL), and direct/library calls — biased so that a healthy fraction
//! of generated types still passes strict legality and the transforms
//! actually fire.

use proptest::TestRng;
use slo_ir::builder::{FuncBuilder, ProgramBuilder};
use slo_ir::{
    BinOp, CmpOp, Const, Field, FuncId, GlobalId, Operand, Program, RecordId, Reg, ScalarKind,
    TypeId,
};

/// Size knobs for the generator. The defaults keep one case at a few
/// thousand executed instructions so thousands of cases fit in a CI
/// smoke budget.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum number of record types (at least 1 is always generated).
    pub max_records: u64,
    /// Maximum fields per record beyond the minimum of 2.
    pub max_extra_fields: u64,
    /// Maximum array length beyond the minimum of 2.
    pub max_array_len: u64,
    /// Maximum number of top-level statements beyond the first.
    pub max_statements: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_records: 3,
            max_extra_fields: 4,
            max_array_len: 18,
            max_statements: 5,
        }
    }
}

/// What one record field is.
#[derive(Debug, Clone, Copy)]
enum Fk {
    Scalar(ScalarKind),
    Bits(ScalarKind, u8),
    /// Pointer to an earlier record (by index into the record list).
    PtrTo(usize),
    /// Earlier record embedded by value (fires NEST on the inner type).
    Nested(usize),
}

struct RecSpec {
    rid: RecordId,
    rty: TypeId,
    pty: TypeId,
    fields: Vec<Fk>,
    count: i64,
    zeroed: bool,
    global: Option<GlobalId>,
    freed: bool,
}

/// Per-field initialization plan (decided before emitting the loop so
/// every element is initialized the same way).
#[derive(Debug, Clone, Copy)]
enum Init {
    Skip,
    Const(i64),
    /// `i * mul + add` where `i` is the element index.
    Lin(i64, i64),
    FloatConst(f64),
    /// Store the base pointer of the target record's array.
    Ptr(usize),
    /// Store a constant into scalar field `ix` of the nested record.
    NestedConst(u32, i64),
}

/// One top-level statement of `main`.
#[derive(Debug, Clone)]
enum Stmt {
    Sum {
        rec: usize,
        outer: i64,
        fields: Vec<u32>,
        ops: Vec<BinOp>,
        store_back: Option<u32>,
    },
    CondUpdate {
        rec: usize,
        field: u32,
        idx: i64,
        v_then: i64,
        v_else: i64,
    },
    HelperCall {
        rec: usize,
    },
    HelperIcall {
        rec: usize,
    },
    LibcSqrt {
        v: f64,
    },
    GlobalMix,
    CastHazard {
        rec: usize,
    },
    Escape {
        rec: usize,
    },
    MemsetZero {
        rec: usize,
    },
    CopyElem {
        rec: usize,
        from: i64,
        to: i64,
    },
    PtrChase {
        rec: usize,
        field: u32,
        idx: i64,
    },
}

const SCALARS: [ScalarKind; 10] = [
    ScalarKind::I8,
    ScalarKind::I16,
    ScalarKind::I32,
    ScalarKind::I64,
    ScalarKind::U8,
    ScalarKind::U16,
    ScalarKind::U32,
    ScalarKind::U64,
    ScalarKind::F32,
    ScalarKind::F64,
];

const FOLD_OPS: [BinOp; 8] = [
    BinOp::Add,
    BinOp::Add,
    BinOp::Add,
    BinOp::Sub,
    BinOp::Xor,
    BinOp::Or,
    BinOp::And,
    BinOp::Mul,
];

fn pick<T: Copy>(rng: &mut TestRng, xs: &[T]) -> T {
    xs[rng.below(xs.len() as u64) as usize]
}

fn is_scalarish(fk: Fk) -> bool {
    matches!(fk, Fk::Scalar(_) | Fk::Bits(..))
}

fn first_scalarish(fields: &[Fk]) -> Option<(u32, ScalarKind)> {
    fields.iter().enumerate().find_map(|(i, fk)| match fk {
        Fk::Scalar(k) => Some((i as u32, *k)),
        Fk::Bits(k, _) => Some((i as u32, *k)),
        _ => None,
    })
}

/// Fields whose value can be folded into the accumulator.
fn foldable(recs: &[RecSpec], r: usize) -> Vec<u32> {
    recs[r]
        .fields
        .iter()
        .enumerate()
        .filter_map(|(i, fk)| match fk {
            Fk::Scalar(_) | Fk::Bits(..) | Fk::PtrTo(_) => Some(i as u32),
            Fk::Nested(t) => first_scalarish(&recs[*t].fields).map(|_| i as u32),
        })
        .collect()
}

/// Plain scalar fields that statements may store into.
fn writable(recs: &[RecSpec], r: usize) -> Vec<u32> {
    recs[r]
        .fields
        .iter()
        .enumerate()
        .filter(|(_, fk)| is_scalarish(**fk))
        .map(|(i, _)| i as u32)
        .collect()
}

/// Pointer fields whose target record has a scalar field to chase into.
fn chaseable(recs: &[RecSpec], r: usize) -> Vec<u32> {
    recs[r]
        .fields
        .iter()
        .enumerate()
        .filter_map(|(i, fk)| match fk {
            Fk::PtrTo(t) => first_scalarish(&recs[*t].fields).map(|_| i as u32),
            _ => None,
        })
        .collect()
}

fn pick_subset(rng: &mut TestRng, pool: &[u32], max: usize) -> Vec<u32> {
    let k = 1 + rng.below(pool.len().min(max) as u64) as usize;
    let mut chosen: Vec<u32> = Vec::with_capacity(k);
    let mut tries = 0;
    while chosen.len() < k && tries < 24 {
        let c = pick(rng, pool);
        if !chosen.contains(&c) {
            chosen.push(c);
        }
        tries += 1;
    }
    chosen.sort_unstable();
    chosen
}

/// Generate one random well-typed program with a `main` returning i64.
pub fn gen_program(rng: &mut TestRng, cfg: &GenConfig) -> Program {
    let mut pb = ProgramBuilder::new();
    let i64t = pb.scalar(ScalarKind::I64);
    let f64t = pb.scalar(ScalarKind::F64);
    let void = pb.void();

    // ---- record types ----------------------------------------------------
    let nrec = 1 + rng.below(cfg.max_records) as usize;
    let mut recs: Vec<RecSpec> = Vec::with_capacity(nrec);
    for r in 0..nrec {
        let nf = 2 + rng.below(cfg.max_extra_fields + 1) as usize;
        let mut fks = Vec::with_capacity(nf);
        for _ in 0..nf {
            let roll = rng.below(100);
            let fk = if roll < 10 {
                match rng.below(3) {
                    0 => Fk::Bits(ScalarKind::U8, 1 + rng.below(7) as u8),
                    1 => Fk::Bits(ScalarKind::U16, 1 + rng.below(15) as u8),
                    _ => Fk::Bits(ScalarKind::U32, 1 + rng.below(31) as u8),
                }
            } else if roll < 62 {
                Fk::Scalar(pick(rng, &SCALARS))
            } else if r > 0 && roll < 80 {
                Fk::PtrTo(rng.below(r as u64) as usize)
            } else if r > 0 && roll < 88 {
                Fk::Nested(rng.below(r as u64) as usize)
            } else {
                Fk::Scalar(ScalarKind::I64)
            };
            fks.push(fk);
        }
        let mut defs = Vec::with_capacity(nf);
        for (i, fk) in fks.iter().enumerate() {
            let name = format!("f{i}");
            let field = match *fk {
                Fk::Scalar(k) => {
                    let t = pb.scalar(k);
                    Field::new(name, t)
                }
                Fk::Bits(k, w) => {
                    let t = pb.scalar(k);
                    Field::bitfield(name, t, w)
                }
                Fk::PtrTo(t) => {
                    let ty = pb.ptr(recs[t].rty);
                    Field::new(name, ty)
                }
                Fk::Nested(t) => Field::new(name, recs[t].rty),
            };
            defs.push(field);
        }
        let (rid, rty) = pb.record(format!("rec{r}"), defs);
        let pty = pb.ptr(rty);
        // occasional count of 1 exercises the SMAL test
        let count = if rng.below(10) == 0 {
            1
        } else {
            2 + rng.below(cfg.max_array_len) as i64
        };
        let global = if rng.below(2) == 0 {
            Some(pb.global(format!("g{r}"), pty))
        } else {
            None
        };
        recs.push(RecSpec {
            rid,
            rty,
            pty,
            fields: fks,
            count,
            zeroed: rng.below(2) == 0,
            global,
            freed: rng.below(10) < 7,
        });
    }

    // ---- statement plan --------------------------------------------------
    let nstmt = 1 + rng.below(cfg.max_statements + 1) as usize;
    let mut stmts: Vec<Stmt> = Vec::with_capacity(nstmt);
    let mut want_helper = vec![false; nrec];
    let mut want_sink = vec![false; nrec];
    let mut want_sqrt = false;
    let mut want_gs = false;
    for _ in 0..nstmt {
        let r = rng.below(nrec as u64) as usize;
        let roll = rng.below(100);
        let stmt = if roll < 30 {
            let pool = foldable(&recs, r);
            if pool.is_empty() {
                continue;
            }
            let fields = pick_subset(rng, &pool, 3);
            let ops = fields.iter().map(|_| pick(rng, &FOLD_OPS)).collect();
            let w = writable(&recs, r);
            let store_back = if !w.is_empty() && rng.below(3) == 0 {
                Some(pick(rng, &w))
            } else {
                None
            };
            Stmt::Sum {
                rec: r,
                outer: 1 + rng.below(3) as i64,
                fields,
                ops,
                store_back,
            }
        } else if roll < 44 {
            let w = writable(&recs, r);
            if w.is_empty() {
                continue;
            }
            Stmt::CondUpdate {
                rec: r,
                field: pick(rng, &w),
                idx: rng.below(recs[r].count as u64) as i64,
                v_then: rng.below(100) as i64,
                v_else: rng.below(100) as i64,
            }
        } else if roll < 57 {
            want_helper[r] = true;
            Stmt::HelperCall { rec: r }
        } else if roll < 65 {
            want_helper[r] = true;
            Stmt::HelperIcall { rec: r }
        } else if roll < 71 {
            want_sqrt = true;
            Stmt::LibcSqrt {
                v: rng.below(1000) as f64 + 0.25,
            }
        } else if roll < 77 {
            want_gs = true;
            Stmt::GlobalMix
        } else if roll < 83 {
            Stmt::CastHazard { rec: r }
        } else if roll < 88 {
            want_sink[r] = true;
            Stmt::Escape { rec: r }
        } else if roll < 92 {
            Stmt::MemsetZero { rec: r }
        } else if roll < 96 {
            if recs[r].count < 2 {
                continue;
            }
            let from = rng.below(recs[r].count as u64) as i64;
            let to = (from + 1 + rng.below(recs[r].count as u64 - 1) as i64) % recs[r].count;
            Stmt::CopyElem { rec: r, from, to }
        } else {
            let pool = chaseable(&recs, r);
            if pool.is_empty() {
                continue;
            }
            Stmt::PtrChase {
                rec: r,
                field: pick(rng, &pool),
                idx: rng.below(recs[r].count as u64) as i64,
            }
        };
        stmts.push(stmt);
    }
    // a memset zeroes pointer fields, so never chase pointers of a record
    // that is memset anywhere in the program
    let memset_recs: Vec<usize> = stmts
        .iter()
        .filter_map(|s| match s {
            Stmt::MemsetZero { rec } => Some(*rec),
            _ => None,
        })
        .collect();
    stmts.retain(|s| !matches!(s, Stmt::PtrChase { rec, .. } if memset_recs.contains(rec)));

    // ---- declarations ----------------------------------------------------
    let mut helpers: Vec<Option<FuncId>> = vec![None; nrec];
    let mut helper_fields: Vec<Vec<u32>> = vec![Vec::new(); nrec];
    for r in 0..nrec {
        if want_helper[r] {
            helpers[r] = Some(pb.declare(format!("h{r}"), vec![recs[r].pty, i64t], i64t));
            let pool: Vec<u32> = recs[r]
                .fields
                .iter()
                .enumerate()
                .filter(|(_, fk)| is_scalarish(**fk))
                .map(|(i, _)| i as u32)
                .collect();
            if !pool.is_empty() {
                helper_fields[r] = pick_subset(rng, &pool, 2);
            }
        }
    }
    let mut sinks: Vec<Option<FuncId>> = vec![None; nrec];
    for r in 0..nrec {
        if want_sink[r] {
            sinks[r] = Some(pb.external(format!("sink{r}"), vec![recs[r].pty], void));
        }
    }
    let sqrt = want_sqrt.then(|| pb.libc("sqrt", vec![f64t], f64t));
    let gs = want_gs.then(|| pb.global("gs", i64t));
    let main = pb.declare("main", vec![], i64t);

    // ---- init plans (decided before emission: element-uniform) -----------
    let mut init_plans: Vec<Vec<Init>> = Vec::with_capacity(nrec);
    for spec in &recs {
        let mut plans = Vec::with_capacity(spec.fields.len());
        for fk in &spec.fields {
            let plan = match *fk {
                // pointer fields must always be valid before any chase
                Fk::PtrTo(t) => Init::Ptr(t),
                _ if rng.below(10) < 3 => Init::Skip,
                Fk::Scalar(ScalarKind::F32) | Fk::Scalar(ScalarKind::F64) => {
                    Init::FloatConst(rng.below(200) as f64 * 0.5 + 0.25)
                }
                Fk::Scalar(_) => {
                    if rng.below(2) == 0 {
                        Init::Const(rng.below(100) as i64)
                    } else {
                        Init::Lin(1 + rng.below(7) as i64, rng.below(50) as i64)
                    }
                }
                Fk::Bits(_, w) => Init::Const(rng.below(1u64 << w.min(20)) as i64),
                Fk::Nested(t) => match first_scalarish(&recs[t].fields) {
                    Some((ix, _)) => Init::NestedConst(ix, rng.below(100) as i64),
                    None => Init::Skip,
                },
            };
            plans.push(plan);
        }
        init_plans.push(plans);
    }
    let acc_seed = 1 + rng.below(40) as i64;

    // ---- helper bodies ---------------------------------------------------
    for r in 0..nrec {
        let Some(h) = helpers[r] else { continue };
        let spec = &recs[r];
        let fields = helper_fields[r].clone();
        pb.define(h, |fb| {
            let base = fb.param(0);
            let count = fb.param(1);
            if fields.is_empty() {
                fb.ret(Some(count.into()));
                return;
            }
            let acc = fb.fresh();
            fb.assign(acc, Operand::int(0));
            fb.count_loop(count.into(), |fb, i| {
                let e = fb.index_addr(base, spec.rty, i.into());
                for &f in &fields {
                    fold_field(fb, &recs, r, e, f, BinOp::Add, acc);
                }
            });
            fb.ret(Some(acc.into()));
        });
    }

    // ---- main body -------------------------------------------------------
    pb.define(main, |fb| {
        // allocate every array up front
        let mut bases: Vec<Reg> = Vec::with_capacity(nrec);
        for spec in &recs {
            let base = if spec.zeroed {
                fb.calloc(spec.rty, Operand::int(spec.count))
            } else {
                fb.alloc(spec.rty, Operand::int(spec.count))
            };
            if let Some(g) = spec.global {
                fb.store_global(g, base.into());
            }
            bases.push(base);
        }
        // initialization loops
        for (r, spec) in recs.iter().enumerate() {
            let plans = &init_plans[r];
            if plans.iter().all(|p| matches!(p, Init::Skip)) {
                continue;
            }
            let base = bases[r];
            fb.count_loop(Operand::int(spec.count), |fb, i| {
                let e = fb.index_addr(base, spec.rty, i.into());
                for (fi, plan) in plans.iter().enumerate() {
                    let f = fi as u32;
                    match *plan {
                        Init::Skip => {}
                        Init::Const(v) => fb.store_field(e.into(), spec.rid, f, Operand::int(v)),
                        Init::Lin(m, a) => {
                            let x = fb.mul(i.into(), Operand::int(m));
                            let y = fb.add(x.into(), Operand::int(a));
                            fb.store_field(e.into(), spec.rid, f, y.into());
                        }
                        Init::FloatConst(v) => {
                            fb.store_field(e.into(), spec.rid, f, Operand::Const(Const::Float(v)))
                        }
                        Init::Ptr(t) => {
                            fb.store_field(e.into(), spec.rid, f, bases[t].into());
                        }
                        Init::NestedConst(ix, v) => {
                            let Fk::Nested(t) = spec.fields[fi] else {
                                unreachable!()
                            };
                            let fa = fb.field_addr(e.into(), spec.rid, f);
                            fb.store_field(fa.into(), recs[t].rid, ix, Operand::int(v));
                        }
                    }
                }
            });
        }
        // the accumulator all observable results flow through
        let acc = fb.fresh();
        fb.assign(acc, Operand::int(acc_seed));
        // statements
        for stmt in &stmts {
            emit_stmt(
                fb, &recs, &bases, &helpers, &sinks, sqrt, gs, acc, stmt, i64t, f64t,
            );
        }
        // epilogue: frees, then return the accumulator
        for (r, spec) in recs.iter().enumerate() {
            if spec.freed {
                fb.free(bases[r].into());
            }
        }
        fb.ret(Some(acc.into()));
    });

    pb.finish()
}

/// Fold one field of element `e` of record `r` into `acc`.
fn fold_field(
    fb: &mut FuncBuilder<'_>,
    recs: &[RecSpec],
    r: usize,
    e: Reg,
    f: u32,
    op: BinOp,
    acc: Reg,
) {
    let spec = &recs[r];
    let v: Reg = match spec.fields[f as usize] {
        Fk::Scalar(k) | Fk::Bits(k, _) => {
            let fty = fb.types().scalar(k);
            let fa = fb.field_addr(e.into(), spec.rid, f);
            fb.load(fa.into(), fty)
        }
        Fk::Nested(t) => {
            let Some((ix, k)) = first_scalarish(&recs[t].fields) else {
                return;
            };
            let fty = fb.types().scalar(k);
            let fa = fb.field_addr(e.into(), spec.rid, f);
            let fa2 = fb.field_addr(fa.into(), recs[t].rid, ix);
            fb.load(fa2.into(), fty)
        }
        Fk::PtrTo(t) => {
            // fold only the (address-independent) null-ness of the pointer
            let fa = fb.field_addr(e.into(), spec.rid, f);
            let v = fb.load(fa.into(), recs[t].pty);
            fb.cmp(CmpOp::Ne, v.into(), Operand::null())
        }
    };
    let x = fb.bin(op, acc.into(), v.into());
    fb.assign(acc, x.into());
}

#[allow(clippy::too_many_arguments)]
fn emit_sum_inner(
    fb: &mut FuncBuilder<'_>,
    recs: &[RecSpec],
    r: usize,
    base: Reg,
    acc: Reg,
    fields: &[u32],
    ops: &[BinOp],
    store_back: Option<u32>,
) {
    let spec = &recs[r];
    fb.count_loop(Operand::int(spec.count), |fb, i| {
        let e = fb.index_addr(base, spec.rty, i.into());
        for (&f, &op) in fields.iter().zip(ops.iter()) {
            fold_field(fb, recs, r, e, f, op, acc);
        }
        if let Some(f) = store_back {
            fb.store_field(e.into(), spec.rid, f, acc.into());
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn emit_stmt(
    fb: &mut FuncBuilder<'_>,
    recs: &[RecSpec],
    bases: &[Reg],
    helpers: &[Option<FuncId>],
    sinks: &[Option<FuncId>],
    sqrt: Option<FuncId>,
    gs: Option<GlobalId>,
    acc: Reg,
    stmt: &Stmt,
    i64t: TypeId,
    _f64t: TypeId,
) {
    match stmt {
        Stmt::Sum {
            rec,
            outer,
            fields,
            ops,
            store_back,
        } => {
            if *outer > 1 {
                fb.count_loop(Operand::int(*outer), |fb, _| {
                    emit_sum_inner(fb, recs, *rec, bases[*rec], acc, fields, ops, *store_back);
                });
            } else {
                emit_sum_inner(fb, recs, *rec, bases[*rec], acc, fields, ops, *store_back);
            }
        }
        Stmt::CondUpdate {
            rec,
            field,
            idx,
            v_then,
            v_else,
        } => {
            let spec = &recs[*rec];
            let par = fb.bin(BinOp::And, acc.into(), Operand::int(1));
            let (rid, rty, f) = (spec.rid, spec.rty, *field);
            let base = bases[*rec];
            let (vt, ve, ix) = (*v_then, *v_else, *idx);
            fb.if_then_else(
                par.into(),
                |fb| {
                    let e = fb.index_addr(base, rty, Operand::int(ix));
                    fb.store_field(e.into(), rid, f, Operand::int(vt));
                },
                |fb| {
                    let e = fb.index_addr(base, rty, Operand::int(ix));
                    fb.store_field(e.into(), rid, f, Operand::int(ve));
                },
            );
        }
        Stmt::HelperCall { rec } => {
            let Some(h) = helpers[*rec] else { return };
            let r = fb.call(h, vec![bases[*rec].into(), Operand::int(recs[*rec].count)]);
            let x = fb.add(acc.into(), r.into());
            fb.assign(acc, x.into());
        }
        Stmt::HelperIcall { rec } => {
            let Some(h) = helpers[*rec] else { return };
            let t = fb.func_addr(h);
            let pty = recs[*rec].pty;
            let r = fb.call_indirect(
                t.into(),
                vec![bases[*rec].into(), Operand::int(recs[*rec].count)],
                vec![pty, i64t],
            );
            let x = fb.add(acc.into(), r.into());
            fb.assign(acc, x.into());
        }
        Stmt::LibcSqrt { v } => {
            let Some(s) = sqrt else { return };
            let r = fb.call(s, vec![Operand::Const(Const::Float(*v))]);
            let x = fb.add(acc.into(), r.into());
            fb.assign(acc, x.into());
        }
        Stmt::GlobalMix => {
            let Some(g) = gs else { return };
            fb.store_global(g, acc.into());
            let v = fb.load_global(g);
            let x = fb.add(acc.into(), v.into());
            fb.assign(acc, x.into());
        }
        Stmt::CastHazard { rec } => {
            // the cast results are deliberately unused: raw addresses must
            // never flow into the accumulator
            let spec = &recs[*rec];
            let c1 = fb.cast(bases[*rec].into(), spec.pty, i64t);
            let _c2 = fb.cast(c1.into(), i64t, spec.pty);
        }
        Stmt::Escape { rec } => {
            let Some(s) = sinks[*rec] else { return };
            fb.call_void(s, vec![bases[*rec].into()]);
        }
        Stmt::MemsetZero { rec } => {
            let spec = &recs[*rec];
            let sz = fb.types().size_of(spec.rty) as i64;
            fb.memset(
                bases[*rec].into(),
                Operand::int(0),
                Operand::int(spec.count * sz),
            );
        }
        Stmt::CopyElem { rec, from, to } => {
            let spec = &recs[*rec];
            let sz = fb.types().size_of(spec.rty) as i64;
            let d = fb.index_addr(bases[*rec], spec.rty, Operand::int(*to));
            let s = fb.index_addr(bases[*rec], spec.rty, Operand::int(*from));
            fb.memcpy(d.into(), s.into(), Operand::int(sz));
        }
        Stmt::PtrChase { rec, field, idx } => {
            let spec = &recs[*rec];
            let Fk::PtrTo(t) = spec.fields[*field as usize] else {
                return;
            };
            let Some((ix, k)) = first_scalarish(&recs[t].fields) else {
                return;
            };
            let e = fb.index_addr(bases[*rec], spec.rty, Operand::int(*idx));
            let fa = fb.field_addr(e.into(), spec.rid, *field);
            let p = fb.load(fa.into(), recs[t].pty);
            let fty = fb.types().scalar(k);
            let fa2 = fb.field_addr(p.into(), recs[t].rid, ix);
            let v = fb.load(fa2.into(), fty);
            let x = fb.add(acc.into(), v.into());
            fb.assign(acc, x.into());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo_ir::verify::verify;

    #[test]
    fn generated_programs_verify() {
        let cfg = GenConfig::default();
        for seed in 0..64 {
            let mut rng = TestRng::from_seed(seed);
            let p = gen_program(&mut rng, &cfg);
            let errs = verify(&p);
            assert!(errs.is_empty(), "seed {seed}: {errs:?}");
            assert!(p.main().is_some(), "seed {seed}: no main");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let p1 = gen_program(&mut TestRng::from_seed(7), &cfg);
        let p2 = gen_program(&mut TestRng::from_seed(7), &cfg);
        assert_eq!(
            slo_ir::printer::print_program(&p1),
            slo_ir::printer::print_program(&p2)
        );
    }

    #[test]
    fn a_healthy_fraction_of_types_is_legal() {
        use slo_analysis::{analyze_program, LegalityConfig};
        let cfg = GenConfig::default();
        let (mut total, mut legal) = (0usize, 0usize);
        for seed in 0..128 {
            let mut rng = TestRng::from_seed(seed);
            let p = gen_program(&mut rng, &cfg);
            let ipa = analyze_program(&p, &LegalityConfig::default());
            total += ipa.num_types();
            legal += ipa.num_legal();
        }
        assert!(total > 0);
        let frac = legal as f64 / total as f64;
        assert!(
            frac > 0.25,
            "only {legal}/{total} generated types pass strict legality"
        );
    }
}
