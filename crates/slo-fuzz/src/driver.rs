//! The fuzz campaign driver: generate → check → (on failure) shrink →
//! write a minimized textual-IR repro.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use proptest::TestRng;

use crate::gen::{gen_program, GenConfig};
use crate::hot::{check_hot_case, gen_hot_program};
use crate::oracle::{check_program, CaseOutcome, OracleConfig, Violation};
use crate::shrink::{shrink_failing, write_repro};

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of cases to run.
    pub cases: u64,
    /// Base seed; case `i` uses a seed derived from it.
    pub seed: u64,
    /// Optional wall-clock budget; the campaign stops cleanly (and
    /// successfully) when it is exhausted.
    pub budget_secs: Option<u64>,
    /// Every `hot_every`-th case is drawn from the directed hot-loop
    /// family (cache invariant) instead of the general generator.
    pub hot_every: u64,
    /// Program-shape knobs for the general generator.
    pub gen: GenConfig,
    /// Oracle knobs (mutation injection for self-tests).
    pub oracle: OracleConfig,
    /// Where minimized repros are written on failure; `None` disables
    /// artifact writing.
    pub artifacts_dir: Option<PathBuf>,
    /// Cap on shrinking attempts per failure.
    pub shrink_attempts: usize,
    /// Wall-clock cap on shrinking per failure. Hot-family cases are
    /// expensive to re-check (two extra sampled runs per candidate),
    /// so an attempt cap alone can mean many minutes of shrinking;
    /// past this deadline the current best repro is kept.
    pub shrink_secs: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            cases: 1000,
            seed: 0,
            budget_secs: None,
            hot_every: 8,
            gen: GenConfig::default(),
            oracle: OracleConfig::default(),
            artifacts_dir: Some(default_artifacts_dir()),
            shrink_attempts: 4000,
            shrink_secs: 60,
        }
    }
}

/// `fuzz/regressions/` at the workspace root.
pub fn default_artifacts_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("fuzz")
        .join("regressions")
}

/// Details of a failed case.
#[derive(Debug)]
pub struct FailureReport {
    /// Index of the failing case.
    pub case: u64,
    /// Derived seed of the failing case.
    pub case_seed: u64,
    /// The violation on the *original* (unshrunk) program.
    pub violation: Violation,
    /// Minimized textual IR that still triggers the violation class.
    pub minimized: String,
    /// Line count of the minimized repro.
    pub minimized_lines: usize,
    /// Where the repro artifact was written, if anywhere.
    pub artifact: Option<PathBuf>,
}

/// Outcome of a campaign.
#[derive(Debug)]
pub struct FuzzReport {
    /// Cases completed (including the failing one, if any).
    pub cases_run: u64,
    /// Of those, directed hot-loop cases.
    pub hot_cases: u64,
    /// Total transform plans applied and differentially checked.
    pub plans_applied: u64,
    /// Total reorder/GVL variants checked.
    pub variants_checked: u64,
    /// Wall-clock seconds spent.
    pub elapsed_secs: f64,
    /// Whether the campaign stopped early on its time budget.
    pub budget_exhausted: bool,
    /// The first failure, if any. `None` means a clean campaign.
    pub failure: Option<FailureReport>,
}

impl FuzzReport {
    /// Whether the campaign found no violation.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

fn case_seed(base: u64, i: u64) -> u64 {
    base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Run a fuzz campaign. Stops at the first violation (after shrinking
/// and writing the repro artifact) or when the case/time budget is
/// done.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let start = Instant::now();
    let mut report = FuzzReport {
        cases_run: 0,
        hot_cases: 0,
        plans_applied: 0,
        variants_checked: 0,
        elapsed_secs: 0.0,
        budget_exhausted: false,
        failure: None,
    };
    for i in 0..cfg.cases {
        if let Some(budget) = cfg.budget_secs {
            if start.elapsed().as_secs() >= budget {
                report.budget_exhausted = true;
                break;
            }
        }
        let seed = case_seed(cfg.seed, i);
        let is_hot = cfg.hot_every > 0 && i % cfg.hot_every == cfg.hot_every - 1;
        let mut rng = TestRng::from_seed(seed);
        type Checker = fn(&slo_ir::Program, &OracleConfig) -> Result<CaseOutcome, Violation>;
        let (prog, check): (_, Checker) = if is_hot {
            (gen_hot_program(&mut rng), check_hot_case)
        } else {
            (gen_program(&mut rng, &cfg.gen), check_program)
        };
        report.cases_run += 1;
        if is_hot {
            report.hot_cases += 1;
        }
        match check(&prog, &cfg.oracle) {
            Ok(out) => {
                report.plans_applied += out.plans_applied as u64;
                report.variants_checked += out.variants_checked as u64;
            }
            Err(violation) => {
                let class = violation.class();
                let ocfg = cfg.oracle;
                // In mutation (self-test) mode, also demand candidates
                // stay clean *without* the injected bug, so shrinking
                // cannot drift onto a program that fails on its own.
                let clean = OracleConfig { mutation: None };
                let need_clean = ocfg.mutation.is_some();
                let deadline = Instant::now() + Duration::from_secs(cfg.shrink_secs);
                let (min, _stats) = shrink_failing(
                    prog,
                    |c| {
                        Instant::now() < deadline
                            && matches!(check(c, &ocfg), Err(v) if v.class() == class)
                            && (!need_clean || check(c, &clean).is_ok())
                    },
                    cfg.shrink_attempts,
                );
                let minimized = slo_ir::printer::print_program(&min);
                let minimized_lines = minimized.lines().count();
                let artifact = cfg.artifacts_dir.as_ref().and_then(|dir| {
                    write_repro(
                        dir,
                        &format!("new-case-{seed:016x}"),
                        &[
                            format!("class: {class}"),
                            format!("found by: slo-fuzz seed {} case {i}", cfg.seed),
                            format!("violation: {violation}"),
                        ],
                        &min,
                    )
                    .ok()
                    .map(|(path, _)| path)
                });
                report.failure = Some(FailureReport {
                    case: i,
                    case_seed: seed,
                    violation,
                    minimized,
                    minimized_lines,
                    artifact,
                });
                break;
            }
        }
    }
    report.elapsed_secs = start.elapsed().as_secs_f64();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean() {
        let cfg = FuzzConfig {
            cases: 16,
            seed: 0xC60,
            artifacts_dir: None,
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&cfg);
        assert!(
            report.ok(),
            "violation: {}",
            report.failure.as_ref().unwrap().violation
        );
        assert_eq!(report.cases_run, 16);
        assert!(report.hot_cases >= 2);
        assert!(report.plans_applied > 0);
    }

    #[test]
    fn budget_stops_campaign_cleanly() {
        let cfg = FuzzConfig {
            cases: u64::MAX,
            seed: 1,
            budget_secs: Some(0),
            artifacts_dir: None,
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&cfg);
        assert!(report.ok());
        assert!(report.budget_exhausted);
        assert_eq!(report.cases_run, 0);
    }
}
