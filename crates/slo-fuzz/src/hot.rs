//! Directed "hot-loop family" cases for the cache-behavior invariant.
//!
//! The paper's whole premise is that splitting a record whose hot field
//! is traversed in a tight loop must not *increase* the loop's cache
//! misses. Random programs rarely produce a loop long enough to make
//! that signal robust, so this module generates a directed family:
//! a `hotrec { h, c0..cN }` array large enough to spill L1, whose `h`
//! field is streamed by a nested loop in a dedicated `hot` function and
//! whose cold fields are read once. [`check_hot_case`] first runs the
//! general oracle, then forces the canonical split and asserts the
//! transformed `hot` function's sampled d-cache misses do not exceed
//! the original's.

use proptest::TestRng;
use slo_ir::builder::ProgramBuilder;
use slo_ir::{Operand, Program, ScalarKind};
use slo_transform::{apply_plan, forced_split, RewriteError};
use slo_vm::{ExecOutcome, VmOptions};

use crate::oracle::{check_program, run_both, CaseOutcome, OracleConfig, Violation};

/// Generate one hot-loop program: `hotrec` with one hot and 3–5 cold
/// i64 fields, an array of 1200–2400 elements (larger than L1), the
/// hot field streamed 3× by `hot()`, cold fields read once.
pub fn gen_hot_program(rng: &mut TestRng) -> Program {
    let cold_n = 3 + rng.below(3) as usize;
    let n = 1200 + rng.below(1200) as i64;
    let probe = rng.below(n as u64) as i64;

    let mut pb = ProgramBuilder::new();
    let i64t = pb.scalar(ScalarKind::I64);
    let mut fields = vec![slo_ir::Field::new("h", i64t)];
    for c in 0..cold_n {
        fields.push(slo_ir::Field::new(format!("c{c}"), i64t));
    }
    let (rid, rty) = pb.record("hotrec", fields);
    let pty = pb.ptr(rty);
    let hot_f = pb.declare("hot", vec![pty, i64t], i64t);
    let main = pb.declare("main", vec![], i64t);

    pb.define(hot_f, |fb| {
        let base = fb.param(0);
        let count = fb.param(1);
        let acc = fb.fresh();
        fb.assign(acc, Operand::int(0));
        fb.count_loop(Operand::int(3), |fb, _| {
            fb.count_loop(count.into(), |fb, i| {
                let e = fb.index_addr(base, rty, i.into());
                let v = fb.load_field(e.into(), rid, 0);
                let x = fb.add(acc.into(), v.into());
                fb.assign(acc, x.into());
            });
        });
        fb.ret(Some(acc.into()));
    });

    pb.define(main, |fb| {
        let base = fb.calloc(rty, Operand::int(n));
        fb.count_loop(Operand::int(n), |fb, i| {
            let e = fb.index_addr(base, rty, i.into());
            fb.store_field(e.into(), rid, 0, i.into());
        });
        let acc = fb.fresh();
        fb.assign(acc, Operand::int(0));
        // one straight-line pass over the cold fields of a single element
        let e = fb.index_addr(base, rty, Operand::int(probe));
        for c in 0..cold_n {
            let v = fb.load_field(e.into(), rid, (c + 1) as u32);
            let x = fb.add(acc.into(), v.into());
            fb.assign(acc, x.into());
        }
        let r = fb.call(hot_f, vec![base.into(), Operand::int(n)]);
        let x = fb.add(acc.into(), r.into());
        fb.assign(acc, x.into());
        fb.free(base.into());
        fb.ret(Some(acc.into()));
    });

    pb.finish()
}

/// Sampled d-cache misses attributed to function `name`.
fn func_misses(out: &ExecOutcome, name: &str) -> u64 {
    out.feedback
        .funcs
        .get(name)
        .map(|f| f.samples.values().map(|s| s.misses).sum())
        .unwrap_or(0)
}

/// Oracle for the hot-loop family: general checks plus the cache-stat
/// invariant on the canonical forced split.
pub fn check_hot_case(prog: &Program, cfg: &OracleConfig) -> Result<CaseOutcome, Violation> {
    let outcome = check_program(prog, cfg)?;

    // The invariant needs the canonical shape; shrunk descendants that
    // lost it are only subject to the general checks above.
    let Some(rid) = prog.types.record_by_name("hotrec") else {
        return Ok(outcome);
    };
    let cold_names: Vec<String> = prog
        .types
        .record(rid)
        .fields
        .iter()
        .filter(|f| f.name.starts_with('c'))
        .map(|f| f.name.clone())
        .collect();
    if cold_names.is_empty() || !prog.funcs.iter().any(|f| f.name == "hot" && f.is_defined()) {
        return Ok(outcome);
    }
    let cold_refs: Vec<&str> = cold_names.iter().map(String::as_str).collect();
    let plan = match forced_split(prog, "hotrec", &cold_refs) {
        Ok(p) => p,
        Err(RewriteError::Unsupported(_)) => return Ok(outcome),
        Err(e) => {
            return Err(Violation::RewriteFailed {
                label: "hot-split".to_string(),
                detail: e.to_string(),
            })
        }
    };
    let q = apply_plan(prog, &plan).map_err(|e| Violation::RewriteFailed {
        label: "hot-split".to_string(),
        detail: e.to_string(),
    })?;

    // Sample every access so per-function miss counts are exact, and
    // keep the oracle's tight step limit so shrink candidates with
    // broken loops fail fast.
    let mut opts = VmOptions::sampling_only();
    opts.sample_period = 1;
    opts.step_limit = crate::oracle::oracle_opts().step_limit;
    let base = run_both(prog, "hot-original", &opts)?;
    let split = run_both(&q, "hot-split", &opts)?;
    if format!("{:?}", base.exit) != format!("{:?}", split.exit) {
        return Err(Violation::ExitMismatch {
            label: "hot-split".to_string(),
            original: format!("{:?}", base.exit),
            transformed: format!("{:?}", split.exit),
        });
    }
    let orig_misses = func_misses(&base, "hot");
    let split_misses = func_misses(&split, "hot");
    if split_misses > orig_misses {
        return Err(Violation::CacheRegression {
            original: orig_misses,
            transformed: split_misses,
        });
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_family_passes_and_split_reduces_misses() {
        let cfg = OracleConfig::default();
        for seed in 0..4 {
            let mut rng = TestRng::from_seed(seed);
            let p = gen_hot_program(&mut rng);
            check_hot_case(&p, &cfg).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn hot_split_strictly_improves_misses() {
        // The invariant is `<=`; on this directed family the split
        // should in fact strictly reduce hot-loop misses.
        let mut rng = TestRng::from_seed(1);
        let p = gen_hot_program(&mut rng);
        let cold: Vec<String> = p
            .types
            .record(p.types.record_by_name("hotrec").unwrap())
            .fields
            .iter()
            .skip(1)
            .map(|f| f.name.clone())
            .collect();
        let cold_refs: Vec<&str> = cold.iter().map(String::as_str).collect();
        let plan = forced_split(&p, "hotrec", &cold_refs).unwrap();
        let q = apply_plan(&p, &plan).unwrap();
        let mut opts = VmOptions::sampling_only();
        opts.sample_period = 1;
        let base = run_both(&p, "orig", &opts).unwrap();
        let split = run_both(&q, "split", &opts).unwrap();
        assert!(
            func_misses(&split, "hot") < func_misses(&base, "hot"),
            "split {} !< orig {}",
            func_misses(&split, "hot"),
            func_misses(&base, "hot")
        );
    }
}
