//! # slo-fuzz — differential transform fuzzer
//!
//! The layout transforms of *"Practical Structure Layout Optimization
//! and Advice"* (CGO 2006) promise one thing above all: a transformed
//! program behaves exactly like the original, only with a better data
//! layout. This crate stress-tests that promise end to end:
//!
//! * [`gen`] produces random **well-typed, memory-safe, terminating**
//!   programs over `slo-ir` — records with bit-fields, nesting and
//!   pointer fields, counted loops, malloc/calloc/free, direct,
//!   indirect and library calls, casts, memset/memcpy and escapes —
//!   biased so a healthy fraction of types still passes strict
//!   legality.
//! * [`oracle`] runs each program through the full
//!   analyze → plan → transform pipeline and executes original and
//!   transformed programs on **both** VM engines, demanding identical
//!   exit bits, execution statistics, profile feedback and
//!   leak-freedom.
//! * [`hot`] adds a directed family whose forced split must not
//!   increase the hot loop's sampled cache misses.
//! * [`shrink`] minimizes any failure to a small textual-IR repro via
//!   greedy delta debugging, and [`driver`] orchestrates whole
//!   campaigns (the `bench` crate's `fuzz` binary and CI smoke job).
//!
//! ```
//! use proptest::TestRng;
//! use slo_fuzz::{check_program, gen_program, GenConfig, OracleConfig};
//!
//! let mut rng = TestRng::from_seed(42);
//! let prog = gen_program(&mut rng, &GenConfig::default());
//! let outcome = check_program(&prog, &OracleConfig::default()).expect("no violation");
//! let _ = outcome.plans_applied;
//! ```

#![warn(missing_docs)]

pub mod driver;
pub mod gen;
pub mod hot;
pub mod oracle;
pub mod shrink;

pub use driver::{run_fuzz, FailureReport, FuzzConfig, FuzzReport};
pub use gen::{gen_program, GenConfig};
pub use hot::{check_hot_case, gen_hot_program};
pub use oracle::{check_program, inject, CaseOutcome, Mutation, OracleConfig, Violation};
pub use shrink::{reduction_candidates, shrink_failing, write_repro};
