//! Program shrinking: greedy delta debugging over structured IR edits.
//!
//! When the oracle reports a violation, the driver minimizes the
//! failing program with [`proptest::shrink::minimize`], using
//! [`reduction_candidates`] as the reduction relation and "fails with
//! the same [`Violation::class`]" as the predicate. Each edit keeps the
//! program well-formed (ids are remapped), so candidates either fail
//! for the same reason or are rejected — the result is a small textual
//! repro that still triggers the original bug class.
//!
//! [`Violation::class`]: crate::oracle::Violation::class

use std::path::Path;

use slo_ir::printer::print_program;
use slo_ir::{BlockId, Const, FuncId, Function, GlobalId, Instr, Operand, Program};

/// All one-step reductions of `p`, most aggressive first.
pub fn reduction_candidates(p: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    remove_unreachable_blocks(p, &mut out);
    remove_unreferenced_funcs(p, &mut out);
    thread_jump_blocks(p, &mut out);
    remove_unreferenced_globals(p, &mut out);
    straighten_branches(p, &mut out);
    remove_instrs(p, &mut out);
    remove_unreferenced_fields(p, &mut out);
    halve_constants(p, &mut out);
    out
}

fn retarget(i: &mut Instr, map: &dyn Fn(BlockId) -> BlockId) {
    match i {
        Instr::Jump { target } => *target = map(*target),
        Instr::Branch {
            then_bb, else_bb, ..
        } => {
            *then_bb = map(*then_bb);
            *else_bb = map(*else_bb);
        }
        _ => {}
    }
}

/// Drop every block unreachable from the entry (one candidate per
/// function that has any).
fn remove_unreachable_blocks(p: &Program, out: &mut Vec<Program>) {
    for (fi, f) in p.funcs.iter().enumerate() {
        if f.blocks.is_empty() {
            continue;
        }
        let mut reach = vec![false; f.blocks.len()];
        let mut stack = vec![0usize];
        reach[0] = true;
        while let Some(b) = stack.pop() {
            for s in f.blocks[b].successors() {
                if !reach[s.index()] {
                    reach[s.index()] = true;
                    stack.push(s.index());
                }
            }
        }
        if reach.iter().all(|r| *r) {
            continue;
        }
        // new index of each surviving block
        let mut map = vec![0u32; f.blocks.len()];
        let mut next = 0u32;
        for (bi, r) in reach.iter().enumerate() {
            if *r {
                map[bi] = next;
                next += 1;
            }
        }
        let mut q = p.clone();
        let func = &mut q.funcs[fi];
        let mut kept = Vec::with_capacity(next as usize);
        for (bi, blk) in func.blocks.drain(..).enumerate() {
            if reach[bi] {
                kept.push(blk);
            }
        }
        func.blocks = kept;
        for blk in &mut func.blocks {
            for i in &mut blk.instrs {
                retarget(i, &|b: BlockId| BlockId(map[b.index()]));
            }
        }
        out.push(q);
    }
}

fn remove_block(f: &mut Function, bi: usize) {
    f.blocks.remove(bi);
    for blk in &mut f.blocks {
        for i in &mut blk.instrs {
            retarget(i, &|b: BlockId| {
                if b.index() > bi {
                    BlockId(b.0 - 1)
                } else {
                    b
                }
            });
        }
    }
}

/// Collapse a non-entry block that is only `jump t`: redirect its
/// predecessors straight to `t` and delete it.
fn thread_jump_blocks(p: &Program, out: &mut Vec<Program>) {
    for (fi, f) in p.funcs.iter().enumerate() {
        for bi in 1..f.blocks.len() {
            let [Instr::Jump { target }] = f.blocks[bi].instrs.as_slice() else {
                continue;
            };
            let t = *target;
            if t.index() == bi {
                continue;
            }
            let mut q = p.clone();
            let func = &mut q.funcs[fi];
            for blk in &mut func.blocks {
                for i in &mut blk.instrs {
                    retarget(i, &|b: BlockId| if b.index() == bi { t } else { b });
                }
            }
            remove_block(func, bi);
            out.push(q);
        }
    }
}

fn remap_func(i: &mut Instr, map: &dyn Fn(FuncId) -> FuncId) {
    match i {
        Instr::Call { callee, .. } => *callee = map(*callee),
        Instr::FuncAddr { func, .. } => *func = map(*func),
        _ => {}
    }
}

fn remove_unreferenced_funcs(p: &Program, out: &mut Vec<Program>) {
    let mut used = vec![false; p.funcs.len()];
    for f in &p.funcs {
        for b in &f.blocks {
            for i in &b.instrs {
                match i {
                    Instr::Call { callee, .. } => used[callee.index()] = true,
                    Instr::FuncAddr { func, .. } => used[func.index()] = true,
                    _ => {}
                }
            }
        }
    }
    for (k, f) in p.funcs.iter().enumerate() {
        if used[k] || f.name == "main" {
            continue;
        }
        let mut q = p.clone();
        q.funcs.remove(k);
        let map = move |fid: FuncId| {
            if fid.index() > k {
                FuncId(fid.0 - 1)
            } else {
                fid
            }
        };
        for f in &mut q.funcs {
            for b in &mut f.blocks {
                for i in &mut b.instrs {
                    remap_func(i, &map);
                }
            }
        }
        out.push(q);
    }
}

fn remove_unreferenced_globals(p: &Program, out: &mut Vec<Program>) {
    let mut used = vec![false; p.globals.len()];
    for f in &p.funcs {
        for b in &f.blocks {
            for i in &b.instrs {
                match i {
                    Instr::LoadGlobal { global, .. }
                    | Instr::StoreGlobal { global, .. }
                    | Instr::AddrOfGlobal { global, .. } => used[global.index()] = true,
                    _ => {}
                }
            }
        }
    }
    for (k, _) in used.iter().enumerate().filter(|(_, u)| !**u) {
        let mut q = p.clone();
        q.globals.remove(k);
        for f in &mut q.funcs {
            for b in &mut f.blocks {
                for i in &mut b.instrs {
                    match i {
                        Instr::LoadGlobal { global, .. }
                        | Instr::StoreGlobal { global, .. }
                        | Instr::AddrOfGlobal { global, .. }
                            if global.index() > k =>
                        {
                            *global = GlobalId(global.0 - 1);
                        }
                        _ => {}
                    }
                }
            }
        }
        out.push(q);
    }
}

fn straighten_branches(p: &Program, out: &mut Vec<Program>) {
    for (fi, f) in p.funcs.iter().enumerate() {
        for (bi, b) in f.blocks.iter().enumerate() {
            let Some(Instr::Branch {
                then_bb, else_bb, ..
            }) = b.terminator()
            else {
                continue;
            };
            for target in [*then_bb, *else_bb] {
                let mut q = p.clone();
                let instrs = &mut q.funcs[fi].blocks[bi].instrs;
                *instrs.last_mut().unwrap() = Instr::Jump { target };
                out.push(q);
            }
        }
    }
}

fn remove_instrs(p: &Program, out: &mut Vec<Program>) {
    for (fi, f) in p.funcs.iter().enumerate() {
        for (bi, b) in f.blocks.iter().enumerate() {
            // skip the terminator; removing defs is safe because both
            // engines zero-initialize every register frame
            for ii in (0..b.instrs.len().saturating_sub(1)).rev() {
                let mut q = p.clone();
                q.funcs[fi].blocks[bi].instrs.remove(ii);
                out.push(q);
            }
        }
    }
}

fn remove_unreferenced_fields(p: &Program, out: &mut Vec<Program>) {
    for rid in p.types.record_ids() {
        let rec = p.types.record(rid);
        if rec.fields.len() < 2 {
            continue;
        }
        'field: for fi in 0..rec.fields.len() {
            for f in &p.funcs {
                for b in &f.blocks {
                    for i in &b.instrs {
                        if let Instr::FieldAddr { record, field, .. } = i {
                            if *record == rid && *field as usize == fi {
                                continue 'field;
                            }
                        }
                    }
                }
            }
            let mut q = p.clone();
            let mut new_rec = q.types.record(rid).clone();
            new_rec.fields.remove(fi);
            q.types.replace_record(rid, new_rec);
            for f in &mut q.funcs {
                for b in &mut f.blocks {
                    for i in &mut b.instrs {
                        if let Instr::FieldAddr { record, field, .. } = i {
                            if *record == rid && *field as usize > fi {
                                *field -= 1;
                            }
                        }
                    }
                }
            }
            out.push(q);
        }
    }
}

fn halve_operand(op: &mut Operand) -> bool {
    if let Operand::Const(Const::Int(v)) = op {
        if v.abs() > 2 {
            *v /= 2;
            return true;
        }
    }
    false
}

fn halve_constants(p: &Program, out: &mut Vec<Program>) {
    // one candidate per halvable constant, identified by walk order
    let mut n = 0usize;
    for f in &p.funcs {
        for b in &f.blocks {
            for i in &b.instrs {
                for op in i.uses() {
                    if matches!(op, Operand::Const(Const::Int(v)) if v.abs() > 2) {
                        n += 1;
                    }
                }
            }
        }
    }
    for target in 0..n {
        let mut q = p.clone();
        let mut k = 0usize;
        'outer: for f in &mut q.funcs {
            for b in &mut f.blocks {
                for i in &mut b.instrs {
                    if halve_nth_const(i, &mut k, target) {
                        break 'outer;
                    }
                }
            }
        }
        out.push(q);
    }
}

/// Halve the `target`-th halvable constant in walk order; `k` counts
/// halvable constants seen so far.
fn halve_nth_const(i: &mut Instr, k: &mut usize, target: usize) -> bool {
    let mut hit = false;
    let mut visit = |op: &mut Operand| {
        if hit {
            return;
        }
        if matches!(op, Operand::Const(Const::Int(v)) if v.abs() > 2) {
            if *k == target {
                halve_operand(op);
                hit = true;
            }
            *k += 1;
        }
    };
    match i {
        Instr::Assign { src, .. } | Instr::Cast { src, .. } => visit(src),
        Instr::Bin { lhs, rhs, .. } | Instr::Cmp { lhs, rhs, .. } => {
            visit(lhs);
            visit(rhs);
        }
        Instr::FieldAddr { base, .. } => visit(base),
        Instr::IndexAddr { base, index, .. } => {
            visit(base);
            visit(index);
        }
        Instr::Load { addr, .. } => visit(addr),
        Instr::Store { addr, value, .. } => {
            visit(addr);
            visit(value);
        }
        Instr::StoreGlobal { value, .. } => visit(value),
        Instr::Alloc { count, .. } => visit(count),
        Instr::Free { ptr } => visit(ptr),
        Instr::Realloc { ptr, count, .. } => {
            visit(ptr);
            visit(count);
        }
        Instr::Memcpy { dst, src, bytes } => {
            visit(dst);
            visit(src);
            visit(bytes);
        }
        Instr::Memset { dst, val, bytes } => {
            visit(dst);
            visit(val);
            visit(bytes);
        }
        Instr::Call { args, .. } => args.iter_mut().for_each(&mut visit),
        Instr::CallIndirect {
            target: t, args, ..
        } => {
            visit(t);
            args.iter_mut().for_each(&mut visit);
        }
        Instr::Branch { cond, .. } => visit(cond),
        Instr::Return { value } => {
            if let Some(v) = value {
                visit(v)
            }
        }
        Instr::LoadGlobal { .. }
        | Instr::AddrOfGlobal { .. }
        | Instr::FuncAddr { .. }
        | Instr::Jump { .. } => {}
    }
    hit
}

/// Shrink a failing program: `still_fails` must return `true` for
/// programs that reproduce the original failure class.
pub fn shrink_failing<P>(
    prog: Program,
    still_fails: P,
    max_attempts: usize,
) -> (Program, proptest::shrink::ShrinkStats)
where
    P: FnMut(&Program) -> bool,
{
    proptest::shrink::minimize(prog, reduction_candidates, still_fails, max_attempts)
}

/// Write a minimized repro to `dir/name.sir`: leading `// …` comment
/// lines followed by the textual IR. Returns the file's line count.
pub fn write_repro(
    dir: &Path,
    name: &str,
    comments: &[String],
    prog: &Program,
) -> std::io::Result<(std::path::PathBuf, usize)> {
    std::fs::create_dir_all(dir)?;
    let mut text = String::new();
    for c in comments {
        text.push_str("// ");
        text.push_str(c);
        text.push('\n');
    }
    text.push_str(&print_program(prog));
    if !text.ends_with('\n') {
        text.push('\n');
    }
    let path = dir.join(format!("{name}.sir"));
    let lines = text.lines().count();
    std::fs::write(&path, &text)?;
    Ok((path, lines))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_program, GenConfig};
    use proptest::TestRng;
    use slo_ir::verify::verify;

    #[test]
    fn candidates_preserve_wellformedness_often_enough() {
        // Reductions must keep ids in range (the verifier may reject a
        // candidate for semantic reasons, but never panic).
        let cfg = GenConfig::default();
        for seed in 0..8 {
            let mut rng = TestRng::from_seed(seed);
            let p = gen_program(&mut rng, &cfg);
            for q in reduction_candidates(&p) {
                let _ = verify(&q); // must not panic
            }
        }
    }

    #[test]
    fn shrinking_reduces_program_size() {
        let cfg = GenConfig::default();
        let mut rng = TestRng::from_seed(11);
        let p = gen_program(&mut rng, &cfg);
        let before = print_program(&p).lines().count();
        // predicate: "program still has a main that verifies" — shrink
        // to the smallest such program
        let (q, _) = shrink_failing(p, |c| c.main().is_some() && verify(c).is_empty(), 2000);
        let after = print_program(&q).lines().count();
        assert!(
            after < before,
            "no reduction happened ({before} -> {after})"
        );
    }
}
