//! The differential oracle: run a program through the whole
//! analyze → plan → transform pipeline and check every semantic
//! invariant the layout transforms promise to preserve.
//!
//! For each generated program the oracle
//!
//! 1. verifies the IR and checks the printer/parser round-trip,
//! 2. executes the original on **both** VM engines (pre-decoded and
//!    structured) and demands bit-identical exits, [`ExecStats`] and
//!    profile feedback,
//! 3. derives transform plans — the real planner under several
//!    heuristics configs, plus *forced* split/dead/peel plans for every
//!    strictly-legal record — applies each with `slo-transform`, and
//!    demands the transformed program verifies and produces the same
//!    exit bits and the same leak-freedom as the original,
//! 4. does the same for field reorder and global-variable-layout
//!    variants.
//!
//! [`ExecStats`]: slo_vm::ExecStats

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use slo_analysis::affinity::build_field_counts;
use slo_analysis::{
    affinity_graphs, analyze_program, block_frequencies, IpaResult, LegalityConfig, WeightScheme,
};
use slo_ir::printer::print_program;
use slo_ir::verify::verify;
use slo_ir::{Instr, Program, RecordId};
use slo_transform::{
    apply_plan, decide, gvl, peelable, reorder_fields, HeuristicsConfig, RewriteError,
    TransformPlan, TypeTransform,
};
use slo_vm::{run, ExecError, ExecOutcome, Value, VmOptions};

/// A deliberate bug injected into a transformed program, used to prove
/// the oracle actually has teeth (mutation testing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Rewrite the first `fieldaddr` of a multi-field record to address
    /// the *next* field instead — the classic off-by-one a broken
    /// split/reorder rewrite would produce.
    FieldAddrOffByOne,
    /// Delete the first `store` instruction found in a defined function.
    DropStore,
}

/// Inject `m` into `p`. Returns `false` if no applicable site exists.
pub fn inject(p: &mut Program, m: Mutation) -> bool {
    for f in &mut p.funcs {
        for b in &mut f.blocks {
            for idx in 0..b.instrs.len() {
                match (m, &b.instrs[idx]) {
                    (Mutation::FieldAddrOffByOne, Instr::FieldAddr { record, field, .. }) => {
                        let nf = p.types.record(*record).fields.len() as u32;
                        if nf >= 2 {
                            let new_field = (*field + 1) % nf;
                            if let Instr::FieldAddr { field, .. } = &mut b.instrs[idx] {
                                *field = new_field;
                            }
                            return true;
                        }
                    }
                    (Mutation::DropStore, Instr::Store { .. }) => {
                        b.instrs.remove(idx);
                        return true;
                    }
                    _ => {}
                }
            }
        }
    }
    false
}

/// Oracle knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleConfig {
    /// If set, this bug is injected into every transformed/variant
    /// program before it runs; the oracle is then *expected* to report a
    /// violation (used by the mutation tests).
    pub mutation: Option<Mutation>,
}

/// Summary of one successfully-checked case.
#[derive(Debug, Clone, Default)]
pub struct CaseOutcome {
    /// Transform plans applied and differentially checked.
    pub plans_applied: usize,
    /// Plans skipped because the rewriter reported them unsupported.
    pub plans_skipped: usize,
    /// Layout variants (reorder/GVL) checked.
    pub variants_checked: usize,
    /// Record types that passed strict legality.
    pub legal_types: usize,
}

/// A semantics violation found by the oracle. `class` is stable across
/// shrinking: a candidate program only counts as "still failing" if it
/// fails with the same class.
#[derive(Debug, Clone)]
pub enum Violation {
    /// The program (or generator) produced IR the verifier rejects.
    InvalidIr {
        /// Verifier messages.
        detail: String,
    },
    /// `print → parse → print` was not a fixpoint.
    Roundtrip {
        /// What differed.
        detail: String,
    },
    /// Execution faulted (generated programs must never fault).
    ExecFailed {
        /// The execution error, and on which program variant.
        detail: String,
    },
    /// Execution hit the oracle's step limit. Kept distinct from
    /// [`Violation::ExecFailed`] so a shrink candidate that merely
    /// loops forever can never pass for a program reproducing a real
    /// fault (or vice versa).
    StepLimit {
        /// Which program variant ran away.
        label: String,
    },
    /// The two VM engines disagreed on the same program.
    EngineDivergence {
        /// Which program variant diverged (label).
        program: String,
        /// What disagreed (exit / stats / feedback).
        what: String,
    },
    /// The rewriter rejected a plan the planner itself produced.
    RewriteFailed {
        /// Plan label.
        label: String,
        /// Rewrite error text.
        detail: String,
    },
    /// A transformed program no longer verifies.
    TransformedInvalid {
        /// Plan label.
        label: String,
        /// Verifier messages.
        detail: String,
    },
    /// Transformed program exited with different bits than the original.
    ExitMismatch {
        /// Plan label.
        label: String,
        /// Original exit value.
        original: String,
        /// Transformed exit value.
        transformed: String,
    },
    /// Transformed program leaked when the original did not.
    LeakMismatch {
        /// Plan label.
        label: String,
        /// Original leaked bytes.
        original: u64,
        /// Transformed leaked bytes.
        transformed: u64,
    },
    /// A split hot loop touched more cache lines than the original
    /// (checked by the directed hot-loop family, see [`crate::hot`]).
    CacheRegression {
        /// Hot-function misses in the original.
        original: u64,
        /// Hot-function misses in the transformed program.
        transformed: u64,
    },
}

impl Violation {
    /// Stable failure class used as the shrinking predicate.
    pub fn class(&self) -> &'static str {
        match self {
            Violation::InvalidIr { .. } => "invalid-ir",
            Violation::Roundtrip { .. } => "roundtrip",
            Violation::ExecFailed { .. } => "exec-failed",
            Violation::StepLimit { .. } => "step-limit",
            Violation::EngineDivergence { .. } => "engine-divergence",
            Violation::RewriteFailed { .. } => "rewrite-failed",
            Violation::TransformedInvalid { .. } => "transformed-invalid",
            Violation::ExitMismatch { .. } => "exit-mismatch",
            Violation::LeakMismatch { .. } => "leak-mismatch",
            Violation::CacheRegression { .. } => "cache-regression",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::InvalidIr { detail } => write!(f, "invalid IR: {detail}"),
            Violation::Roundtrip { detail } => write!(f, "printer/parser round-trip: {detail}"),
            Violation::ExecFailed { detail } => write!(f, "execution faulted: {detail}"),
            Violation::StepLimit { label } => {
                write!(f, "step limit exceeded on {label} (runaway loop)")
            }
            Violation::EngineDivergence { program, what } => {
                write!(f, "engines diverge on {program}: {what}")
            }
            Violation::RewriteFailed { label, detail } => {
                write!(f, "rewrite failed for {label}: {detail}")
            }
            Violation::TransformedInvalid { label, detail } => {
                write!(f, "transformed program invalid for {label}: {detail}")
            }
            Violation::ExitMismatch {
                label,
                original,
                transformed,
            } => write!(
                f,
                "exit mismatch for {label}: original {original}, transformed {transformed}"
            ),
            Violation::LeakMismatch {
                label,
                original,
                transformed,
            } => write!(
                f,
                "leak mismatch for {label}: original leaked {original} B, transformed {transformed} B"
            ),
            Violation::CacheRegression {
                original,
                transformed,
            } => write!(
                f,
                "cache regression: hot-loop misses {transformed} > original {original}"
            ),
        }
    }
}

/// Step limit for oracle runs. Generated programs retire well under
/// 200k instructions; the tight cap exists for *shrink candidates*,
/// where deleting a loop-increment instruction creates an infinite loop
/// that must fail fast (as [`Violation::StepLimit`], a class no real
/// failure shares) instead of burning the VM's default 2·10⁹-step
/// budget.
const ORACLE_STEP_LIMIT: u64 = 400_000;

/// Profiling options with the oracle's tight step limit.
pub fn oracle_opts() -> VmOptions {
    VmOptions::builder()
        .collect_edges(true)
        .sample_dcache(true)
        .step_limit(ORACLE_STEP_LIMIT)
        .build()
}

/// Comparable key for an exit value (bit-exact, NaN-safe).
fn value_key(v: Value) -> (u8, u64) {
    match v {
        Value::Int(i) => (0, i as u64),
        Value::Float(x) => (1, x.to_bits()),
        Value::Ptr(p) => (2, p),
    }
}

fn value_str(v: Value) -> String {
    format!("{v:?}")
}

/// Run `p` on both engines with `opts`, demanding identical behavior.
/// Returns the decoded-engine outcome.
pub fn run_both(p: &Program, label: &str, opts: &VmOptions) -> Result<ExecOutcome, Violation> {
    let dec = run(p, opts);
    let mut sopts = opts.clone();
    sopts.engine = slo_vm::Engine::Structured;
    let st = run(p, &sopts);
    match (dec, st) {
        (Ok(a), Ok(b)) => {
            if value_key(a.exit) != value_key(b.exit) {
                return Err(Violation::EngineDivergence {
                    program: label.to_string(),
                    what: format!(
                        "exit: decoded {}, structured {}",
                        value_str(a.exit),
                        value_str(b.exit)
                    ),
                });
            }
            if a.stats != b.stats {
                return Err(Violation::EngineDivergence {
                    program: label.to_string(),
                    what: format!("stats: decoded {:?} vs structured {:?}", a.stats, b.stats),
                });
            }
            if a.feedback != b.feedback {
                return Err(Violation::EngineDivergence {
                    program: label.to_string(),
                    what: "profile feedback differs".to_string(),
                });
            }
            Ok(a)
        }
        (Err(ExecError::StepLimit), Err(ExecError::StepLimit)) => Err(Violation::StepLimit {
            label: label.to_string(),
        }),
        (Err(e1), Err(e2)) if e1 == e2 => Err(Violation::ExecFailed {
            detail: format!("{label}: {e1:?}"),
        }),
        (d, s) => Err(Violation::EngineDivergence {
            program: label.to_string(),
            what: format!(
                "result kinds: decoded {:?}, structured {:?}",
                d.err(),
                s.err()
            ),
        }),
    }
}

/// Stable textual key of a plan (HashMap iteration order is not).
fn plan_key(prog: &Program, plan: &TransformPlan) -> String {
    let mut parts: Vec<String> = Vec::new();
    for rid in prog.types.record_ids() {
        let t = plan.of(rid);
        if t.is_some() {
            parts.push(format!("{}:{:?}", prog.types.record(rid).name, t));
        }
    }
    parts.join(";")
}

/// Planner plans under several heuristics configs, deduplicated.
fn planner_plans(
    prog: &Program,
    ipa: &IpaResult,
    graphs: &HashMap<RecordId, slo_analysis::AffinityGraph>,
    counts: &HashMap<(RecordId, u32), slo_analysis::FieldCounts>,
) -> Vec<(String, TransformPlan)> {
    let configs = [
        ("plan-ispbo", HeuristicsConfig::ispbo()),
        ("plan-pbo", HeuristicsConfig::pbo()),
        (
            "plan-interleave",
            HeuristicsConfig::builder()
                .split_threshold(7.5)
                .prefer_interleave(true)
                .build(),
        ),
    ];
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for (label, cfg) in configs {
        let plan = decide(prog, ipa, graphs, counts, &cfg);
        if plan.num_transformed() == 0 {
            continue;
        }
        if seen.insert(plan_key(prog, &plan)) {
            out.push((label.to_string(), plan));
        }
    }
    out
}

/// Forced plans: for every strictly-legal record with at least two
/// fields, force a split (even/odd interleaving of live fields), a
/// dead-field removal when statically-dead fields exist, and a peel
/// when the record is peelable.
fn forced_plans(
    prog: &Program,
    ipa: &IpaResult,
    counts: &HashMap<(RecordId, u32), slo_analysis::FieldCounts>,
) -> Vec<(String, TransformPlan)> {
    let mut out = Vec::new();
    for rid in ipa.legal_types() {
        let rec = prog.types.record(rid);
        let nf = rec.fields.len() as u32;
        if nf < 2 {
            continue;
        }
        let name = rec.name.clone();
        let dead: Vec<u32> = (0..nf)
            .filter(|f| counts.get(&(rid, *f)).is_none_or(|c| c.reads <= 0.0))
            .collect();
        let live: Vec<u32> = (0..nf).filter(|f| !dead.contains(f)).collect();
        if !dead.is_empty() && !live.is_empty() {
            let mut plan = TransformPlan::default();
            plan.types
                .insert(rid, TypeTransform::RemoveDead { dead: dead.clone() });
            out.push((format!("forced-dead:{name}"), plan));
        }
        if live.len() >= 2 {
            let hot_order: Vec<u32> = live.iter().copied().step_by(2).collect();
            let cold: Vec<u32> = live.iter().copied().skip(1).step_by(2).collect();
            let mut plan = TransformPlan::default();
            plan.types.insert(
                rid,
                TypeTransform::Split {
                    hot_order,
                    cold,
                    dead: dead.clone(),
                },
            );
            out.push((format!("forced-split:{name}"), plan));
        }
        if peelable(prog, rid, ipa) {
            let mut plan = TransformPlan::default();
            plan.types
                .insert(rid, TypeTransform::Peel { dead: dead.clone() });
            out.push((format!("forced-peel:{name}"), plan));
            let mut plan = TransformPlan::default();
            plan.types.insert(rid, TypeTransform::Interleave { dead });
            out.push((format!("forced-interleave:{name}"), plan));
        }
    }
    out
}

/// Compare a transformed program `q` against the original's outcome.
fn check_variant(
    q: &Program,
    label: &str,
    base: &ExecOutcome,
    cfg: &OracleConfig,
) -> Result<(), Violation> {
    let mut q = q.clone();
    if let Some(m) = cfg.mutation {
        inject(&mut q, m);
    }
    let errs = verify(&q);
    if !errs.is_empty() {
        return Err(Violation::TransformedInvalid {
            label: label.to_string(),
            detail: format!("{errs:?}"),
        });
    }
    let out = run_both(&q, label, &oracle_opts())?;
    if value_key(out.exit) != value_key(base.exit) {
        return Err(Violation::ExitMismatch {
            label: label.to_string(),
            original: value_str(base.exit),
            transformed: value_str(out.exit),
        });
    }
    // Transforms may change live byte counts (split/peel add companion
    // allocations, and peeling an entirely-dead record may eliminate
    // its allocation — leaks included) but must never turn a leak-free
    // program into a leaky one.
    if base.stats.leaked_bytes == 0 && out.stats.leaked_bytes != 0 {
        return Err(Violation::LeakMismatch {
            label: label.to_string(),
            original: base.stats.leaked_bytes,
            transformed: out.stats.leaked_bytes,
        });
    }
    Ok(())
}

/// Run the full differential oracle over one program.
pub fn check_program(prog: &Program, cfg: &OracleConfig) -> Result<CaseOutcome, Violation> {
    // 1. the input itself must be valid
    let errs = verify(prog);
    if !errs.is_empty() {
        return Err(Violation::InvalidIr {
            detail: format!("{errs:?}"),
        });
    }

    // 2. printer/parser round-trip is a fixpoint
    let text1 = print_program(prog);
    let reparsed = slo_ir::parser::parse(&text1).map_err(|e| Violation::Roundtrip {
        detail: format!("reparse failed: {e:?}"),
    })?;
    let text2 = print_program(&reparsed);
    if text1 != text2 {
        return Err(Violation::Roundtrip {
            detail: "second print differs from first".to_string(),
        });
    }

    // 3. dual-engine run of the original
    let base = run_both(prog, "original", &oracle_opts())?;

    // 4. analysis + plans
    let ipa = analyze_program(prog, &LegalityConfig::default());
    let scheme = WeightScheme::Ispbo;
    let freqs = block_frequencies(prog, &scheme);
    let graphs = affinity_graphs(prog, &scheme);
    let counts = build_field_counts(prog, &freqs);

    let mut outcome = CaseOutcome {
        legal_types: ipa.num_legal(),
        ..CaseOutcome::default()
    };

    let mut seen = BTreeSet::new();
    let mut plans: Vec<(String, TransformPlan, bool)> = Vec::new();
    for (label, plan) in planner_plans(prog, &ipa, &graphs, &counts) {
        if seen.insert(plan_key(prog, &plan)) {
            plans.push((label, plan, true));
        }
    }
    for (label, plan) in forced_plans(prog, &ipa, &counts) {
        if seen.insert(plan_key(prog, &plan)) {
            plans.push((label, plan, false));
        }
    }

    // 5. apply and differentially check every plan
    for (label, plan, from_planner) in &plans {
        match apply_plan(prog, plan) {
            Ok(q) => {
                check_variant(&q, label, &base, cfg)?;
                outcome.plans_applied += 1;
            }
            Err(RewriteError::Unsupported(_)) if !from_planner => {
                // a forced plan may hit genuine rewriter limitations
                outcome.plans_skipped += 1;
            }
            Err(e) => {
                return Err(Violation::RewriteFailed {
                    label: label.clone(),
                    detail: e.to_string(),
                });
            }
        }
    }

    // 6. layout variants: full field reversal per legal record, and GVL
    for rid in ipa.legal_types() {
        let rec = prog.types.record(rid);
        let nf = rec.fields.len() as u32;
        if nf < 2 {
            continue;
        }
        let name = rec.name.clone();
        let order: Vec<u32> = (0..nf).rev().collect();
        match reorder_fields(prog, rid, &order) {
            Ok(q) => {
                check_variant(&q, &format!("reorder:{name}"), &base, cfg)?;
                outcome.variants_checked += 1;
            }
            Err(RewriteError::Unsupported(_)) => outcome.plans_skipped += 1,
            Err(e) => {
                return Err(Violation::RewriteFailed {
                    label: format!("reorder:{name}"),
                    detail: e.to_string(),
                });
            }
        }
    }
    if prog.globals.len() >= 2 {
        match gvl(prog, &freqs) {
            Ok(q) => {
                check_variant(&q, "gvl", &base, cfg)?;
                outcome.variants_checked += 1;
            }
            Err(RewriteError::Unsupported(_)) => outcome.plans_skipped += 1,
            Err(e) => {
                return Err(Violation::RewriteFailed {
                    label: "gvl".to_string(),
                    detail: e.to_string(),
                });
            }
        }
    }

    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_program, GenConfig};
    use proptest::TestRng;

    #[test]
    fn clean_cases_pass_the_oracle() {
        let gcfg = GenConfig::default();
        let ocfg = OracleConfig::default();
        let mut applied = 0usize;
        for seed in 0..24 {
            let mut rng = TestRng::from_seed(seed);
            let p = gen_program(&mut rng, &gcfg);
            let out = check_program(&p, &ocfg)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}\n{}", print_program(&p)));
            applied += out.plans_applied + out.variants_checked;
        }
        assert!(applied > 0, "no transform was ever exercised");
    }

    #[test]
    fn drop_store_mutation_is_caught_somewhere() {
        let gcfg = GenConfig::default();
        let ocfg = OracleConfig {
            mutation: Some(Mutation::DropStore),
        };
        let mut caught = false;
        for seed in 0..64 {
            let mut rng = TestRng::from_seed(seed);
            let p = gen_program(&mut rng, &gcfg);
            if check_program(&p, &ocfg).is_err() {
                caught = true;
                break;
            }
        }
        assert!(caught, "DropStore mutation never caused a violation");
    }
}
