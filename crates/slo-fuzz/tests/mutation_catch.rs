//! Mutation tests: prove the differential oracle has teeth by injecting
//! deliberate bugs into transformed programs and demanding they are
//! caught and minimized to a small repro.

use proptest::TestRng;
use slo_fuzz::{
    check_program, gen_program, shrink_failing, GenConfig, Mutation, OracleConfig, Violation,
};

/// Small programs: keeps the debug-profile oracle fast during
/// shrinking and the final repro naturally small.
fn small_gen() -> GenConfig {
    GenConfig {
        max_records: 2,
        max_extra_fields: 2,
        max_array_len: 6,
        max_statements: 3,
    }
}

/// Find a seed where the mutation flips the oracle's verdict: clean
/// without it, violating with it.
fn find_caught_case(m: Mutation) -> (u64, slo_ir::Program, Violation) {
    let gcfg = small_gen();
    let clean = OracleConfig::default();
    let mutated = OracleConfig { mutation: Some(m) };
    for seed in 0..256 {
        let mut rng = TestRng::from_seed(seed);
        let p = gen_program(&mut rng, &gcfg);
        if check_program(&p, &clean).is_err() {
            continue;
        }
        if let Err(v) = check_program(&p, &mutated) {
            return (seed, p, v);
        }
    }
    panic!("mutation {m:?} was never caught in 256 seeds");
}

#[test]
fn field_off_by_one_is_caught_and_minimizes_small() {
    let (seed, p, v) = find_caught_case(Mutation::FieldAddrOffByOne);
    let class = v.class();
    let mutated = OracleConfig {
        mutation: Some(Mutation::FieldAddrOffByOne),
    };
    let (min, stats) = shrink_failing(
        p,
        |c| matches!(check_program(c, &mutated), Err(v) if v.class() == class),
        1500,
    );
    let text = slo_ir::printer::print_program(&min);
    let lines = text.lines().count();
    assert!(
        lines <= 40,
        "seed {seed}: repro did not minimize below 40 lines ({lines}, \
         {} accepted reductions):\n{text}",
        stats.accepted
    );
    // and the minimized program still flips the verdict
    assert!(check_program(&min, &OracleConfig::default()).is_ok());
    assert!(check_program(&min, &mutated).is_err());
}

#[test]
fn drop_store_is_caught() {
    let (_seed, _p, v) = find_caught_case(Mutation::DropStore);
    let _ = v.class();
}
