//! A small always-on differential fuzz campaign. The full CI smoke job
//! (1000+ cases) runs through the `bench` crate's `fuzz` binary; this
//! keeps a floor of coverage in `cargo test`.

use slo_fuzz::{run_fuzz, FuzzConfig};

#[test]
fn smoke_campaign_is_clean() {
    let cfg = FuzzConfig {
        cases: 96,
        seed: 0x5EED,
        artifacts_dir: None,
        ..FuzzConfig::default()
    };
    let report = run_fuzz(&cfg);
    if let Some(f) = &report.failure {
        panic!(
            "case {} (seed {:#018x}): {}\nminimized:\n{}",
            f.case, f.case_seed, f.violation, f.minimized
        );
    }
    assert_eq!(report.cases_run, 96);
    assert!(report.hot_cases >= 12);
    assert!(report.plans_applied > 0);
    assert!(report.variants_checked > 0);
}
