//! Property tests for the retry schedule (ISSUE 5 satellite): for any
//! `(seed, policy)` the schedule is reproducible, monotonically
//! non-decreasing, capped, and exactly `max_attempts - 1` long.

use proptest::prelude::*;
use slo_chaos::RetryPolicy;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    fn schedule_is_reproducible_and_monotone(
        seed in 0u64..u64::MAX,
        max_attempts in 1u32..12,
        base in 1u64..500,
        cap in 1u64..5_000,
    ) {
        let policy = RetryPolicy {
            max_attempts,
            base_delay_ms: base,
            max_delay_ms: cap,
        };
        let a = policy.schedule(seed).collect_all();
        let b = policy.schedule(seed).collect_all();
        prop_assert_eq!(&a, &b, "same (seed, policy) must replay identically");
        prop_assert_eq!(a.len(), (max_attempts - 1) as usize);
        prop_assert!(
            a.windows(2).all(|w| w[0] <= w[1]),
            "delays must never shrink: {:?}", a
        );
        prop_assert!(
            a.iter().all(|&d| d <= cap),
            "per-step cap violated: {:?} cap {}", a, cap
        );
    }

    fn first_delay_is_at_least_base_when_under_cap(
        seed in 0u64..u64::MAX,
        base in 1u64..1_000,
    ) {
        let policy = RetryPolicy {
            max_attempts: 2,
            base_delay_ms: base,
            max_delay_ms: u64::MAX,
        };
        let d = policy.schedule(seed).collect_all();
        prop_assert_eq!(d.len(), 1);
        prop_assert!(d[0] >= base, "first delay {} below base {}", d[0], base);
        // jitter is bounded by +25%
        prop_assert!(d[0] <= base + base / 4, "jitter overshot: {} vs base {}", d[0], base);
    }
}
