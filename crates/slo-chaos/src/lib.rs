//! # slo-chaos — deterministic fault injection for the SLO stack
//!
//! The paper's operational contract is *degrade to advice, never to
//! wrong code*: whenever legality or profitability is in doubt the
//! pipeline falls back to the §3 advisory report. The service inherits
//! that ladder (Optimized → Advisory → Failed-on-unparseable-only),
//! but nothing proves the ladder holds when the machinery underneath
//! it misbehaves. This crate provides the misbehaviour: a seed-driven
//! [`FaultPlan`] with named injection [`Site`]s threaded through the
//! VM, the analysis cache, the worker pool and the manifest reader,
//! plus the recovery-side primitives — a [`Clock`] that can be virtual
//! (so backoff tests do not sleep) and a [`RetryPolicy`] producing
//! bounded, reproducible exponential [`BackoffSchedule`]s.
//!
//! Like `slo_obs::Recorder`, a disabled plan is an `Option::None`
//! discriminant: every query is one branch and injection-free builds
//! pay nothing else. An enabled plan fires deterministically — whether
//! the *n*-th query of a site fires is a pure function of
//! `(seed, site, n)` — so a chaos campaign is replayable from its seed
//! alone and two runs of the same campaign inject the same faults at
//! the same points.
//!
//! This crate sits at the bottom of the workspace graph next to
//! `slo-obs` and depends on nothing.

#![warn(missing_docs)]

pub mod clock;
pub mod retry;

pub use clock::Clock;
pub use retry::{BackoffSchedule, RetryPolicy};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Named injection points threaded through the stack.
///
/// Each site is queried by exactly one piece of production code; the
/// ARCHITECTURE.md anchor table maps every variant to its `file:line`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// `slo-vm`: a heap allocation is refused (`ExecError::Injected`).
    VmAlloc,
    /// `slo-vm`: the effective step limit of one run is jittered down.
    VmStepJitter,
    /// `slo-service::cache`: an inserted entry's stored fingerprint is
    /// corrupted, simulating silent cache poisoning.
    CachePoison,
    /// `slo-service::cache`: an insert triggers a whole-cache eviction
    /// storm.
    CacheEvictStorm,
    /// `slo-service::pool`: a worker thread dies mid-queue, orphaning
    /// its current item.
    PoolWorkerPanic,
    /// `slo-service::manifest`: an incoming serve line is truncated.
    ManifestTruncate,
    /// `slo-service::manifest`: an incoming serve line is garbled.
    ManifestGarble,
    /// `slo-service::net`: a client stalls mid-line (slow-loris); the
    /// ingress must close it through its read-timeout defense instead
    /// of buffering the partial frame forever.
    NetSlowLoris,
    /// `slo-service::net`: the connection drops after a request ran but
    /// before its reply was written — the acked-vs-journaled window.
    NetDisconnect,
    /// `slo-service::net`: an accept storm — a burst of connections
    /// arrives at once, forcing the ingress through its over-capacity
    /// rejection path.
    NetAcceptStorm,
    /// `slo-service::store`: a put writes only a prefix of its record
    /// (a torn write, as if the process died mid-append); the replay
    /// path must treat it as an ignorable tail, never as data.
    StoreTornWrite,
    /// `slo-service::store`: one byte of a just-written record is
    /// flipped on disk (bit rot); the checksummed read path must drop
    /// and recompute, never serve the damaged record.
    StoreBitRot,
    /// `slo-service::store`: a stale compaction lock from a dead
    /// process is planted before lock acquisition; the stale-lock
    /// takeover path must reclaim it instead of deadlocking.
    StoreLockStale,
}

/// Number of distinct [`Site`]s.
pub const NUM_SITES: usize = 13;

/// Every site, in a fixed order (index = `site as usize`).
pub const ALL_SITES: [Site; NUM_SITES] = [
    Site::VmAlloc,
    Site::VmStepJitter,
    Site::CachePoison,
    Site::CacheEvictStorm,
    Site::PoolWorkerPanic,
    Site::ManifestTruncate,
    Site::ManifestGarble,
    Site::NetSlowLoris,
    Site::NetDisconnect,
    Site::NetAcceptStorm,
    Site::StoreTornWrite,
    Site::StoreBitRot,
    Site::StoreLockStale,
];

impl Site {
    /// Stable machine-readable name (used as a Prometheus label value).
    pub fn name(self) -> &'static str {
        match self {
            Site::VmAlloc => "vm-alloc",
            Site::VmStepJitter => "vm-step-jitter",
            Site::CachePoison => "cache-poison",
            Site::CacheEvictStorm => "cache-evict-storm",
            Site::PoolWorkerPanic => "pool-worker-panic",
            Site::ManifestTruncate => "manifest-truncate",
            Site::ManifestGarble => "manifest-garble",
            Site::NetSlowLoris => "net-slow-loris",
            Site::NetDisconnect => "net-disconnect",
            Site::NetAcceptStorm => "net-accept-storm",
            Site::StoreTornWrite => "store-torn-write",
            Site::StoreBitRot => "store-bit-rot",
            Site::StoreLockStale => "store-lock-stale",
        }
    }
}

/// Per-site firing rates out of 1024 queries (0 = never, 1024 = every
/// query). The default is an aggressive-but-survivable campaign mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// `rates[site as usize]` is the site's firing probability ×1024.
    pub rates: [u16; NUM_SITES],
}

impl Default for ChaosConfig {
    fn default() -> Self {
        let mut rates = [0u16; NUM_SITES];
        rates[Site::VmAlloc as usize] = 40; // ~4% of allocations refused
        rates[Site::VmStepJitter as usize] = 80; // ~8% of runs jittered
        rates[Site::CachePoison as usize] = 128; // ~12% of inserts poisoned
        rates[Site::CacheEvictStorm as usize] = 32; // ~3% of inserts storm
        rates[Site::PoolWorkerPanic as usize] = 64; // ~6% of pulls kill a worker
        rates[Site::ManifestTruncate as usize] = 96; // ~9% of serve lines cut
        rates[Site::ManifestGarble as usize] = 96; // ~9% of serve lines mangled
        rates[Site::NetSlowLoris as usize] = 64; // ~6% of reads stall
        rates[Site::NetDisconnect as usize] = 64; // ~6% of replies dropped
        rates[Site::NetAcceptStorm as usize] = 48; // ~5% of accepts storm
        rates[Site::StoreTornWrite as usize] = 64; // ~6% of puts torn
        rates[Site::StoreBitRot as usize] = 96; // ~9% of puts bit-rotted
        rates[Site::StoreLockStale as usize] = 128; // ~12% of compactions contested
        ChaosConfig { rates }
    }
}

impl ChaosConfig {
    /// A config with every site firing on every query (worst case).
    pub fn always() -> Self {
        ChaosConfig {
            rates: [1024; NUM_SITES],
        }
    }

    /// A config with every site silent (an enabled plan that still
    /// counts queries but never fires).
    pub fn never() -> Self {
        ChaosConfig {
            rates: [0; NUM_SITES],
        }
    }

    /// Set one site's rate (×1024) in builder style.
    pub fn rate(mut self, site: Site, per_1024: u16) -> Self {
        self.rates[site as usize] = per_1024;
        self
    }
}

#[derive(Debug)]
struct Inner {
    seed: u64,
    config: ChaosConfig,
    queries: [AtomicU64; NUM_SITES],
    injected: [AtomicU64; NUM_SITES],
}

/// A deterministic, seed-driven fault plan.
///
/// Cloning shares the underlying counters (like `slo_obs::Recorder`),
/// so the plan handed to the VM, the cache and the pool is one plan and
/// `injected()` totals cover the whole stack.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<Inner>>,
}

// SplitMix64 finalizer: a full-avalanche 64-bit mix, the same one the
// proptest shim's TestRng builds on.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The no-op plan: every query is one `Option` discriminant branch.
    pub fn disabled() -> FaultPlan {
        FaultPlan { inner: None }
    }

    /// A plan firing at the default [`ChaosConfig`] rates under `seed`.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan::with_config(seed, ChaosConfig::default())
    }

    /// A plan with explicit per-site rates.
    pub fn with_config(seed: u64, config: ChaosConfig) -> FaultPlan {
        FaultPlan {
            inner: Some(Arc::new(Inner {
                seed,
                config,
                queries: Default::default(),
                injected: Default::default(),
            })),
        }
    }

    /// Whether this plan can ever fire.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The seed the plan was built with (`None` when disabled).
    pub fn seed(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.seed)
    }

    /// Query `site`: deterministically decide whether its next
    /// occurrence faults. The decision is a pure function of
    /// `(seed, site, query-ordinal)`; firing increments the site's
    /// injected counter.
    #[inline]
    pub fn should_fire(&self, site: Site) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                let idx = site as usize;
                let n = inner.queries[idx].fetch_add(1, Ordering::Relaxed);
                let rate = u64::from(inner.config.rates[idx]);
                // Pre-mix the (seed, site) pair before folding in the
                // ordinal: `seed ^ n` alone makes consecutive seeds
                // mere translations of one another's firing streams,
                // so short campaigns over seeds 0..K would all dodge
                // (or all hit) the same early ordinals.
                let h = mix(mix(inner.seed ^ ((idx as u64) << 56)).wrapping_add(n));
                let fire = (h & 1023) < rate;
                if fire {
                    inner.injected[idx].fetch_add(1, Ordering::Relaxed);
                }
                fire
            }
        }
    }

    /// A deterministic value in `0..=max` tied to the same query stream
    /// as [`should_fire`] — used by sites that need a magnitude (how
    /// far to truncate, how much budget to shave) alongside the firing
    /// decision. Does not advance the query counter and does not count
    /// as an injection.
    ///
    /// [`should_fire`]: FaultPlan::should_fire
    #[inline]
    pub fn magnitude(&self, site: Site, max: u64) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => {
                if max == 0 {
                    return 0;
                }
                let idx = site as usize;
                let n = inner.queries[idx].load(Ordering::Relaxed);
                mix(mix(inner.seed ^ ((idx as u64) << 56) ^ 0x5ca1_ab1e).wrapping_add(n))
                    % (max + 1)
            }
        }
    }

    /// How many times `site` has fired.
    pub fn injected(&self, site: Site) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.injected[site as usize].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Injected-fault counts for every site, indexed like
    /// [`ALL_SITES`].
    pub fn injected_by_site(&self) -> [u64; NUM_SITES] {
        let mut out = [0u64; NUM_SITES];
        if let Some(inner) = &self.inner {
            for (slot, counter) in out.iter_mut().zip(inner.injected.iter()) {
                *slot = counter.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Total injections across all sites.
    pub fn injected_total(&self) -> u64 {
        self.injected_by_site().iter().sum()
    }

    /// How many times `site` has been queried (fired or not).
    pub fn queries(&self, site: Site) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.queries[site as usize].load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// FNV-1a over arbitrary bytes — the workspace's stable content hash
/// (same constants as `slo-ir`'s fingerprinting), exposed here so the
/// journal and the retry schedule can derive per-job seeds without a
/// dependency on the IR crate.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires_and_counts_nothing() {
        let p = FaultPlan::disabled();
        for _ in 0..100 {
            assert!(!p.should_fire(Site::VmAlloc));
        }
        assert_eq!(p.injected_total(), 0);
        assert_eq!(p.queries(Site::VmAlloc), 0);
        assert!(!p.is_enabled());
    }

    #[test]
    fn firing_is_a_pure_function_of_seed_site_and_ordinal() {
        let record = |seed: u64| -> Vec<bool> {
            let p = FaultPlan::seeded(seed);
            (0..512).map(|_| p.should_fire(Site::CachePoison)).collect()
        };
        assert_eq!(record(7), record(7), "same seed, same decisions");
        assert_ne!(record(7), record(8), "different seeds diverge");
    }

    #[test]
    fn sites_have_independent_query_streams() {
        let a = FaultPlan::seeded(42);
        let b = FaultPlan::seeded(42);
        // Interleave queries to other sites on `a` only; VmAlloc's own
        // stream must be unaffected.
        let fa: Vec<bool> = (0..256)
            .map(|_| {
                a.should_fire(Site::ManifestGarble);
                a.should_fire(Site::VmAlloc)
            })
            .collect();
        let fb: Vec<bool> = (0..256).map(|_| b.should_fire(Site::VmAlloc)).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn rates_bound_firing() {
        let never = FaultPlan::with_config(3, ChaosConfig::never());
        let always = FaultPlan::with_config(3, ChaosConfig::always());
        for _ in 0..256 {
            assert!(!never.should_fire(Site::VmAlloc));
            assert!(always.should_fire(Site::VmAlloc));
        }
        assert_eq!(never.injected_total(), 0);
        assert_eq!(always.injected(Site::VmAlloc), 256);
        assert_eq!(never.queries(Site::VmAlloc), 256);
    }

    #[test]
    fn default_rates_fire_sometimes_but_not_always() {
        let p = FaultPlan::seeded(1);
        let fired = (0..2048).filter(|_| p.should_fire(Site::VmAlloc)).count();
        assert!(fired > 0, "a 4% site should fire in 2048 queries");
        assert!(fired < 1024, "a 4% site must not dominate");
    }

    #[test]
    fn magnitude_is_bounded_and_deterministic() {
        let p = FaultPlan::seeded(9);
        let q = FaultPlan::seeded(9);
        for max in [1u64, 10, 1000] {
            assert!(p.magnitude(Site::VmStepJitter, max) <= max);
            assert_eq!(
                p.magnitude(Site::VmStepJitter, max),
                q.magnitude(Site::VmStepJitter, max)
            );
        }
        assert_eq!(p.magnitude(Site::VmStepJitter, 0), 0);
        assert_eq!(FaultPlan::disabled().magnitude(Site::VmAlloc, 100), 0);
    }

    #[test]
    fn clones_share_counters() {
        let p = FaultPlan::with_config(5, ChaosConfig::always());
        let q = p.clone();
        p.should_fire(Site::PoolWorkerPanic);
        q.should_fire(Site::PoolWorkerPanic);
        assert_eq!(p.injected(Site::PoolWorkerPanic), 2);
        assert_eq!(q.injected_total(), 2);
    }

    #[test]
    fn site_names_are_stable_and_distinct() {
        let mut names: Vec<&str> = ALL_SITES.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_SITES);
    }

    #[test]
    fn fnv1a_matches_reference_vector() {
        // FNV-1a("a") from the published reference constants.
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
