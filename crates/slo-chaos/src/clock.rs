//! A clock that can be real or virtual.
//!
//! The supervisor sleeps between retry attempts. Under test (and in
//! seeded chaos campaigns) those sleeps must cost nothing and stay
//! deterministic, so the service takes a [`Clock`] instead of calling
//! `std::thread::sleep` directly: the virtual variant advances an
//! atomic counter instead of blocking, and tests can read how much
//! simulated time a schedule consumed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Milliseconds-resolution clock, real or virtual.
///
/// Clones of a virtual clock share the same underlying counter.
#[derive(Debug, Clone, Default)]
pub enum Clock {
    /// Wall time: `now_ms` reads a process-wide monotonic clock and
    /// `sleep_ms` actually blocks.
    #[default]
    Real,
    /// Simulated time: `sleep_ms` advances the counter without
    /// blocking.
    Virtual(Arc<AtomicU64>),
}

fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

impl Clock {
    /// A fresh virtual clock starting at 0 ms.
    pub fn virtual_clock() -> Clock {
        Clock::Virtual(Arc::new(AtomicU64::new(0)))
    }

    /// Whether sleeping on this clock blocks the calling thread.
    pub fn is_real(&self) -> bool {
        matches!(self, Clock::Real)
    }

    /// Current time in milliseconds (monotonic; origin is the process
    /// start for the real clock, 0 for a fresh virtual clock).
    pub fn now_ms(&self) -> u64 {
        match self {
            Clock::Real => process_epoch().elapsed().as_millis() as u64,
            Clock::Virtual(t) => t.load(Ordering::Relaxed),
        }
    }

    /// Sleep for `ms`: blocks on the real clock, advances the counter
    /// on a virtual one.
    pub fn sleep_ms(&self, ms: u64) {
        match self {
            Clock::Real => std::thread::sleep(Duration::from_millis(ms)),
            Clock::Virtual(t) => {
                t.fetch_add(ms, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_sleep_advances_without_blocking() {
        let c = Clock::virtual_clock();
        let wall = Instant::now();
        c.sleep_ms(10_000);
        c.sleep_ms(5_000);
        assert_eq!(c.now_ms(), 15_000);
        assert!(
            wall.elapsed() < Duration::from_secs(5),
            "virtual sleep must not block"
        );
    }

    #[test]
    fn virtual_clones_share_time() {
        let c = Clock::virtual_clock();
        let d = c.clone();
        c.sleep_ms(7);
        assert_eq!(d.now_ms(), 7);
    }

    #[test]
    fn real_clock_is_monotonic() {
        let c = Clock::Real;
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
        assert!(c.is_real());
        assert!(!Clock::virtual_clock().is_real());
    }
}
