//! Bounded deterministic exponential backoff.
//!
//! The supervisor retries *transient* job failures (caught panics,
//! exhausted budgets, injected faults) and quarantines a job once its
//! attempts are spent. The delays between attempts come from a
//! [`BackoffSchedule`]: exponential growth from a base, a hard per-step
//! cap, and seed-derived jitter folded in such that the schedule is
//! (a) a pure function of `(seed, policy)` and (b) monotonically
//! non-decreasing — both properties are pinned by property tests.

use crate::mix;

/// Retry policy for transient job failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job (1 = never retry). Once `max_attempts`
    /// transient failures accumulate, the job is quarantined.
    pub max_attempts: u32,
    /// Delay before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Hard cap on any single delay, in milliseconds.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 10,
            max_delay_ms: 1_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt, instant
    /// quarantine on a transient failure).
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// The deterministic backoff schedule this policy yields under
    /// `seed` (callers derive `seed` from the job identity so distinct
    /// jobs do not thunder in lockstep).
    pub fn schedule(&self, seed: u64) -> BackoffSchedule {
        BackoffSchedule {
            policy: *self,
            seed,
            retries_done: 0,
            last_ms: 0,
        }
    }
}

/// Iterator over retry delays: exponential, capped, jittered,
/// reproducible and non-decreasing.
#[derive(Debug, Clone)]
pub struct BackoffSchedule {
    policy: RetryPolicy,
    seed: u64,
    retries_done: u32,
    last_ms: u64,
}

impl BackoffSchedule {
    /// Delay in milliseconds before the next retry, or `None` once the
    /// policy's attempts are exhausted (at most `max_attempts - 1`
    /// delays: the first attempt needs none).
    pub fn next_delay_ms(&mut self) -> Option<u64> {
        if self.retries_done + 1 >= self.policy.max_attempts {
            return None;
        }
        let k = self.retries_done;
        self.retries_done += 1;
        // base * 2^k, saturating well before u64 overflow.
        let exp = self
            .policy
            .base_delay_ms
            .saturating_mul(1u64.checked_shl(k).unwrap_or(u64::MAX));
        // Up to +25% deterministic jitter, then the per-step cap.
        let jitter = mix(self.seed ^ u64::from(k)) % (exp / 4 + 1);
        let raw = exp.saturating_add(jitter).min(self.policy.max_delay_ms);
        // Clamping at `max_delay_ms` can make a later raw delay smaller
        // than an earlier jittered one; carry the running maximum so
        // the schedule callers see never shrinks.
        self.last_ms = self.last_ms.max(raw);
        Some(self.last_ms)
    }

    /// Every remaining delay, drained into a vector.
    pub fn collect_all(mut self) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(d) = self.next_delay_ms() {
            out.push(d);
        }
        out
    }
}

impl Iterator for BackoffSchedule {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        self.next_delay_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_length_is_attempts_minus_one() {
        let p = RetryPolicy {
            max_attempts: 4,
            ..RetryPolicy::default()
        };
        assert_eq!(p.schedule(1).collect_all().len(), 3);
        assert!(RetryPolicy::no_retries()
            .schedule(1)
            .collect_all()
            .is_empty());
    }

    #[test]
    fn delays_grow_and_respect_the_cap() {
        let p = RetryPolicy {
            max_attempts: 12,
            base_delay_ms: 10,
            max_delay_ms: 300,
        };
        let delays = p.schedule(99).collect_all();
        assert!(delays.windows(2).all(|w| w[0] <= w[1]), "{delays:?}");
        assert!(delays.iter().all(|&d| d <= 300), "{delays:?}");
        assert!(delays[0] >= 10);
    }

    #[test]
    fn same_seed_same_schedule_different_seed_jitters() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay_ms: 100,
            max_delay_ms: 100_000,
        };
        assert_eq!(p.schedule(5).collect_all(), p.schedule(5).collect_all());
        assert_ne!(p.schedule(5).collect_all(), p.schedule(6).collect_all());
    }
}
