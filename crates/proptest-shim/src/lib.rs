//! Offline stand-in for the `proptest` crate.
//!
//! The workspace's property tests were written against the real
//! `proptest` API, but this build environment has no access to a crate
//! registry. This crate implements the (small) API subset those tests
//! use — the `proptest!` macro, the `Strategy` trait with
//! `prop_map`/`prop_flat_map`/`prop_recursive`, `prop_oneof!`,
//! collection/sample/num strategies, and the `prop_assert*` macros —
//! on top of a deterministic splitmix64 RNG, so the suite runs the
//! same case sequence on every machine.
//!
//! Strategy-integrated shrinking is intentionally absent: a failing
//! `proptest!` case reports the case index and the per-test seed, which
//! is enough to reproduce deterministically. For callers that need an
//! actual minimized artifact (the differential fuzzer writes textual-IR
//! repros), [`shrink::minimize`] provides greedy delta-debugging over a
//! caller-supplied reduction relation.

use std::fmt;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// deterministic RNG
// ---------------------------------------------------------------------------

/// Splitmix64: tiny, fast, and plenty good for test-case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Derive a per-test seed from the test's name so every property
    /// test explores a different (but fixed) sequence.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection sampling to avoid modulo bias on huge bounds.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    pub fn unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// test-case plumbing
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — regenerate and retry the case.
    Reject(String),
    /// A `prop_assert*!` failed — the property is violated.
    Fail(String),
}

pub type TestCaseResult = Result<(), TestCaseError>;

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Mirror of `proptest::test_runner::Config` for the options we honor.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Max `prop_assume!` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Drives one property test: generate → run → retry on reject.
/// Called by the expansion of `proptest!`.
pub fn run_property_test<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut rng = TestRng::from_name(name);
    let mut rejects: u32 = 0;
    let mut passed: u32 = 0;
    while passed < config.cases {
        let case_seed = rng.state;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest {name}: too many prop_assume! rejections \
                         ({rejects}) after {passed} passing cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {name}: case #{passed} failed (case seed {case_seed:#x}): {msg}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait + combinators
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking; `generate`
/// produces a final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `self` is the leaf; `branch` builds a
    /// strategy for one level given the strategy for the level below.
    /// `depth` bounds the recursion; the size hints are accepted for
    /// API compatibility but unused.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut level: BoxedStrategy<Self::Value> = BoxedStrategy::new(self);
        for _ in 0..depth {
            level = BoxedStrategy::new(branch(level.clone()));
        }
        level
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// Reference-counted type-erased strategy (clonable, unlike `Box`).
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> BoxedStrategy<V> {
    pub fn new<S: Strategy<Value = V> + 'static>(s: S) -> Self {
        BoxedStrategy(Rc::new(s))
    }
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// `Just(v)`: always produce a clone of `v`.
#[derive(Clone, Debug)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// primitive strategies: ranges, any::<T>(), tuples
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = if span > u64::MAX as u128 {
                    // Range wider than u64 (e.g. 0u64..u64::MAX is fine,
                    // but i64::MIN..i64::MAX spans nearly 2^64): take a
                    // raw draw and reduce mod span.
                    (rng.next_u64() as u128) % span
                } else {
                    rng.below(span as u64) as u128
                };
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                let off = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                (lo + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Arbitrary bit patterns include NaN/inf; that matches proptest.
        f64::from_bits(rng.next_u64())
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident . $i:tt),+)),+ $(,)?) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

// ---------------------------------------------------------------------------
// collection / sample / num strategies
// ---------------------------------------------------------------------------

/// Size specification for collection strategies: a fixed length or a
/// (half-open) range of lengths.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

pub mod collection {
    use super::*;
    use std::collections::BTreeSet;

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let want = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // The element domain may be smaller than `want`; bail out
            // after a bounded number of duplicate draws.
            let mut misses = 0usize;
            while out.len() < want && misses < 64 {
                if !out.insert(self.elem.generate(rng)) {
                    misses += 1;
                }
            }
            out
        }
    }
}

pub mod sample {
    use super::*;

    pub struct Select<V: Clone> {
        options: Vec<V>,
    }

    /// Uniformly select one of the given values.
    pub fn select<V: Clone>(options: Vec<V>) -> Select<V> {
        assert!(!options.is_empty(), "select of empty vec");
        Select { options }
    }

    impl<V: Clone> Strategy for Select<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

pub mod num {
    pub mod f64 {
        use crate::{Strategy, TestRng};

        /// Strategy for normal (non-zero, non-subnormal, finite) f64s.
        #[derive(Clone, Copy, Debug)]
        pub struct NormalF64;

        pub const NORMAL: NormalF64 = NormalF64;

        impl Strategy for NormalF64 {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let v = f64::from_bits(rng.next_u64());
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------------

/// The main entry point: wraps `fn name(arg in strategy, ...) { body }`
/// items into `#[test]` functions driven by [`run_property_test`].
#[macro_export]
macro_rules! proptest {
    // With a config override.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property_test(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    |rng: &mut $crate::TestRng| -> $crate::TestCaseResult {
                        $(
                            let $arg = $crate::Strategy::generate(&($strat), rng);
                        )+
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
    // Default config.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( $crate::BoxedStrategy::new($strat) ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

// ---------------------------------------------------------------------------
// prelude
// ---------------------------------------------------------------------------

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::sample;
    }
}

// ---------------------------------------------------------------------------
// shrinking
// ---------------------------------------------------------------------------

pub mod shrink {
    //! Greedy delta-debugging minimization.
    //!
    //! Real proptest shrinks through its `ValueTree`s; this shim keeps
    //! generation and shrinking decoupled instead: the caller supplies a
    //! *reduction relation* (`candidates`) producing strictly simpler
    //! variants of a value, and a *failure predicate* that must keep
    //! holding. [`minimize`] walks the relation greedily to a local
    //! minimum — every candidate of the result either stops failing or
    //! is no longer produced.

    /// Bookkeeping from one [`minimize`] run.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct ShrinkStats {
        /// Reduction steps accepted (the value got simpler this many times).
        pub accepted: usize,
        /// Candidates tried in total (including rejected ones).
        pub attempts: usize,
    }

    /// Greedily minimize `seed` while `still_fails` holds.
    ///
    /// `candidates` must return *simpler* variants of its input (the
    /// relation must be well-founded, or the `max_attempts` cap ends the
    /// walk). The first failing candidate of each round is accepted and
    /// the round restarts from it, so the result is a local minimum of
    /// the relation, not necessarily a global one — the classic ddmin
    /// trade-off.
    pub fn minimize<T, C, P>(
        seed: T,
        mut candidates: C,
        mut still_fails: P,
        max_attempts: usize,
    ) -> (T, ShrinkStats)
    where
        C: FnMut(&T) -> Vec<T>,
        P: FnMut(&T) -> bool,
    {
        let mut cur = seed;
        let mut stats = ShrinkStats::default();
        'outer: loop {
            for cand in candidates(&cur) {
                if stats.attempts >= max_attempts {
                    break 'outer;
                }
                stats.attempts += 1;
                if still_fails(&cand) {
                    cur = cand;
                    stats.accepted += 1;
                    continue 'outer;
                }
            }
            break;
        }
        (cur, stats)
    }
}

#[cfg(test)]
mod shim_tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_in_bounds(x in 5u64..10, v in prop::collection::vec(0i64..4, 2..6)) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| (0..4).contains(&e)));
        }

        #[test]
        fn oneof_and_assume(x in prop_oneof![Just(1u32), Just(2u32)], y in 0u32..100) {
            prop_assume!(y != 50);
            prop_assert!(x == 1 || x == 2);
            prop_assert_eq!(x + y, y + x, "commutativity for x={} y={}", x, y);
        }
    }

    #[test]
    fn determinism() {
        let mut a = super::TestRng::from_name("t");
        let mut b = super::TestRng::from_name("t");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn minimize_reaches_local_minimum() {
        // failure: the vec still contains a 7. Minimal form: [7].
        let seed = vec![3, 1, 7, 4, 7, 9];
        let (min, stats) = super::shrink::minimize(
            seed,
            |v: &Vec<i32>| {
                (0..v.len())
                    .map(|i| {
                        let mut c = v.clone();
                        c.remove(i);
                        c
                    })
                    .collect()
            },
            |v| v.contains(&7),
            10_000,
        );
        assert_eq!(min, vec![7]);
        assert!(stats.accepted >= 4);
        assert!(stats.attempts >= stats.accepted);
    }

    #[test]
    fn minimize_respects_attempt_cap() {
        let (out, stats) = super::shrink::minimize(
            100u64,
            |&n: &u64| if n > 0 { vec![n - 1] } else { vec![] },
            |_| true,
            5,
        );
        assert_eq!(out, 95);
        assert_eq!(stats.attempts, 5);
    }
}
