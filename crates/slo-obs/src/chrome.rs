//! Chrome `trace_event` JSON serialization.
//!
//! Emits the "JSON Object Format" variant — a top-level object with a
//! `traceEvents` array — which both `chrome://tracing` and Perfetto
//! load directly. Every event carries the full golden schema checked by
//! [`crate::conform::check_chrome_trace`]: `name`, `cat`, `ph`, `ts`,
//! `dur`, `pid`, `tid`, `args`.

use crate::{ArgValue, TraceEvent};
use std::fmt::Write;

/// Serialize events (plus a dropped-event count) to Chrome trace JSON.
pub fn to_chrome_json(events: &[TraceEvent], dropped: u64) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_event(&mut out, ev);
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped\":{dropped}}}}}"
    );
    out
}

fn write_event(out: &mut String, ev: &TraceEvent) {
    out.push_str("{\"name\":");
    write_json_string(out, &ev.name);
    out.push_str(",\"cat\":");
    write_json_string(out, ev.cat);
    let _ = write!(
        out,
        ",\"ph\":\"{}\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{",
        ev.kind.ph(),
        ev.ts_us,
        ev.dur_us,
        ev.tid
    );
    for (i, (k, v)) in ev.args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(out, k);
        out.push(':');
        write_arg(out, v);
    }
    out.push_str("}}");
}

fn write_arg(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::Int(i) => {
            let _ = write!(out, "{i}");
        }
        ArgValue::Float(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f}");
            } else {
                // JSON has no NaN/Inf; null keeps the document valid.
                out.push_str("null");
            }
        }
        ArgValue::Str(s) => write_json_string(out, s),
        ArgValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, Recorder};

    #[test]
    fn empty_trace_is_valid_shape() {
        let json = to_chrome_json(&[], 0);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"dropped\":0"));
    }

    #[test]
    fn event_carries_full_schema() {
        let ev = TraceEvent {
            kind: EventKind::Complete,
            name: "legality".into(),
            cat: "pipeline",
            ts_us: 10,
            dur_us: 5,
            tid: 1,
            args: vec![
                ("n", ArgValue::Int(3)),
                ("ok", ArgValue::Bool(true)),
                ("msg", ArgValue::Str("a \"b\"\n".into())),
                ("rate", ArgValue::Float(0.5)),
            ],
        };
        let json = to_chrome_json(&[ev], 2);
        for needle in [
            "\"name\":\"legality\"",
            "\"cat\":\"pipeline\"",
            "\"ph\":\"X\"",
            "\"ts\":10",
            "\"dur\":5",
            "\"pid\":1",
            "\"tid\":1",
            "\"n\":3",
            "\"ok\":true",
            "\"msg\":\"a \\\"b\\\"\\n\"",
            "\"rate\":0.5",
            "\"dropped\":2",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn recorder_roundtrip_passes_conformance() {
        let r = Recorder::enabled();
        {
            let _outer = r.span("pipeline", "compile");
            let _inner = r.span("pipeline", "legality");
        }
        r.counter("vm", "vm.instructions", 42.0);
        r.instant(
            "service",
            "cache-hit",
            vec![("job", ArgValue::Str("j0".into()))],
        );
        let json = r.to_chrome_json();
        crate::conform::check_chrome_trace(&json).expect("conformant");
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let ev = TraceEvent {
            kind: EventKind::Counter,
            name: "c".into(),
            cat: "vm",
            ts_us: 0,
            dur_us: 0,
            tid: 1,
            args: vec![("value", ArgValue::Float(f64::NAN))],
        };
        let json = to_chrome_json(&[ev], 0);
        assert!(json.contains("\"value\":null"));
    }
}
