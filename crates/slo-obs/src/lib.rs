//! # slo-obs — observability substrate for the SLO workspace
//!
//! Lock-free span/event recording shared by the pipeline
//! (`slo::pipeline`), the execution substrate (`slo-vm`) and the batch
//! service (`slo-service`), exportable as Chrome `trace_event` JSON
//! (loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)).
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** A [`Recorder`] is either *enabled*
//!    (it owns a buffer) or *disabled* (the no-op recorder: a `None`
//!    inside). Every recording entry point starts with an
//!    `is_enabled()` check that compiles to one branch on an `Option`
//!    discriminant — the decoded VM hot loop stays within noise of the
//!    untraced baseline (asserted by the `interp_hot_loop` bench).
//! 2. **Lock-free when enabled.** Events land in a bounded
//!    slot array: a writer claims an index with one atomic
//!    `fetch_add` and initializes its private slot — no mutex, no
//!    contention between worker threads beyond the shared counter.
//! 3. **Bounded.** The buffer never grows; once full, events are
//!    counted in [`Recorder::dropped`] instead of stored, so tracing a
//!    100M-instruction VM run (sampled) or a huge batch stays bounded.
//!
//! The [`conform`] module is the other half of the contract: a
//! golden-schema checker for the emitted Chrome trace (every event has
//! `ph`/`ts`/`dur`/`name`, spans nest properly per thread) and a
//! line-by-line validator for the Prometheus exposition format the
//! service exports.
//!
//! # Examples
//!
//! ```
//! use slo_obs::Recorder;
//!
//! let rec = Recorder::enabled();
//! {
//!     let mut span = rec.span("pipeline", "legality");
//!     span.arg("types", 3i64);
//!     // ... the work being measured ...
//! } // span recorded on drop
//! rec.counter("vm", "vm.instructions", 1234.0);
//! assert_eq!(rec.len(), 2);
//! let json = rec.to_chrome_json();
//! slo_obs::conform::check_chrome_trace(&json).expect("schema-valid");
//!
//! // the no-op recorder records nothing, by construction
//! let off = Recorder::disabled();
//! off.span("pipeline", "legality");
//! assert_eq!(off.len(), 0);
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod conform;

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Default event-buffer capacity of [`Recorder::enabled`].
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// A typed argument value attached to an event (`args` in the Chrome
/// trace format).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        // Counters in this workspace stay far below 2^63; saturate
        // rather than wrap if one ever does not.
        ArgValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// What kind of Chrome trace event a [`TraceEvent`] serializes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A complete span (`ph: "X"`, has a duration).
    Complete,
    /// A point-in-time instant (`ph: "i"`).
    Instant,
    /// A counter sample (`ph: "C"`, value in `args`).
    Counter,
}

impl EventKind {
    /// The Chrome `ph` (phase) letter.
    pub fn ph(self) -> char {
        match self {
            EventKind::Complete => 'X',
            EventKind::Instant => 'i',
            EventKind::Counter => 'C',
        }
    }
}

/// One recorded event. Timestamps are microseconds since the owning
/// [`Recorder`] was created (the Chrome format's expected unit).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event kind (complete span / instant / counter).
    pub kind: EventKind,
    /// Event name (span names are the pipeline phase anchors).
    pub name: String,
    /// Category (`pipeline` / `vm` / `service`).
    pub cat: &'static str,
    /// Start timestamp in microseconds since recorder creation.
    pub ts_us: u64,
    /// Duration in microseconds (0 for instants and counters).
    pub dur_us: u64,
    /// Dense per-process thread id (assigned on first use per thread).
    pub tid: u64,
    /// Key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// The enabled recorder's shared state.
struct Inner {
    start: Instant,
    slots: Box<[OnceLock<TraceEvent>]>,
    next: AtomicUsize,
    dropped: AtomicU64,
}

/// A cheaply cloneable span/event recorder.
///
/// `Recorder::disabled()` (also the `Default`) is the no-op recorder:
/// every method is a branch-and-return. `Recorder::enabled()` buffers
/// events lock-free up to a fixed capacity. Clones share the same
/// buffer, so one recorder can be threaded through the CLI, the
/// pipeline, the service workers and the VM of a single request.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Recorder(disabled)"),
            Some(i) => write!(
                f,
                "Recorder(enabled, {} events, {} dropped)",
                i.next.load(Ordering::Relaxed).min(i.slots.len()),
                i.dropped.load(Ordering::Relaxed)
            ),
        }
    }
}

/// Dense thread id: the first event a thread records assigns it the
/// next integer. (`std::thread::ThreadId` has no stable numeric form.)
fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

impl Recorder {
    /// The no-op recorder: records nothing, costs one branch per call.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// An enabled recorder with the default buffer capacity
    /// ([`DEFAULT_CAPACITY`] events).
    pub fn enabled() -> Recorder {
        Recorder::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled recorder buffering at most `capacity` events; later
    /// events are counted in [`Recorder::dropped`] instead of stored.
    pub fn with_capacity(capacity: usize) -> Recorder {
        let slots: Box<[OnceLock<TraceEvent>]> =
            (0..capacity.max(1)).map(|_| OnceLock::new()).collect();
        Recorder {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                slots,
                next: AtomicUsize::new(0),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since this recorder was created (0 when disabled).
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(i) => i.start.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    fn push(&self, ev: TraceEvent) {
        let Some(inner) = &self.inner else { return };
        let idx = inner.next.fetch_add(1, Ordering::Relaxed);
        match inner.slots.get(idx) {
            // This thread owns slot `idx` exclusively (fetch_add hands
            // each index out once), so `set` never contends.
            Some(slot) => {
                let _ = slot.set(ev);
            }
            None => {
                inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Record a complete span with explicit timestamps (low-level; most
    /// callers use [`Recorder::span`]).
    pub fn complete(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        ts_us: u64,
        dur_us: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.push(TraceEvent {
            kind: EventKind::Complete,
            name: name.into(),
            cat,
            ts_us,
            dur_us,
            tid: current_tid(),
            args,
        });
    }

    /// Record an instant event.
    pub fn instant(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.push(TraceEvent {
            kind: EventKind::Instant,
            name: name.into(),
            cat,
            ts_us: self.now_us(),
            dur_us: 0,
            tid: current_tid(),
            args,
        });
    }

    /// Record a counter sample (`ph: "C"`, plotted as a track by
    /// Perfetto).
    pub fn counter(&self, cat: &'static str, name: impl Into<String>, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.push(TraceEvent {
            kind: EventKind::Counter,
            name: name.into(),
            cat,
            ts_us: self.now_us(),
            dur_us: 0,
            tid: current_tid(),
            args: vec![("value", ArgValue::Float(value))],
        });
    }

    /// Open a span; it is recorded as a complete event when the guard
    /// drops (or [`SpanGuard::done`] is called). Guards are
    /// stack-scoped, so spans on one thread always nest properly.
    pub fn span(&self, cat: &'static str, name: impl Into<String>) -> SpanGuard<'_> {
        SpanGuard {
            rec: self,
            name: self.is_enabled().then(|| name.into()),
            cat,
            ts_us: self.now_us(),
            args: Vec::new(),
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(i) => i.next.load(Ordering::Relaxed).min(i.slots.len()),
            None => 0,
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events that arrived after the buffer filled up.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(i) => i.dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// A snapshot of the buffered events, in claim order. Slots claimed
    /// by a thread that has not finished initializing them yet are
    /// skipped (a benign race: the snapshot is a point-in-time read).
    pub fn events(&self) -> Vec<TraceEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let n = inner.next.load(Ordering::Relaxed).min(inner.slots.len());
        inner.slots[..n]
            .iter()
            .filter_map(|s| s.get().cloned())
            .collect()
    }

    /// Serialize the buffered events as Chrome `trace_event` JSON (see
    /// [`chrome::to_chrome_json`]).
    pub fn to_chrome_json(&self) -> String {
        chrome::to_chrome_json(&self.events(), self.dropped())
    }
}

/// An open span; records a complete event when dropped. Obtained from
/// [`Recorder::span`].
#[must_use = "a span measures the scope it lives in; bind it with `let`"]
pub struct SpanGuard<'r> {
    rec: &'r Recorder,
    /// `None` when the recorder is disabled — drop is then a no-op.
    name: Option<String>,
    cat: &'static str,
    ts_us: u64,
    args: Vec<(&'static str, ArgValue)>,
}

impl SpanGuard<'_> {
    /// Attach an argument (shown under the span in the trace viewer).
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if self.name.is_some() {
            self.args.push((key, value.into()));
        }
    }

    /// Close the span now (equivalent to dropping it).
    pub fn done(self) {}
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            let dur = self.rec.now_us().saturating_sub(self.ts_us);
            self.rec.complete(
                self.cat,
                name,
                self.ts_us,
                dur,
                std::mem::take(&mut self.args),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        {
            let mut s = r.span("pipeline", "legality");
            s.arg("k", 1i64);
        }
        r.counter("vm", "c", 1.0);
        r.instant("vm", "i", vec![]);
        assert_eq!(r.len(), 0);
        assert!(r.is_empty());
        assert!(r.events().is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn spans_record_on_drop_with_args() {
        let r = Recorder::enabled();
        {
            let mut s = r.span("pipeline", "plan");
            s.arg("types", 2i64);
            s.arg("scheme", "ISPBO");
        }
        let evs = r.events();
        assert_eq!(evs.len(), 1);
        let e = &evs[0];
        assert_eq!(e.kind, EventKind::Complete);
        assert_eq!(e.name, "plan");
        assert_eq!(e.cat, "pipeline");
        assert_eq!(e.args.len(), 2);
    }

    #[test]
    fn buffer_is_bounded_and_counts_drops() {
        let r = Recorder::with_capacity(4);
        for i in 0..10 {
            r.counter("vm", format!("c{i}"), i as f64);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.events().len(), 4);
    }

    #[test]
    fn concurrent_writers_lose_no_events_under_capacity() {
        let r = Recorder::with_capacity(4096);
        std::thread::scope(|s| {
            for t in 0..8 {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        r.counter("vm", format!("t{t}.{i}"), i as f64);
                    }
                });
            }
        });
        assert_eq!(r.len(), 800);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.events().len(), 800);
    }

    #[test]
    fn timestamps_are_monotone_per_thread() {
        let r = Recorder::enabled();
        let outer = r.span("pipeline", "outer");
        {
            let _inner = r.span("pipeline", "inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        drop(outer);
        let evs = r.events();
        // inner drops first, so it is recorded first
        let inner = evs.iter().find(|e| e.name == "inner").expect("inner");
        let outer = evs.iter().find(|e| e.name == "outer").expect("outer");
        assert!(inner.ts_us >= outer.ts_us);
        assert!(inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us);
    }
}
