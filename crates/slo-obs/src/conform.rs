//! Conformance checks for the exported observability surfaces.
//!
//! Two validators, used both by the test suite and by the
//! `slo trace-check` CLI subcommand (the CI `trace-smoke` job):
//!
//! * [`check_chrome_trace`] — golden-schema validation of Chrome
//!   `trace_event` JSON: every event has `name`/`cat`/`ph`/`ts`/`dur`/
//!   `pid`/`tid`, phases are known letters, and complete (`"X"`) spans
//!   nest properly per thread.
//! * [`check_prometheus`] — line-by-line validation of the Prometheus
//!   text exposition format emitted by `slo serve`'s `metrics prom`.
//!
//! The module carries its own minimal JSON parser: `slo-obs` sits at
//! the bottom of the dependency graph (everything depends on it), so it
//! cannot borrow the `bench` crate's hand-rolled JSON support.

use std::collections::HashMap;

/// A parsed JSON value (subset sufficient for trace documents).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (insertion order is not preserved; conformance checks
    /// are key-lookup only).
    Obj(HashMap<String, JsonValue>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset and message.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number '{s}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not produced by our
                            // serializer; map them to the replacement
                            // char rather than rejecting the document.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = HashMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut arr = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(arr));
        }
        loop {
            self.skip_ws();
            arr.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(arr));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

/// A summary of a schema-valid Chrome trace.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Number of events in `traceEvents`.
    pub events: usize,
    /// Number of complete (`"X"`) spans.
    pub spans: usize,
    /// Distinct event names, sorted.
    pub names: Vec<String>,
    /// Dropped-event count from `otherData.dropped` (0 if absent).
    pub dropped: u64,
}

impl TraceSummary {
    /// Whether an event with this exact name is present.
    pub fn has(&self, name: &str) -> bool {
        self.names.iter().any(|n| n == name)
    }
}

/// Golden-schema validation of a Chrome `trace_event` JSON document.
///
/// Checks, in order:
/// 1. the document parses and has a `traceEvents` array;
/// 2. every event is an object with string `name`, string `cat`, a
///    one-letter `ph` in `{X,i,C,B,E,M}`, numeric non-negative `ts`
///    and `dur`, and numeric `pid`/`tid`;
/// 3. per `tid`, complete (`"X"`) spans nest: sorted by start (ties:
///    longer first), each span starts at-or-after its enclosing span's
///    start and ends at-or-before its end — no partial overlap.
///
/// Returns a [`TraceSummary`] for follow-on assertions (e.g. "all
/// seven pipeline phases present").
pub fn check_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = parse_json(text).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    if let Some(d) = doc
        .get("otherData")
        .and_then(|o| o.get("dropped"))
        .and_then(JsonValue::as_num)
    {
        summary.dropped = d as u64;
    }

    // (tid, ts, end) per complete span, for the nesting check.
    let mut spans: Vec<(u64, u64, u64)> = Vec::new();
    let mut names: Vec<String> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing string 'name'"))?;
        ev.get("cat")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i} ({name}): missing string 'cat'"))?;
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i} ({name}): missing 'ph'"))?;
        if !matches!(ph, "X" | "i" | "C" | "B" | "E" | "M") {
            return Err(format!("event {i} ({name}): unknown ph '{ph}'"));
        }
        let ts = ev
            .get("ts")
            .and_then(JsonValue::as_num)
            .ok_or_else(|| format!("event {i} ({name}): missing numeric 'ts'"))?;
        let dur = ev
            .get("dur")
            .and_then(JsonValue::as_num)
            .ok_or_else(|| format!("event {i} ({name}): missing numeric 'dur'"))?;
        if ts < 0.0 || dur < 0.0 {
            return Err(format!("event {i} ({name}): negative ts/dur"));
        }
        ev.get("pid")
            .and_then(JsonValue::as_num)
            .ok_or_else(|| format!("event {i} ({name}): missing numeric 'pid'"))?;
        let tid = ev
            .get("tid")
            .and_then(JsonValue::as_num)
            .ok_or_else(|| format!("event {i} ({name}): missing numeric 'tid'"))?;

        names.push(name.to_string());
        if ph == "X" {
            summary.spans += 1;
            spans.push((tid as u64, ts as u64, ts as u64 + dur as u64));
        }
    }

    // Nesting: per tid, sweep spans sorted by (start asc, end desc)
    // with a stack of open intervals.
    spans.sort_by_key(|a| (a.0, a.1, std::cmp::Reverse(a.2)));
    let mut stack: Vec<(u64, u64, u64)> = Vec::new();
    for &(tid, start, end) in &spans {
        while let Some(&(ttid, _, tend)) = stack.last() {
            if ttid != tid || tend <= start {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(_, tstart, tend)) = stack.last() {
            if start < tstart || end > tend {
                return Err(format!(
                    "spans overlap without nesting on tid {tid}: \
                     [{start},{end}] vs enclosing [{tstart},{tend}]"
                ));
            }
        }
        stack.push((tid, start, end));
    }

    names.sort();
    names.dedup();
    summary.names = names;
    Ok(summary)
}

/// A summary of a valid Prometheus exposition document.
#[derive(Debug, Clone, Default)]
pub struct PromSummary {
    /// Metric family names that have a `# TYPE` line, sorted.
    pub families: Vec<String>,
    /// Total number of sample lines.
    pub samples: usize,
}

impl PromSummary {
    /// Whether a metric family with this name was declared.
    pub fn has(&self, family: &str) -> bool {
        self.families.iter().any(|f| f == family)
    }
}

/// Line-by-line validation of the Prometheus text exposition format.
///
/// Rules enforced: `# HELP <name> <text>` and
/// `# TYPE <name> <counter|gauge|histogram|summary|untyped>` comment
/// shapes; sample lines are `name{labels} value` or `name value` with
/// a valid metric identifier, balanced quoted label values and a
/// parseable float; a sample whose base family has a `# TYPE` line
/// must appear *after* it.
pub fn check_prometheus(text: &str) -> Result<PromSummary, String> {
    fn valid_metric_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    let mut typed: Vec<String> = Vec::new();
    let mut summary = PromSummary::default();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let n = lineno + 1;
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(body) = rest.strip_prefix("HELP ") {
                let name = body.split_whitespace().next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: HELP with invalid metric name '{name}'"));
                }
            } else if let Some(body) = rest.strip_prefix("TYPE ") {
                let mut it = body.split_whitespace();
                let name = it.next().unwrap_or("");
                let kind = it.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: TYPE with invalid metric name '{name}'"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {n}: unknown metric type '{kind}'"));
                }
                typed.push(name.to_string());
            }
            // Other comments are allowed and ignored.
            continue;
        }
        if line.starts_with('#') {
            continue; // bare comment
        }

        // Sample line: name[{labels}] value [timestamp]
        let (name_part, rest) = match line.find(['{', ' ']) {
            Some(idx) => (&line[..idx], &line[idx..]),
            None => return Err(format!("line {n}: sample without value: '{line}'")),
        };
        if !valid_metric_name(name_part) {
            return Err(format!("line {n}: invalid metric name '{name_part}'"));
        }
        let value_part = if let Some(labels_rest) = rest.strip_prefix('{') {
            // Scan to the closing brace, honouring quoted label values.
            let mut in_str = false;
            let mut esc = false;
            let mut close = None;
            for (i, c) in labels_rest.char_indices() {
                if esc {
                    esc = false;
                } else if in_str && c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = !in_str;
                } else if !in_str && c == '}' {
                    close = Some(i);
                    break;
                }
            }
            let close = close.ok_or_else(|| format!("line {n}: unterminated label set"))?;
            let labels = &labels_rest[..close];
            for pair in split_labels(labels) {
                let pair = pair.trim();
                if pair.is_empty() {
                    continue;
                }
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("line {n}: label without '=': '{pair}'"))?;
                if !valid_metric_name(k.trim()) {
                    return Err(format!("line {n}: invalid label name '{k}'"));
                }
                let v = v.trim();
                if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                    return Err(format!("line {n}: label value not quoted: '{v}'"));
                }
            }
            &labels_rest[close + 1..]
        } else {
            rest
        };
        let mut fields = value_part.split_whitespace();
        let value = fields
            .next()
            .ok_or_else(|| format!("line {n}: sample without value"))?;
        if value.parse::<f64>().is_err() && !matches!(value, "NaN" | "+Inf" | "-Inf") {
            return Err(format!("line {n}: invalid sample value '{value}'"));
        }
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("line {n}: invalid timestamp '{ts}'"));
            }
        }

        // If the family is (ever) TYPEd, the TYPE must already have
        // been seen: exposition order is HELP/TYPE before samples.
        let base = name_part
            .strip_suffix("_bucket")
            .or_else(|| name_part.strip_suffix("_sum"))
            .or_else(|| name_part.strip_suffix("_count"))
            .unwrap_or(name_part);
        let declared_later = text.lines().any(|l| {
            l.strip_prefix("# TYPE ")
                .map(|b| b.split_whitespace().next() == Some(base))
                .unwrap_or(false)
        });
        if declared_later && !typed.iter().any(|t| t == base || t == name_part) {
            return Err(format!(
                "line {n}: sample for '{name_part}' precedes its # TYPE line"
            ));
        }
        summary.samples += 1;
    }

    typed.sort();
    typed.dedup();
    summary.families = typed;
    Ok(summary)
}

/// Split a label body on commas that are outside quoted values.
fn split_labels(labels: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut esc = false;
    for (i, c) in labels.char_indices() {
        if esc {
            esc = false;
        } else if in_str && c == '\\' {
            esc = true;
        } else if c == '"' {
            in_str = !in_str;
        } else if !in_str && c == ',' {
            out.push(&labels[start..i]);
            start = i + 1;
        }
    }
    if start < labels.len() {
        out.push(&labels[start..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_handles_nested_documents() {
        let v =
            parse_json(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":true,"e":null},"f":""}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("f").unwrap().as_str(), Some(""));
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,2,]").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn trace_check_rejects_missing_fields() {
        let bad =
            r#"{"traceEvents":[{"name":"x","cat":"c","ph":"X","ts":0,"pid":1,"tid":1,"args":{}}]}"#;
        let err = check_chrome_trace(bad).unwrap_err();
        assert!(err.contains("dur"), "{err}");
    }

    #[test]
    fn trace_check_rejects_partial_overlap() {
        let bad = r#"{"traceEvents":[
            {"name":"a","cat":"c","ph":"X","ts":0,"dur":10,"pid":1,"tid":1,"args":{}},
            {"name":"b","cat":"c","ph":"X","ts":5,"dur":10,"pid":1,"tid":1,"args":{}}
        ]}"#;
        let err = check_chrome_trace(bad).unwrap_err();
        assert!(err.contains("overlap"), "{err}");
    }

    #[test]
    fn trace_check_accepts_nesting_and_other_tids() {
        let ok = r#"{"traceEvents":[
            {"name":"outer","cat":"c","ph":"X","ts":0,"dur":10,"pid":1,"tid":1,"args":{}},
            {"name":"inner","cat":"c","ph":"X","ts":2,"dur":3,"pid":1,"tid":1,"args":{}},
            {"name":"elsewhere","cat":"c","ph":"X","ts":5,"dur":10,"pid":1,"tid":2,"args":{}},
            {"name":"count","cat":"c","ph":"C","ts":1,"dur":0,"pid":1,"tid":1,"args":{"value":2}}
        ]}"#;
        let s = check_chrome_trace(ok).unwrap();
        assert_eq!(s.events, 4);
        assert_eq!(s.spans, 3);
        assert!(s.has("inner") && s.has("count"));
    }

    #[test]
    fn prometheus_happy_path() {
        let text = "\
# HELP slo_jobs_total Jobs processed.
# TYPE slo_jobs_total counter
slo_jobs_total 42
# TYPE slo_jobs_degraded_total counter
slo_jobs_degraded_total{reason=\"budget\"} 3
slo_jobs_degraded_total{reason=\"panic\"} 1
# TYPE slo_cache_hit_rate gauge
slo_cache_hit_rate 0.5
";
        let s = check_prometheus(text).unwrap();
        assert_eq!(s.samples, 4);
        assert!(s.has("slo_jobs_total"));
        assert!(s.has("slo_cache_hit_rate"));
    }

    #[test]
    fn prometheus_rejects_bad_lines() {
        assert!(check_prometheus("# TYPE x florp\nx 1\n").is_err());
        assert!(check_prometheus("1bad_name 3\n").is_err());
        assert!(
            check_prometheus("m{a=b} 3\n").is_err(),
            "unquoted label value"
        );
        assert!(check_prometheus("m{a=\"b\"} notanumber\n").is_err());
        assert!(
            check_prometheus("m{a=\"b\" 3\n").is_err(),
            "unterminated labels"
        );
        assert!(
            check_prometheus("m 1\n# TYPE m counter\n").is_err(),
            "sample before TYPE"
        );
    }
}
