//! Property tests for the v1 wire protocol (ISSUE 10 satellite): for
//! any [`Response`] — including ids, messages and codes full of
//! quotes, backslashes, JSON-field look-alikes, control bytes and
//! non-ASCII text — `to_json` emits one line that [`Response::parse`]
//! round-trips exactly; and [`Request::parse`] over adversarial lines
//! classifies without ever panicking.

use proptest::prelude::*;
use slo_service::{Request, Response, PROTO_VERSION};
use std::path::Path;

/// Characters chosen to stress every branch of the escaper and the
/// field extractor: the escape metacharacters themselves, JSON
/// structure, digits (to feed `field_u64` look-alikes), whitespace and
/// control characters, multi-byte UTF-8.
const NASTY: &[char] = &[
    'a', 'z', '0', '9', '"', '\\', '{', '}', '[', ']', ',', ':', ' ', '\t', '\n', '\r', '\u{1}',
    '\u{1f}', '=', '#', 'é', 'ß', '日', '🦀',
];

/// Strings over [`NASTY`], plus literal field tags spliced in so a
/// value can try to impersonate protocol fields (`"types":`,
/// `"status":"optimized"` …).
fn adversarial_string() -> impl Strategy<Value = String> {
    (
        prop::collection::vec(prop::sample::select(NASTY.to_vec()), 0..24),
        prop::sample::select(vec![
            "".to_string(),
            "\"types\":999".to_string(),
            ",\"status\":\"optimized\",".to_string(),
            "\"cached\":true".to_string(),
            "\"v\":7,\"id\":\"fake\"".to_string(),
            "\\\"replayed\\\":true".to_string(),
            "\"retry_after_ms\":123".to_string(),
        ]),
        0usize..2,
    )
        .prop_map(|(chars, tag, pos)| {
            let base: String = chars.into_iter().collect();
            if pos == 0 {
                format!("{tag}{base}")
            } else {
                format!("{base}{tag}")
            }
        })
}

fn optional(s: impl Strategy<Value = String>) -> impl Strategy<Value = Option<String>> {
    (any::<bool>(), s).prop_map(|(some, v)| some.then_some(v))
}

fn arbitrary_response() -> impl Strategy<Value = Response> {
    (
        (
            adversarial_string(),
            prop::sample::select(vec![
                "optimized".to_string(),
                "advisory".to_string(),
                "failed".to_string(),
                "error".to_string(),
                "shed".to_string(),
                "ok".to_string(),
            ]),
            optional(adversarial_string()),
            any::<u32>(),
            any::<bool>(),
        ),
        (
            optional(adversarial_string()),
            optional(adversarial_string()),
            any::<bool>(),
        ),
        (
            (any::<bool>(), any::<u64>()),
            (any::<bool>(), 0u64..1_000_000),
            (any::<bool>(), any::<u64>()),
            (any::<bool>(), any::<u64>()),
            (any::<bool>(), any::<bool>()),
        ),
    )
        .prop_map(
            |(
                (id, status, degradation, attempts, cached),
                (code, message, replayed),
                (retry, types, base, opt, rep),
            )| Response {
                v: PROTO_VERSION,
                id,
                status,
                degradation,
                attempts,
                cached,
                retry_after_ms: retry.0.then_some(retry.1),
                code,
                message,
                types: types.0.then_some(types.1),
                baseline_cycles: base.0.then_some(base.1),
                optimized_cycles: opt.0.then_some(opt.1),
                report_available: rep.0.then_some(rep.1),
                replayed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The core contract: serialize → parse restores every field
    /// exactly, no matter how hostile the string contents.
    fn response_roundtrips_adversarial_contents(r in arbitrary_response()) {
        let line = r.to_json();
        prop_assert!(
            !line.contains('\n'),
            "a reply must stay one line: {line:?}"
        );
        let back = Response::parse(&line).map_err(TestCaseError::fail)?;
        prop_assert_eq!(&back, &r, "round-trip changed the response; line: {}", line);
    }

    /// Serialization is injective on what it stores: two different
    /// parses never come from the same line.
    fn response_reserialization_is_stable(r in arbitrary_response()) {
        let line = r.to_json();
        let back = Response::parse(&line).map_err(TestCaseError::fail)?;
        prop_assert_eq!(back.to_json(), line, "re-serialization must be a fixpoint");
    }

    /// `Request::parse` never panics on arbitrary line soup and always
    /// produces either a request or a coded error.
    fn request_parse_total_on_garbage(line in adversarial_string()) {
        let dir = Path::new(".");
        match Request::parse(dir, &line) {
            Ok(_) => {}
            Err(e) => prop_assert!(!e.code.is_empty(), "error must carry a code"),
        }
    }

    /// Keyword lines keep their meaning even with surrounding
    /// whitespace; hello negotiates only the supported version.
    fn request_keywords_and_hello(pad in 0usize..4, v in 0u64..4) {
        let dir = Path::new(".");
        let ws = " ".repeat(pad);
        prop_assert!(matches!(
            Request::parse(dir, &format!("{ws}quit{ws}")),
            Ok(Request::Quit)
        ));
        prop_assert!(matches!(
            Request::parse(dir, &format!("{ws}metrics{ws}")),
            Ok(Request::Metrics)
        ));
        let hello = Request::parse(dir, &format!("{ws}hello v={v}{ws}"));
        if v == PROTO_VERSION {
            prop_assert!(matches!(hello, Ok(Request::Hello { version }) if version == v));
        } else {
            let err = hello.expect_err("unsupported version must be rejected");
            prop_assert_eq!(err.code, "unsupported-version");
        }
    }

    /// The WAL key is deterministic and sensitive to each identity
    /// component (line, id, source) — the journal can never confuse
    /// two different requests.
    fn fingerprint_separates_identity_components(
        a in prop::collection::vec(prop::sample::select(NASTY.to_vec()), 1..12),
        b in prop::collection::vec(prop::sample::select(NASTY.to_vec()), 1..12),
    ) {
        let a: String = a.into_iter().collect();
        let b: String = b.into_iter().collect();
        // The wire line is trimmed before hashing (whitespace framing
        // is transport noise), so only trim-distinct lines must
        // separate; ids and sources hash verbatim.
        prop_assume!(a.trim() != b.trim());
        let job = |id: &str, src: &str| {
            let mut j = slo_service::Job::from_source(id, src);
            j.id = id.to_string();
            j
        };
        let base = Request::fingerprint("line", &job("id", "src"));
        prop_assert_eq!(base, Request::fingerprint("line", &job("id", "src")));
        let lines = Request::fingerprint(&a, &job("id", "src"))
            != Request::fingerprint(&b, &job("id", "src"));
        let ids = Request::fingerprint("line", &job(&a, "src"))
            != Request::fingerprint("line", &job(&b, "src"));
        let srcs = Request::fingerprint("line", &job("id", &a))
            != Request::fingerprint("line", &job("id", &b));
        prop_assert!(lines && ids && srcs, "some identity component did not separate");
    }
}
