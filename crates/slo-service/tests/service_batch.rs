//! Integration tests for the batch service: cache correctness (hits are
//! counter-asserted, perturbations miss, cached output is bit-identical
//! to uncached), parallel-vs-sequential determinism, and the graceful
//! degradation ladder.

use slo_service::{
    Budget, Degradation, Fault, Job, JobOutcome, JobStatus, SchemeSpec, Service, ServiceConfig,
};

/// A program the pipeline actually transforms (hot field + cold tail,
/// array-indexed in a loop), in canonical printer form.
const SAMPLE: &str = r#"
record pair { hot: i64, c1: i64, c2: i64 }
func main() -> i64 {
bb0:
  r0 = alloc pair, 64
  r1 = 0
  jump bb1
bb1:
  r2 = cmp.lt r1, 64
  br r2, bb2, bb3
bb2:
  r3 = indexaddr r0, pair, r1
  r4 = fieldaddr r3, pair.hot
  store r1, r4 : i64
  r5 = load r4 : i64
  r1 = add r1, 1
  jump bb1
bb3:
  r6 = fieldaddr r0, pair.c1
  store 1, r6 : i64
  r7 = load r6 : i64
  r8 = fieldaddr r0, pair.c2
  store 2, r8 : i64
  r9 = load r8 : i64
  r10 = add r7, r9
  ret r10
}
"#;

fn service(workers: usize, cache: usize) -> Service {
    Service::new(
        ServiceConfig::builder()
            .workers(workers)
            .cache_capacity(cache)
            .build(),
    )
}

/// Everything observable about an outcome except wall-clock timings.
fn digest(o: &JobOutcome) -> String {
    match &o.status {
        JobStatus::Optimized(opt) => format!(
            "{} optimized {} {} {} {:016x}\n{}",
            o.id,
            opt.num_transformed,
            opt.eval.baseline_cycles,
            opt.eval.optimized_cycles,
            opt.ipa_fingerprint,
            opt.transformed
        ),
        JobStatus::Advisory { reason, report } => format!(
            "{} advisory {} {}",
            o.id,
            reason.kind(),
            report.as_deref().unwrap_or("-")
        ),
        JobStatus::Failed(msg) => format!("{} failed {msg}", o.id),
    }
}

fn expect_optimized(o: &JobOutcome) -> &slo_service::Optimized {
    match &o.status {
        JobStatus::Optimized(opt) => opt,
        other => panic!("{}: expected optimized, got {}", o.id, other.kind()),
    }
}

#[test]
fn identical_jobs_hit_the_cache_counters_say_so() {
    let svc = service(1, 64);
    let jobs: Vec<Job> = (0..8)
        .map(|i| Job::from_source(format!("j{i}"), SAMPLE))
        .collect();
    let outcomes = svc.run_batch(&jobs);
    assert!(outcomes
        .iter()
        .all(|o| matches!(o.status, JobStatus::Optimized(_))));

    let m = svc.metrics();
    assert_eq!(m.cache_misses, 1, "first job analyzes");
    assert_eq!(m.cache_hits, 7, "the other seven reuse it");
    // the hit/miss observation is also per-outcome
    assert_eq!(outcomes.iter().filter(|o| o.metrics.cache_hit).count(), 7);
}

#[test]
fn second_identical_batch_is_fully_cached() {
    let svc = service(2, 64);
    let jobs: Vec<Job> = (0..16)
        .map(|i| {
            Job::from_source(format!("j{i}"), SAMPLE).scheme(if i % 2 == 0 {
                SchemeSpec::Ispbo
            } else {
                SchemeSpec::Spbo
            })
        })
        .collect();
    svc.run_batch(&jobs);
    let before = svc.metrics();
    svc.run_batch(&jobs);
    let delta = svc.metrics().since(&before);
    assert_eq!(delta.cache_misses, 0, "rerun must not re-analyze");
    assert_eq!(delta.cache_hits, 16);
    assert!(delta.cache_hit_rate() >= 0.9, "acceptance floor is 90%");
}

#[test]
fn whitespace_perturbation_still_hits_semantic_perturbation_misses() {
    let svc = service(1, 64);
    svc.run_batch(&[Job::from_source("base", SAMPLE)]);

    // same program modulo formatting: the key is over *normalized* IR
    let reformatted = SAMPLE.replace("  r1 = 0", "  r1  =   0");
    svc.run_batch(&[Job::from_source("ws", reformatted)]);
    assert_eq!(svc.metrics().cache_hits, 1, "formatting must not miss");

    // a changed constant is a different program
    let changed = SAMPLE.replace("store 2, r8 : i64", "store 3, r8 : i64");
    svc.run_batch(&[Job::from_source("const", changed)]);
    // a different scheme weights the same IR differently
    svc.run_batch(&[Job::from_source("scheme", SAMPLE).scheme(SchemeSpec::IspboW)]);
    // a different legality config can change verdicts
    let relaxed = slo::PipelineConfig::builder().relax_cast_addr(true).build();
    svc.run_batch(&[Job::from_source("cfg", SAMPLE).config(relaxed)]);

    let m = svc.metrics();
    assert_eq!(
        m.cache_misses, 4,
        "base + const + scheme + config each analyze once"
    );
    assert_eq!(m.cache_hits, 1, "only the whitespace variant hits");
}

#[test]
fn cached_and_uncached_outputs_are_bit_identical() {
    let uncached = service(1, 0); // capacity 0 disables the cache
    let cold = uncached.run_batch(&[Job::from_source("x", SAMPLE)]);
    assert_eq!(uncached.metrics().cache_hits, 0);

    let cached = service(1, 64);
    let first = cached.run_batch(&[Job::from_source("x", SAMPLE)]);
    let second = cached.run_batch(&[Job::from_source("x", SAMPLE)]);
    assert!(second[0].metrics.cache_hit);

    let (a, b, c) = (
        expect_optimized(&cold[0]),
        expect_optimized(&first[0]),
        expect_optimized(&second[0]),
    );
    assert_eq!(a.transformed, b.transformed);
    assert_eq!(b.transformed, c.transformed);
    assert_eq!(a.ipa_fingerprint, c.ipa_fingerprint);
    assert_eq!(a.eval.baseline_cycles, c.eval.baseline_cycles);
    assert_eq!(a.eval.optimized_cycles, c.eval.optimized_cycles);
}

#[test]
fn eight_worker_batch_matches_sequential_run() {
    // distinct programs of several shapes, repeated with distinct schemes
    let mut jobs = Vec::new();
    for (i, n) in [16i64, 32, 48, 64].iter().enumerate() {
        let prog = slo_workloads::kernel::build(*n, 200);
        for (j, scheme) in [SchemeSpec::Ispbo, SchemeSpec::Spbo, SchemeSpec::IspboNo]
            .iter()
            .enumerate()
        {
            jobs.push(Job::from_program(format!("k{i}s{j}"), prog.clone()).scheme(scheme.clone()));
        }
    }
    jobs.push(Job::from_source("sample", SAMPLE));

    let sequential = service(1, 0).run_batch(&jobs);
    let parallel = service(8, 64).run_batch(&jobs);
    assert_eq!(sequential.len(), parallel.len());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(digest(s), digest(p), "job {} diverged", s.id);
    }
}

#[test]
fn panicking_job_degrades_without_failing_the_batch() {
    let svc = service(4, 64);
    let jobs = vec![
        Job::from_source("ok1", SAMPLE),
        Job::from_source("boom-early", SAMPLE).fault(Fault::PanicBeforeAnalysis),
        Job::from_source("boom-late", SAMPLE).fault(Fault::PanicInBe),
        Job::from_source("ok2", SAMPLE),
    ];
    let outcomes = svc.run_batch(&jobs);
    assert_eq!(outcomes.len(), 4, "the batch survives");

    let by_id = |id: &str| outcomes.iter().find(|o| o.id == id).expect("outcome");
    assert!(matches!(by_id("ok1").status, JobStatus::Optimized(_)));
    assert!(matches!(by_id("ok2").status, JobStatus::Optimized(_)));

    // before analysis: nothing to advise on, but still only advisory
    match &by_id("boom-early").status {
        JobStatus::Advisory {
            reason: Degradation::Panic(msg),
            report,
        } => {
            assert!(msg.contains("injected"), "payload preserved: {msg}");
            assert!(report.is_none(), "no analysis happened yet");
        }
        other => panic!("expected panic advisory, got {}", other.kind()),
    }
    // after analysis: the §3 report is the fallback deliverable
    match &by_id("boom-late").status {
        JobStatus::Advisory {
            reason: Degradation::Panic(_),
            report,
        } => {
            let report = report.as_deref().expect("advisory report");
            assert!(report.contains("pair"), "report covers the input types");
        }
        other => panic!("expected panic advisory, got {}", other.kind()),
    }
    // Panics are transient: the supervisor retried each panicking job
    // to quarantine (default policy = 3 attempts), so the raw panic
    // counter sees every attempt while the outcome ladder sees one
    // advisory per job.
    assert_eq!(svc.metrics().panics, 6);
    assert_eq!(svc.metrics().degraded, 2);
    assert_eq!(svc.metrics().retries, 4);
    assert_eq!(svc.metrics().quarantined, 2);
    for id in ["boom-early", "boom-late"] {
        assert_eq!(by_id(id).attempts, 3);
        assert!(by_id(id).quarantined);
    }
    for id in ["ok1", "ok2"] {
        assert_eq!(by_id(id).attempts, 1);
        assert!(!by_id(id).quarantined);
    }
}

#[test]
fn over_budget_job_degrades_to_advisory() {
    let svc = service(1, 64);
    let outcomes = svc.run_batch(&[
        Job::from_source("tight-steps", SAMPLE).budget(Budget::steps(10)),
        Job::from_source("roomy", SAMPLE),
    ]);
    match &outcomes[0].status {
        JobStatus::Advisory {
            reason: Degradation::Budget(_),
            ..
        } => {}
        other => panic!("expected budget advisory, got {}", other.kind()),
    }
    assert!(matches!(outcomes[1].status, JobStatus::Optimized(_)));
}

#[test]
fn zero_wall_budget_still_returns_structured_outcome() {
    let svc = service(1, 64);
    let outcomes = svc.run_batch(&[Job::from_source("nowall", SAMPLE).budget(Budget::wall_ms(0))]);
    match &outcomes[0].status {
        JobStatus::Advisory {
            reason: Degradation::Budget(_),
            ..
        } => {}
        other => panic!("expected budget advisory, got {}", other.kind()),
    }
}

#[test]
fn unparseable_input_fails_fast() {
    let svc = service(1, 64);
    let outcomes = svc.run_batch(&[
        Job::from_source("garbage", "record { nope"),
        Job::from_source("fine", SAMPLE),
    ]);
    assert!(matches!(outcomes[0].status, JobStatus::Failed(_)));
    assert!(matches!(outcomes[1].status, JobStatus::Optimized(_)));
    let m = svc.metrics();
    assert_eq!(m.failed, 1);
    assert_eq!(m.optimized, 1);
}

#[test]
fn lru_cache_evicts_under_pressure() {
    let svc = service(1, 2);
    let progs: Vec<Job> = [16i64, 32, 48]
        .iter()
        .map(|n| Job::from_program(format!("k{n}"), slo_workloads::kernel::build(*n, 100)))
        .collect();
    svc.run_batch(&progs); // three distinct keys through a 2-entry cache
    let m = svc.metrics();
    assert_eq!(m.cache_misses, 3);
    assert!(m.cache_evictions >= 1, "capacity 2 cannot hold 3 entries");

    // the least recently used entry (k16) is gone; k48 is resident
    let before = svc.metrics();
    svc.run_batch(&[Job::from_program(
        "k48-again",
        slo_workloads::kernel::build(48, 100),
    )]);
    let delta = svc.metrics().since(&before);
    assert_eq!(delta.cache_hits, 1, "most recent entry is resident");
}

#[test]
fn metrics_snapshot_exports_json() {
    let svc = service(1, 64);
    svc.run_batch(&[Job::from_source("a", SAMPLE)]);
    let json = svc.metrics().to_json();
    for key in [
        "\"jobs\"",
        "\"optimized\"",
        "\"degraded\"",
        "\"cache_hits\"",
        "\"cache_hit_rate\"",
        "\"queue_wait_ns\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

/// LRU churn under 2 workers: distinct programs cycling through a
/// 2-entry cache from two threads at once. The eviction counter must
/// stay consistent with the hit/miss ledger — every lookup is exactly
/// one hit or one miss, and evictions never exceed insertions.
#[test]
fn eviction_counters_stay_consistent_under_two_worker_churn() {
    let svc = service(2, 2);
    // 6 distinct programs × 4 submissions each, interleaved so the
    // 2-entry LRU churns constantly.
    let jobs: Vec<Job> = (0..24)
        .map(|i| {
            let n = 16 + 16 * (i % 6) as i64;
            Job::from_program(format!("churn{i}"), slo_workloads::kernel::build(n, 100))
        })
        .collect();
    let outcomes = svc.run_batch(&jobs);
    assert!(outcomes
        .iter()
        .all(|o| matches!(o.status, JobStatus::Optimized(_))));

    let m = svc.metrics();
    assert_eq!(
        m.cache_hits + m.cache_misses,
        24,
        "every job is exactly one hit or one miss"
    );
    assert!(
        m.cache_misses >= 6,
        "6 distinct programs cannot all be cache-resident on first sight"
    );
    assert!(
        m.cache_evictions >= m.cache_misses.saturating_sub(2),
        "a 2-entry cache evicts on (almost) every insertion"
    );
    assert!(
        m.cache_evictions <= m.cache_misses,
        "cannot evict more entries than were ever inserted"
    );
}

/// `repeat=` in the serve/manifest wire format expands to N identical
/// jobs; all copies (and a later re-submission of the same line) must
/// produce the same IPA fingerprint, with only the first copy missing
/// the cache.
#[test]
fn repeat_jobs_rerun_with_identical_fingerprints() {
    let dir = std::env::temp_dir().join(format!("slo-repeat-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("sample.sir"), SAMPLE).expect("write sample");

    let jobs = slo_service::parse_job_line(&dir, "sample.sir scheme=ispbo repeat=4")
        .expect("parse job line");
    assert_eq!(jobs.len(), 4, "repeat=4 expands to four jobs");

    // One worker: with a concurrent pool, two copies can race past the
    // cache lookup before either inserts, making the miss count 2 —
    // the single-miss guarantee only holds for sequential submission.
    let svc = service(1, 64);
    let first = svc.run_batch(&jobs);
    let fps: Vec<u64> = first
        .iter()
        .map(|o| expect_optimized(o).ipa_fingerprint)
        .collect();
    assert!(
        fps.windows(2).all(|w| w[0] == w[1]),
        "copies of one job must share a fingerprint: {fps:x?}"
    );
    let m = svc.metrics();
    assert_eq!(m.cache_misses, 1, "only the first copy analyzes");
    assert_eq!(m.cache_hits, 3);

    // Re-submitting the same line later reproduces the fingerprint.
    let again = svc.run_batch(&jobs);
    for (a, b) in first.iter().zip(&again) {
        assert_eq!(
            expect_optimized(a).ipa_fingerprint,
            expect_optimized(b).ipa_fingerprint,
            "rerun changed the fingerprint"
        );
        assert_eq!(digest(a), digest(b), "rerun changed the outcome");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// --- chaos & supervision -------------------------------------------------

use slo_service::{ChaosConfig, Clock, FaultPlan, RetryPolicy, Site};

fn chaos_service(workers: usize, plan: FaultPlan, retry: RetryPolicy, clock: Clock) -> Service {
    Service::with_chaos(
        ServiceConfig::builder()
            .workers(workers)
            .cache_capacity(64)
            .build(),
        slo_obs::Recorder::disabled(),
        plan,
        retry,
        clock,
    )
}

/// Regression pin for the step-budget boundary: the SAMPLE baseline and
/// its ISPBO-transformed form both execute exactly 525 instructions, so
/// a budget of exactly 525 must complete — a limit of N admits N
/// instructions, not N-1.
#[test]
fn job_landing_exactly_on_the_step_limit_completes() {
    // Establish the exact count with an unlimited budget.
    let svc = service(1, 0);
    let [free] = &svc.run_batch(&[Job::from_source("free", SAMPLE)])[..] else {
        panic!("one outcome");
    };
    let opt = expect_optimized(free);
    assert_eq!(
        opt.eval.baseline_instructions,
        opt.eval.optimized_instructions
    );
    let exact = opt.eval.baseline_instructions;

    let svc = service(1, 0);
    let outcomes = svc.run_batch(&[
        Job::from_source("exact", SAMPLE).budget(Budget::steps(exact)),
        Job::from_source("one-short", SAMPLE).budget(Budget::steps(exact - 1)),
    ]);
    expect_optimized(&outcomes[0]);
    assert_eq!(outcomes[0].attempts, 1, "no retries on a clean run");
    match &outcomes[1].status {
        JobStatus::Advisory {
            reason: Degradation::Budget(_),
            ..
        } => {}
        other => panic!(
            "expected budget advisory one step short, got {}",
            other.kind()
        ),
    }
}

/// A job whose every attempt dies on an injected fault is retried
/// exactly `max_attempts` times on the virtual clock (no real sleeping)
/// and then quarantined — still as an advisory, never a failure.
#[test]
fn quarantine_after_exactly_max_attempts_transient_failures() {
    let always_alloc = FaultPlan::with_config(7, ChaosConfig::never().rate(Site::VmAlloc, 1024));
    let clock = Clock::virtual_clock();
    let policy = RetryPolicy {
        max_attempts: 4,
        base_delay_ms: 10,
        max_delay_ms: 1000,
    };
    let svc = chaos_service(1, always_alloc, policy, clock.clone());
    let [o] = &svc.run_batch(&[Job::from_source("doomed", SAMPLE)])[..] else {
        panic!("one outcome");
    };
    match &o.status {
        JobStatus::Advisory {
            reason: Degradation::Fault(msg),
            ..
        } => assert!(msg.contains("heap allocation refused"), "{msg}"),
        other => panic!("expected fault advisory, got {}", other.kind()),
    }
    assert_eq!(o.attempts, 4, "one initial attempt + three retries");
    assert!(o.quarantined);
    let m = svc.metrics();
    assert_eq!(m.retries, 3);
    assert_eq!(m.quarantined, 1);
    assert_eq!(m.degraded_fault, 1, "ladder sees one advisory, not four");
    assert!(m.faults_injected_total() >= 4, "every attempt hit the site");
    assert!(
        clock.now_ms() >= 30,
        "backoff slept on the virtual clock: {}ms",
        clock.now_ms()
    );
}

/// The ladder invariant under a seeded campaign: faults only ever move
/// outcomes *down* (Optimized -> Advisory), never to Failed, and an
/// outcome that stays Optimized is bit-identical to the fault-free run.
#[test]
fn seeded_chaos_never_breaks_the_ladder_or_the_bits() {
    let jobs: Vec<Job> = (0..12)
        .map(|i| Job::from_source(format!("j{i}"), SAMPLE))
        .collect();
    let reference: Vec<String> = service(2, 64).run_batch(&jobs).iter().map(digest).collect();

    for seed in 0..4u64 {
        let svc = chaos_service(
            2,
            FaultPlan::seeded(seed),
            RetryPolicy::no_retries(),
            Clock::virtual_clock(),
        );
        let outcomes = svc.run_batch(&jobs);
        for (o, want) in outcomes.iter().zip(&reference) {
            match &o.status {
                JobStatus::Optimized(_) => {
                    assert_eq!(&digest(o), want, "seed {seed}: optimized bits changed");
                }
                JobStatus::Advisory { .. } => {} // moved down the ladder: fine
                JobStatus::Failed(msg) => {
                    panic!("seed {seed}: parseable input must never fail: {msg}")
                }
            }
        }
    }
}

// --- persistent store -------------------------------------------------

fn store_dir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("slo-svc-store-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn service_with_store(workers: usize, cache: usize, dir: &std::path::Path) -> Service {
    let store = slo_service::AnalysisStore::open(
        dir,
        slo::obs::Recorder::disabled(),
        slo_service::FaultPlan::disabled(),
    )
    .expect("open store");
    service(workers, cache).with_store(store)
}

/// The warm-start contract: a fresh service instance (cold LRU) over a
/// populated store serves every analysis from disk, and the outcomes
/// are bit-identical to a storeless run.
#[test]
fn store_warm_start_serves_from_disk_with_identical_bits() {
    let dir = store_dir("warm");
    let jobs: Vec<Job> = (0..8)
        .map(|i| {
            Job::from_source(format!("j{i}"), SAMPLE).scheme(if i % 2 == 0 {
                SchemeSpec::Ispbo
            } else {
                SchemeSpec::Spbo
            })
        })
        .collect();
    let reference: Vec<String> = service(1, 64).run_batch(&jobs).iter().map(digest).collect();

    let cold = service_with_store(1, 64, &dir);
    let first: Vec<String> = cold.run_batch(&jobs).iter().map(digest).collect();
    let m = cold.metrics();
    assert_eq!(m.store_hits, 0, "an empty store cannot hit");
    assert_eq!(m.store_misses, 2, "one miss per unique (source, scheme)");
    assert!(m.store_bytes > 0, "computed analyses were persisted");
    assert_eq!(first, reference);
    drop(cold);

    // A new service instance: the LRU is cold, the disk is warm.
    let warm = service_with_store(1, 64, &dir);
    let second: Vec<String> = warm.run_batch(&jobs).iter().map(digest).collect();
    let m = warm.metrics();
    assert_eq!(m.store_hits, 2, "every unique analysis came from disk");
    assert_eq!(m.store_misses, 0);
    assert!((m.store_hit_rate() - 1.0).abs() < 1e-12);
    assert_eq!(second, reference, "disk-served bits match computed bits");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupted store records are dropped and recomputed — the outcomes
/// stay bit-identical and nothing corrupt is ever served.
#[test]
fn store_corruption_recomputes_identical_bits() {
    let dir = store_dir("rot");
    let jobs = [Job::from_source("x", SAMPLE)];
    let reference = digest(&service(1, 64).run_batch(&jobs)[0]);

    let svc = service_with_store(1, 64, &dir);
    svc.run_batch(&jobs);
    drop(svc);

    // Rot one byte inside every segment's first record payload.
    for entry in std::fs::read_dir(&dir).expect("dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "seg" || e == "open") {
            let mut bytes = std::fs::read(&path).expect("read");
            if bytes.len() > 40 {
                bytes[24] ^= 0x20;
                std::fs::write(&path, &bytes).expect("write");
            }
        }
    }

    let svc = service_with_store(1, 64, &dir);
    let out = digest(&svc.run_batch(&jobs)[0]);
    let m = svc.metrics();
    assert_eq!(out, reference, "recomputed bits match the clean run");
    assert!(
        m.store_corrupt_drops >= 1,
        "the rotted record was observed and dropped"
    );
    assert_eq!(m.store_hits, 0, "a corrupt record is never served");
    let _ = std::fs::remove_dir_all(&dir);
}
