//! Job descriptions and outcomes for the batch service.

use slo::Evaluation;
use std::time::Duration;

/// What program a job optimizes.
#[derive(Debug, Clone)]
pub enum JobInput {
    /// Textual IR, parsed (and verified) by the service.
    Source(String),
    /// An already-parsed program.
    Program(slo_ir::Program),
}

/// An owned weighting-scheme request (the borrowing
/// [`slo::analysis::WeightScheme`] is materialized per job at run
/// time).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum SchemeSpec {
    /// Static, profile-less (SPBO).
    Spbo,
    /// Improved static (ISPBO) — the default.
    #[default]
    Ispbo,
    /// ISPBO without loop-nesting weights.
    IspboNo,
    /// ISPBO with whole-program weights.
    IspboW,
    /// Profile-based; the profile is collected on the fly (an
    /// instrumented run on the job's own program, within budget).
    Pbo,
    /// Profile-based over a previously collected feedback file
    /// (canonical `Feedback::to_text` form).
    PboProfile(String),
}

impl SchemeSpec {
    /// The paper's scheme name (matches `WeightScheme::name`).
    pub fn name(&self) -> &'static str {
        match self {
            SchemeSpec::Spbo => "SPBO",
            SchemeSpec::Ispbo => "ISPBO",
            SchemeSpec::IspboNo => "ISPBO.NO",
            SchemeSpec::IspboW => "ISPBO.W",
            SchemeSpec::Pbo | SchemeSpec::PboProfile(_) => "PBO",
        }
    }

    /// Parse a CLI/manifest scheme name (`ispbo`, `pbo`, ...).
    pub fn parse(name: &str) -> Option<SchemeSpec> {
        Some(match name.to_ascii_lowercase().as_str() {
            "spbo" => SchemeSpec::Spbo,
            "ispbo" => SchemeSpec::Ispbo,
            "ispbo.no" => SchemeSpec::IspboNo,
            "ispbo.w" => SchemeSpec::IspboW,
            "pbo" => SchemeSpec::Pbo,
            _ => return None,
        })
    }
}

/// Per-request resource budget. A job exceeding it degrades to
/// advisory-only output; it never fails the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock ceiling for the whole job (checked at phase
    /// boundaries), `None` = unlimited.
    pub wall: Option<Duration>,
    /// VM step limit applied to *each* simulated run (profile
    /// collection, verification, evaluation).
    pub steps: u64,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            wall: None,
            steps: 2_000_000_000,
        }
    }
}

impl Budget {
    /// An unlimited budget.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A wall-clock ceiling with the default step limit.
    pub fn wall_ms(ms: u64) -> Self {
        Budget {
            wall: Some(Duration::from_millis(ms)),
            ..Budget::default()
        }
    }

    /// A per-run VM step ceiling with no wall-clock limit.
    pub fn steps(steps: u64) -> Self {
        Budget { wall: None, steps }
    }
}

/// Test/ops fault injection: makes the job body panic at a chosen
/// point, proving the service's panic isolation without a contrived
/// input program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic before the analysis phase runs.
    PanicBeforeAnalysis,
    /// Panic inside the BE (after analysis succeeded, so the advisory
    /// fallback has something to report).
    PanicInBe,
}

/// One optimization request.
#[derive(Debug, Clone)]
pub struct Job {
    /// Caller-chosen identifier, echoed in the outcome.
    pub id: String,
    /// The program.
    pub input: JobInput,
    /// Weighting scheme.
    pub scheme: SchemeSpec,
    /// Pipeline configuration.
    pub config: slo::PipelineConfig,
    /// Resource budget.
    pub budget: Budget,
    /// Optional injected fault (tests, load-generator chaos mode).
    pub fault: Option<Fault>,
}

impl Job {
    /// A job over textual IR with default scheme/config/budget.
    pub fn from_source(id: impl Into<String>, source: impl Into<String>) -> Job {
        Job {
            id: id.into(),
            input: JobInput::Source(source.into()),
            scheme: SchemeSpec::default(),
            config: slo::PipelineConfig::default(),
            budget: Budget::default(),
            fault: None,
        }
    }

    /// A job over a parsed program with default scheme/config/budget.
    pub fn from_program(id: impl Into<String>, program: slo_ir::Program) -> Job {
        Job {
            id: id.into(),
            input: JobInput::Program(program),
            scheme: SchemeSpec::default(),
            config: slo::PipelineConfig::default(),
            budget: Budget::default(),
            fault: None,
        }
    }

    /// Set the scheme.
    pub fn scheme(mut self, scheme: SchemeSpec) -> Job {
        self.scheme = scheme;
        self
    }

    /// Set the pipeline config.
    pub fn config(mut self, config: slo::PipelineConfig) -> Job {
        self.config = config;
        self
    }

    /// Set the budget.
    pub fn budget(mut self, budget: Budget) -> Job {
        self.budget = budget;
        self
    }

    /// Inject a fault.
    pub fn fault(mut self, fault: Fault) -> Job {
        self.fault = Some(fault);
        self
    }
}

/// Why a job was downgraded to advisory-only output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Degradation {
    /// The BE rewrite failed.
    Transform(String),
    /// Differential verification failed (transformed program computed a
    /// different result, or faulted where the baseline did not).
    Verification(String),
    /// The wall-clock or VM step budget ran out.
    Budget(String),
    /// The job body panicked (caught; the batch continued).
    Panic(String),
    /// An injected fault surfaced (chaos campaigns only; classified
    /// transient by the supervisor, like panics and budgets).
    Fault(String),
}

impl Degradation {
    /// Short machine-readable label (`transform` / `verification` /
    /// `budget` / `panic` / `fault`).
    pub fn kind(&self) -> &'static str {
        match self {
            Degradation::Transform(_) => "transform",
            Degradation::Verification(_) => "verification",
            Degradation::Budget(_) => "budget",
            Degradation::Panic(_) => "panic",
            Degradation::Fault(_) => "fault",
        }
    }

    /// Whether a retry could plausibly change the outcome. Panics,
    /// exhausted budgets and injected faults are transient — the
    /// supervisor retries them with backoff. Transform and
    /// verification failures are deterministic properties of the input
    /// and are never retried.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            Degradation::Budget(_) | Degradation::Panic(_) | Degradation::Fault(_)
        )
    }
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Degradation::Transform(m)
            | Degradation::Verification(m)
            | Degradation::Budget(m)
            | Degradation::Panic(m)
            | Degradation::Fault(m) => write!(f, "{}: {m}", self.kind()),
        }
    }
}

/// A full optimized result.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The transformed program in normalized textual form (the
    /// pretty-printer fixpoint, so outputs are bit-comparable).
    pub transformed: String,
    /// Number of transformed record types.
    pub num_transformed: usize,
    /// Before/after simulated-machine comparison.
    pub eval: Evaluation,
    /// Stable digest of the legality analysis that produced the plan
    /// (equal for cached and uncached runs of the same job).
    pub ipa_fingerprint: u64,
}

/// How one job ended.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// The full pipeline ran and verified.
    Optimized(Optimized),
    /// Graceful degradation: the transform was abandoned, but the
    /// analysis-side advisory report (when the analysis got that far)
    /// is returned instead — the paper's §3 advisory tool as the
    /// service's safety net.
    Advisory {
        /// Why the job was downgraded.
        reason: Degradation,
        /// The §3 advisory report, if the analysis completed.
        report: Option<String>,
    },
    /// The input was unusable (parse/verify error); nothing to advise.
    Failed(String),
}

impl JobStatus {
    /// `optimized` / `advisory` / `failed`.
    pub fn kind(&self) -> &'static str {
        match self {
            JobStatus::Optimized(_) => "optimized",
            JobStatus::Advisory { .. } => "advisory",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// Per-job timing/cache observations.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobMetrics {
    /// Time between batch submission and a worker picking the job up.
    pub queue_wait: Duration,
    /// FE time (zero on an analysis-cache hit).
    pub fe: Duration,
    /// IPA time (zero on an analysis-cache hit).
    pub ipa: Duration,
    /// BE rewrite time.
    pub be: Duration,
    /// Simulated-machine host time (profile + verification runs).
    pub exec: Duration,
    /// Whole-job wall clock.
    pub total: Duration,
    /// Whether the analysis came from the content-hash cache.
    pub cache_hit: bool,
}

/// The structured result the service returns for every submitted job —
/// a batch never aborts because one job went wrong.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's identifier.
    pub id: String,
    /// How it ended.
    pub status: JobStatus,
    /// Timing/cache observations.
    pub metrics: JobMetrics,
    /// How many attempts the supervisor ran (1 = no retries).
    pub attempts: u32,
    /// Whether the job exhausted its retry budget on transient
    /// failures and was quarantined (its last advisory outcome is
    /// still returned — quarantine never moves a job down the ladder).
    pub quarantined: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_spec_parse_roundtrip() {
        for name in ["spbo", "ispbo", "ispbo.no", "ispbo.w", "pbo"] {
            let s = SchemeSpec::parse(name).expect("known scheme");
            assert_eq!(s.name().to_ascii_lowercase(), name);
        }
        assert!(SchemeSpec::parse("zzz").is_none());
    }

    #[test]
    fn budget_constructors() {
        assert_eq!(Budget::wall_ms(5).wall, Some(Duration::from_millis(5)));
        assert_eq!(Budget::steps(100).steps, 100);
        assert_eq!(Budget::default().wall, None);
    }

    #[test]
    fn degradation_kinds() {
        assert_eq!(Degradation::Budget("x".into()).kind(), "budget");
        assert_eq!(
            Degradation::Panic("p".into()).to_string(),
            "panic: p".to_string()
        );
    }
}
