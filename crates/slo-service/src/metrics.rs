//! Service-level phase metrics: queue wait, per-phase timings, cache
//! hit/miss counters, degradation counts.
//!
//! Counters are lock-free atomics updated by the worker threads; a
//! [`MetricsSnapshot`] is a consistent-enough point-in-time read used
//! by the CLI's `--json` output and the bench load-generator's
//! `BENCH_vm.json` table.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Live counters owned by a [`crate::Service`].
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    pub(crate) jobs: AtomicU64,
    pub(crate) optimized: AtomicU64,
    pub(crate) degraded: AtomicU64,
    pub(crate) degraded_transform: AtomicU64,
    pub(crate) degraded_verification: AtomicU64,
    pub(crate) degraded_budget: AtomicU64,
    pub(crate) degraded_panic: AtomicU64,
    pub(crate) degraded_fault: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) panics: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) quarantined: AtomicU64,
    pub(crate) cache_hits: AtomicU64,
    pub(crate) cache_misses: AtomicU64,
    pub(crate) cache_evictions: AtomicU64,
    pub(crate) cache_reverified: AtomicU64,
    pub(crate) queue_wait_ns: AtomicU64,
    pub(crate) fe_ns: AtomicU64,
    pub(crate) ipa_ns: AtomicU64,
    pub(crate) be_ns: AtomicU64,
    pub(crate) exec_ns: AtomicU64,
}

impl ServiceMetrics {
    pub(crate) fn add_duration(slot: &AtomicU64, d: Duration) {
        slot.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        MetricsSnapshot {
            jobs: ld(&self.jobs),
            optimized: ld(&self.optimized),
            degraded: ld(&self.degraded),
            degraded_transform: ld(&self.degraded_transform),
            degraded_verification: ld(&self.degraded_verification),
            degraded_budget: ld(&self.degraded_budget),
            degraded_panic: ld(&self.degraded_panic),
            degraded_fault: ld(&self.degraded_fault),
            failed: ld(&self.failed),
            panics: ld(&self.panics),
            retries: ld(&self.retries),
            quarantined: ld(&self.quarantined),
            cache_hits: ld(&self.cache_hits),
            cache_misses: ld(&self.cache_misses),
            cache_evictions: ld(&self.cache_evictions),
            cache_reverified: ld(&self.cache_reverified),
            store_hits: 0,
            store_misses: 0,
            store_corrupt_drops: 0,
            store_compactions: 0,
            store_bytes: 0,
            faults_injected: [0; slo_chaos::NUM_SITES],
            queue_wait_ns: ld(&self.queue_wait_ns),
            fe_ns: ld(&self.fe_ns),
            ipa_ns: ld(&self.ipa_ns),
            be_ns: ld(&self.be_ns),
            exec_ns: ld(&self.exec_ns),
        }
    }
}

/// A consistent read of the service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Jobs completed (any status).
    pub jobs: u64,
    /// Jobs that produced a full optimized result.
    pub optimized: u64,
    /// Jobs downgraded to advisory-only output.
    pub degraded: u64,
    /// Degradations attributed to a BE rewrite failure.
    pub degraded_transform: u64,
    /// Degradations attributed to a differential-verification mismatch.
    pub degraded_verification: u64,
    /// Degradations attributed to an exhausted wall/step budget.
    pub degraded_budget: u64,
    /// Degradations attributed to a caught panic.
    pub degraded_panic: u64,
    /// Degradations attributed to an injected fault (chaos campaigns).
    pub degraded_fault: u64,
    /// Jobs that failed outright (unparseable input).
    pub failed: u64,
    /// Panics caught and contained (a subset of `degraded`).
    pub panics: u64,
    /// Supervisor retries of transient job failures.
    pub retries: u64,
    /// Jobs quarantined after exhausting their retry budget.
    pub quarantined: u64,
    /// Analysis-cache hits.
    pub cache_hits: u64,
    /// Analysis-cache misses.
    pub cache_misses: u64,
    /// Analysis-cache LRU evictions.
    pub cache_evictions: u64,
    /// Cache entries dropped by fingerprint re-verification.
    pub cache_reverified: u64,
    /// Persistent-store reads that verified and decoded (all zero
    /// without a `--store`; filled by [`crate::Service::metrics`]).
    pub store_hits: u64,
    /// Persistent-store reads of absent keys.
    pub store_misses: u64,
    /// Persistent-store records dropped by checksum or structural
    /// verification — never served.
    pub store_corrupt_drops: u64,
    /// Completed persistent-store compaction passes.
    pub store_compactions: u64,
    /// Bytes appended to persistent-store segments.
    pub store_bytes: u64,
    /// Faults injected by the service's chaos plan, per
    /// [`slo_chaos::Site`] (all zero outside chaos campaigns; indexed
    /// like [`slo_chaos::ALL_SITES`]).
    pub faults_injected: [u64; slo_chaos::NUM_SITES],
    /// Total time jobs waited in the queue (nanoseconds).
    pub queue_wait_ns: u64,
    /// Total FE phase time across jobs (nanoseconds; cached jobs add 0).
    pub fe_ns: u64,
    /// Total IPA phase time across jobs (nanoseconds; cached jobs add 0).
    pub ipa_ns: u64,
    /// Total BE phase time across jobs (nanoseconds).
    pub be_ns: u64,
    /// Total simulated-machine (verification + evaluation) host time.
    pub exec_ns: u64,
}

impl MetricsSnapshot {
    /// Cache hit rate in `[0, 1]` (`0` when the cache was never asked).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// Persistent-store hit rate in `[0, 1]` (`0` when no store was
    /// attached or never asked). Across a restart this is the
    /// warm-start rate: hits here are analyses another process wrote.
    pub fn store_hit_rate(&self) -> f64 {
        let total = self.store_hits + self.store_misses;
        if total == 0 {
            return 0.0;
        }
        self.store_hits as f64 / total as f64
    }

    /// The difference `self - earlier`, for per-batch readings off a
    /// long-lived service.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut faults_injected = self.faults_injected;
        for (slot, &e) in faults_injected
            .iter_mut()
            .zip(earlier.faults_injected.iter())
        {
            *slot -= e;
        }
        MetricsSnapshot {
            jobs: self.jobs - earlier.jobs,
            optimized: self.optimized - earlier.optimized,
            degraded: self.degraded - earlier.degraded,
            degraded_transform: self.degraded_transform - earlier.degraded_transform,
            degraded_verification: self.degraded_verification - earlier.degraded_verification,
            degraded_budget: self.degraded_budget - earlier.degraded_budget,
            degraded_panic: self.degraded_panic - earlier.degraded_panic,
            degraded_fault: self.degraded_fault - earlier.degraded_fault,
            failed: self.failed - earlier.failed,
            panics: self.panics - earlier.panics,
            retries: self.retries - earlier.retries,
            quarantined: self.quarantined - earlier.quarantined,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            cache_evictions: self.cache_evictions - earlier.cache_evictions,
            cache_reverified: self.cache_reverified - earlier.cache_reverified,
            store_hits: self.store_hits - earlier.store_hits,
            store_misses: self.store_misses - earlier.store_misses,
            store_corrupt_drops: self.store_corrupt_drops - earlier.store_corrupt_drops,
            store_compactions: self.store_compactions - earlier.store_compactions,
            store_bytes: self.store_bytes - earlier.store_bytes,
            faults_injected,
            queue_wait_ns: self.queue_wait_ns - earlier.queue_wait_ns,
            fe_ns: self.fe_ns - earlier.fe_ns,
            ipa_ns: self.ipa_ns - earlier.ipa_ns,
            be_ns: self.be_ns - earlier.be_ns,
            exec_ns: self.exec_ns - earlier.exec_ns,
        }
    }

    /// Total injected faults across every site.
    pub fn faults_injected_total(&self) -> u64 {
        self.faults_injected.iter().sum()
    }

    /// A flat JSON object with every counter plus the derived hit rate
    /// (deterministic key order; consumed by `slo batch --json` and
    /// merged into `BENCH_vm.json` by the bench driver).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let mut first = true;
        let mut num = |key: &str, v: f64, s: &mut String| {
            let _ = write!(
                s,
                "{}\"{key}\": {}",
                if first { "" } else { ", " },
                if v.fract() == 0.0 && v.abs() < 9e15 {
                    format!("{}", v as i64)
                } else {
                    format!("{v}")
                }
            );
            first = false;
        };
        num("jobs", self.jobs as f64, &mut s);
        num("optimized", self.optimized as f64, &mut s);
        num("degraded", self.degraded as f64, &mut s);
        num("degraded_transform", self.degraded_transform as f64, &mut s);
        num(
            "degraded_verification",
            self.degraded_verification as f64,
            &mut s,
        );
        num("degraded_budget", self.degraded_budget as f64, &mut s);
        num("degraded_panic", self.degraded_panic as f64, &mut s);
        num("degraded_fault", self.degraded_fault as f64, &mut s);
        num("failed", self.failed as f64, &mut s);
        num("panics", self.panics as f64, &mut s);
        num("retries", self.retries as f64, &mut s);
        num("quarantined", self.quarantined as f64, &mut s);
        num(
            "faults_injected",
            self.faults_injected_total() as f64,
            &mut s,
        );
        num("cache_hits", self.cache_hits as f64, &mut s);
        num("cache_misses", self.cache_misses as f64, &mut s);
        num("cache_evictions", self.cache_evictions as f64, &mut s);
        num("cache_reverified", self.cache_reverified as f64, &mut s);
        num("cache_hit_rate", self.cache_hit_rate(), &mut s);
        num("store_hits", self.store_hits as f64, &mut s);
        num("store_misses", self.store_misses as f64, &mut s);
        num(
            "store_corrupt_drops",
            self.store_corrupt_drops as f64,
            &mut s,
        );
        num("store_compactions", self.store_compactions as f64, &mut s);
        num("store_bytes", self.store_bytes as f64, &mut s);
        num("store_hit_rate", self.store_hit_rate(), &mut s);
        num("queue_wait_ns", self.queue_wait_ns as f64, &mut s);
        num("fe_ns", self.fe_ns as f64, &mut s);
        num("ipa_ns", self.ipa_ns as f64, &mut s);
        num("be_ns", self.be_ns as f64, &mut s);
        num("exec_ns", self.exec_ns as f64, &mut s);
        s.push('}');
        s
    }

    /// The snapshot in the Prometheus text exposition format (served by
    /// `slo serve`'s `metrics prom` command; validated line-by-line by
    /// `slo_obs::conform::check_prometheus`).
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        let secs = |ns: u64| ns as f64 / 1e9;
        let _ = write!(
            s,
            "# HELP slo_jobs_total Jobs completed (any status).\n\
             # TYPE slo_jobs_total counter\n\
             slo_jobs_total {}\n\
             # HELP slo_jobs_by_status_total Jobs by final status.\n\
             # TYPE slo_jobs_by_status_total counter\n\
             slo_jobs_by_status_total{{status=\"optimized\"}} {}\n\
             slo_jobs_by_status_total{{status=\"advisory\"}} {}\n\
             slo_jobs_by_status_total{{status=\"failed\"}} {}\n\
             # HELP slo_jobs_degraded_total Advisory downgrades by reason.\n\
             # TYPE slo_jobs_degraded_total counter\n\
             slo_jobs_degraded_total{{reason=\"transform\"}} {}\n\
             slo_jobs_degraded_total{{reason=\"verification\"}} {}\n\
             slo_jobs_degraded_total{{reason=\"budget\"}} {}\n\
             slo_jobs_degraded_total{{reason=\"panic\"}} {}\n\
             slo_jobs_degraded_total{{reason=\"fault\"}} {}\n\
             # HELP slo_panics_total Panics caught and contained.\n\
             # TYPE slo_panics_total counter\n\
             slo_panics_total {}\n\
             # HELP slo_retries_total Supervisor retries of transient job failures.\n\
             # TYPE slo_retries_total counter\n\
             slo_retries_total {}\n\
             # HELP slo_quarantined_total Jobs quarantined after exhausting retries.\n\
             # TYPE slo_quarantined_total counter\n\
             slo_quarantined_total {}\n",
            self.jobs,
            self.optimized,
            self.degraded,
            self.failed,
            self.degraded_transform,
            self.degraded_verification,
            self.degraded_budget,
            self.degraded_panic,
            self.degraded_fault,
            self.panics,
            self.retries,
            self.quarantined,
        );
        let _ = writeln!(
            s,
            "# HELP slo_faults_injected_total Faults injected by the chaos plan, by site.\n\
             # TYPE slo_faults_injected_total counter"
        );
        for (site, count) in slo_chaos::ALL_SITES.iter().zip(self.faults_injected.iter()) {
            let _ = writeln!(
                s,
                "slo_faults_injected_total{{site=\"{}\"}} {count}",
                site.name()
            );
        }
        let _ = write!(
            s,
            "# HELP slo_cache_events_total Analysis-cache events.\n\
             # TYPE slo_cache_events_total counter\n\
             slo_cache_events_total{{event=\"hit\"}} {}\n\
             slo_cache_events_total{{event=\"miss\"}} {}\n\
             slo_cache_events_total{{event=\"eviction\"}} {}\n\
             slo_cache_events_total{{event=\"reverified\"}} {}\n\
             # HELP slo_cache_hit_rate Analysis-cache hit rate in [0, 1].\n\
             # TYPE slo_cache_hit_rate gauge\n\
             slo_cache_hit_rate {}\n\
             # HELP slo_store_events_total Persistent-store events.\n\
             # TYPE slo_store_events_total counter\n\
             slo_store_events_total{{event=\"hit\"}} {}\n\
             slo_store_events_total{{event=\"miss\"}} {}\n\
             slo_store_events_total{{event=\"corrupt_drop\"}} {}\n\
             # HELP slo_store_compactions_total Persistent-store compaction passes.\n\
             # TYPE slo_store_compactions_total counter\n\
             slo_store_compactions_total {}\n\
             # HELP slo_store_bytes_written_total Bytes appended to store segments.\n\
             # TYPE slo_store_bytes_written_total counter\n\
             slo_store_bytes_written_total {}\n\
             # HELP slo_store_hit_rate Persistent-store hit rate in [0, 1].\n\
             # TYPE slo_store_hit_rate gauge\n\
             slo_store_hit_rate {}\n\
             # HELP slo_phase_seconds_total Cumulative wall time per phase.\n\
             # TYPE slo_phase_seconds_total counter\n\
             slo_phase_seconds_total{{phase=\"queue_wait\"}} {}\n\
             slo_phase_seconds_total{{phase=\"fe\"}} {}\n\
             slo_phase_seconds_total{{phase=\"ipa\"}} {}\n\
             slo_phase_seconds_total{{phase=\"be\"}} {}\n\
             slo_phase_seconds_total{{phase=\"exec\"}} {}\n",
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_reverified,
            self.cache_hit_rate(),
            self.store_hits,
            self.store_misses,
            self.store_corrupt_drops,
            self.store_compactions,
            self.store_bytes,
            self.store_hit_rate(),
            secs(self.queue_wait_ns),
            secs(self.fe_ns),
            secs(self.ipa_ns),
            secs(self.be_ns),
            secs(self.exec_ns),
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_math() {
        let m = MetricsSnapshot {
            cache_hits: 9,
            cache_misses: 1,
            ..Default::default()
        };
        assert!((m.cache_hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(MetricsSnapshot::default().cache_hit_rate(), 0.0);
    }

    #[test]
    fn since_subtracts() {
        let a = MetricsSnapshot {
            jobs: 10,
            cache_hits: 4,
            ..Default::default()
        };
        let b = MetricsSnapshot {
            jobs: 64,
            cache_hits: 60,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.jobs, 54);
        assert_eq!(d.cache_hits, 56);
    }

    #[test]
    fn prometheus_exposition_is_conformant() {
        let mut faults_injected = [0u64; slo_chaos::NUM_SITES];
        faults_injected[slo_chaos::Site::VmAlloc as usize] = 4;
        let m = MetricsSnapshot {
            jobs: 5,
            optimized: 3,
            degraded: 2,
            degraded_budget: 1,
            degraded_panic: 1,
            panics: 1,
            retries: 3,
            quarantined: 1,
            cache_hits: 2,
            cache_misses: 2,
            cache_reverified: 1,
            store_hits: 3,
            store_misses: 1,
            store_corrupt_drops: 2,
            store_compactions: 1,
            store_bytes: 4096,
            faults_injected,
            fe_ns: 1_500_000,
            ..Default::default()
        };
        let text = m.to_prometheus();
        let s = slo_obs::conform::check_prometheus(&text).expect("valid exposition");
        for family in [
            "slo_jobs_total",
            "slo_jobs_by_status_total",
            "slo_jobs_degraded_total",
            "slo_panics_total",
            "slo_retries_total",
            "slo_quarantined_total",
            "slo_faults_injected_total",
            "slo_cache_events_total",
            "slo_cache_hit_rate",
            "slo_store_events_total",
            "slo_store_compactions_total",
            "slo_store_bytes_written_total",
            "slo_store_hit_rate",
            "slo_phase_seconds_total",
        ] {
            assert!(s.has(family), "missing family {family}");
        }
        assert!(text.contains("slo_jobs_degraded_total{reason=\"budget\"} 1"));
        assert!(text.contains("slo_jobs_degraded_total{reason=\"fault\"} 0"));
        assert!(text.contains("slo_retries_total 3"));
        assert!(text.contains("slo_quarantined_total 1"));
        assert!(text.contains("slo_faults_injected_total{site=\"vm-alloc\"} 4"));
        assert!(text.contains("slo_cache_events_total{event=\"reverified\"} 1"));
        assert!(text.contains("slo_cache_hit_rate 0.5"));
        assert!(text.contains("slo_store_events_total{event=\"hit\"} 3"));
        assert!(text.contains("slo_store_events_total{event=\"corrupt_drop\"} 2"));
        assert!(text.contains("slo_store_compactions_total 1"));
        assert!(text.contains("slo_store_bytes_written_total 4096"));
        assert!(text.contains("slo_store_hit_rate 0.75"));
    }

    #[test]
    fn json_is_flat_and_ordered() {
        let m = MetricsSnapshot {
            jobs: 2,
            cache_hits: 1,
            cache_misses: 1,
            ..Default::default()
        };
        let j = m.to_json();
        assert!(j.starts_with("{\"jobs\": 2"));
        assert!(j.contains("\"cache_hit_rate\": 0.5"));
        assert!(j.contains("\"store_hits\": 0"));
        assert!(j.contains("\"store_hit_rate\": 0"));
        assert!(j.ends_with('}'));
    }

    #[test]
    fn since_subtracts_store_counters() {
        let a = MetricsSnapshot {
            store_hits: 2,
            store_bytes: 100,
            ..Default::default()
        };
        let b = MetricsSnapshot {
            store_hits: 10,
            store_misses: 3,
            store_bytes: 700,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.store_hits, 8);
        assert_eq!(d.store_misses, 3);
        assert_eq!(d.store_bytes, 600);
        assert!((d.store_hit_rate() - 8.0 / 11.0).abs() < 1e-12);
    }
}
