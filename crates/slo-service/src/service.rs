//! The batch-optimization service.
//!
//! [`Service::run_batch`] accepts many jobs, shards them across a
//! bounded worker pool, and returns one structured [`JobOutcome`] per
//! job. Each job runs behind its [`Budget`](crate::job::Budget) with `catch_unwind` panic
//! isolation and a graceful-degradation ladder:
//!
//! 1. full pipeline + differential verification + evaluation,
//! 2. on a BE failure, verification mismatch, exhausted budget, a
//!    caught panic or an injected fault → advisory-only output (the §3
//!    report, when the analysis got far enough),
//! 3. on unusable input → a `Failed` outcome.
//!
//! A batch never aborts because one job went wrong.
//!
//! # Supervision
//!
//! Every job runs under a supervisor: an outcome classified *transient*
//! (caught panic, exhausted budget, injected fault) is retried with a
//! bounded deterministic exponential backoff from the service's
//! [`RetryPolicy`], sleeping on its [`Clock`] — a virtual clock in
//! tests and chaos campaigns, so nothing actually blocks. *Deterministic*
//! failures (unparseable input, transform/verification verdicts) are
//! never retried: rerunning a legality analysis cannot change its
//! answer. A job whose attempts are all transient failures is
//! quarantined — its last advisory outcome is still returned, with
//! [`JobOutcome::quarantined`] set, so quarantine never moves a job
//! down the degradation ladder.

use crate::cache::{AnalysisCache, Lookup};
use crate::job::{
    Degradation, Fault, Job, JobInput, JobMetrics, JobOutcome, JobStatus, Optimized, SchemeSpec,
};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::pool::par_map_supervised;
use crate::store::AnalysisStore;
use slo::analysis::{ipa_fingerprint, WeightScheme};
use slo::{Analysis, Evaluation};
use slo_chaos::{fnv1a, Clock, FaultPlan, RetryPolicy};
use slo_ir::{printer::print_program, Program};
use slo_vm::{ExecError, Feedback, VmOptions};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads for a batch (`0` = all available cores).
    pub workers: usize,
    /// Analysis-cache LRU bound in entries (`0` disables caching).
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            cache_capacity: 256,
        }
    }
}

impl ServiceConfig {
    /// Start building a configuration.
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder {
            cfg: Self::default(),
        }
    }
}

/// Builder for [`ServiceConfig`] (see [`ServiceConfig::builder`]).
#[derive(Debug, Clone)]
pub struct ServiceConfigBuilder {
    cfg: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Worker threads (`0` = all cores).
    pub fn workers(mut self, n: usize) -> Self {
        self.cfg.workers = n;
        self
    }

    /// Analysis-cache capacity in entries (`0` disables).
    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.cfg.cache_capacity = n;
        self
    }

    /// Finish.
    pub fn build(self) -> ServiceConfig {
        self.cfg
    }
}

/// The concurrent batch-optimization service.
#[derive(Debug)]
pub struct Service {
    cfg: ServiceConfig,
    cache: Mutex<AnalysisCache>,
    store: Option<Mutex<AnalysisStore>>,
    metrics: ServiceMetrics,
    trace: slo_obs::Recorder,
    chaos: FaultPlan,
    retry: RetryPolicy,
    clock: Clock,
}

impl Service {
    /// A service with the given configuration.
    pub fn new(cfg: ServiceConfig) -> Service {
        Service::with_trace(cfg, slo_obs::Recorder::disabled())
    }

    /// A service that records a `job:<id>` span per job (plus the
    /// pipeline phase and VM spans underneath) into `trace`.
    /// `ServiceConfig` stays `Copy`, so the recorder rides separately.
    pub fn with_trace(cfg: ServiceConfig, trace: slo_obs::Recorder) -> Service {
        Service::with_chaos(
            cfg,
            trace,
            FaultPlan::disabled(),
            RetryPolicy::default(),
            Clock::Real,
        )
    }

    /// The fully explicit constructor: a fault plan threaded through
    /// the VM, cache and pool, a retry policy for the supervisor, and
    /// the clock it sleeps on. `Service::new` is this with a disabled
    /// plan, the default policy and the real clock.
    pub fn with_chaos(
        cfg: ServiceConfig,
        trace: slo_obs::Recorder,
        chaos: FaultPlan,
        retry: RetryPolicy,
        clock: Clock,
    ) -> Service {
        Service {
            cache: Mutex::new(AnalysisCache::new(cfg.cache_capacity)),
            store: None,
            metrics: ServiceMetrics::default(),
            cfg,
            trace,
            chaos,
            retry,
            clock,
        }
    }

    /// Attach a persistent [`AnalysisStore`] as the durable tier under
    /// the in-memory LRU: a cache miss falls through to disk before
    /// recomputing, and fresh computations are written back, so
    /// analyses survive process restarts (`slo batch/serve --store`).
    pub fn with_store(mut self, store: AnalysisStore) -> Service {
        self.store = Some(Mutex::new(store));
        self
    }

    /// A copy of the persistent store's counters, when one is attached.
    pub fn store_counters(&self) -> Option<crate::store::StoreCounters> {
        self.store
            .as_ref()
            .map(|s| s.lock().expect("store lock").counters())
    }

    /// Compact the attached persistent store (no-op without one).
    ///
    /// # Errors
    ///
    /// Propagates [`AnalysisStore::compact`] errors, including
    /// [`std::io::ErrorKind::WouldBlock`] for a live contending lock.
    pub fn compact_store(&self) -> std::io::Result<()> {
        match &self.store {
            Some(s) => s.lock().expect("store lock").compact(),
            None => Ok(()),
        }
    }

    /// The fault plan threaded through this service (disabled unless
    /// built with [`Service::with_chaos`]).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.chaos
    }

    /// The supervisor's retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The configuration this service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The trace recorder jobs report into (disabled unless the service
    /// was built with [`Service::with_trace`]).
    pub fn trace(&self) -> &slo_obs::Recorder {
        &self.trace
    }

    /// A point-in-time copy of the service counters (including the
    /// fault plan's per-site injection totals).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        snap.faults_injected = self.chaos.injected_by_site();
        if let Some(c) = self.store_counters() {
            snap.store_hits = c.hits;
            snap.store_misses = c.misses;
            snap.store_corrupt_drops = c.corrupt_drops;
            snap.store_compactions = c.compactions;
            snap.store_bytes = c.bytes_written;
        }
        snap
    }

    /// Run a batch: shard `jobs` across the worker pool and return one
    /// outcome per job, in submission order. Worker threads killed by
    /// the chaos plan's pool site orphan their jobs to the supervising
    /// caller thread, so every job still completes.
    pub fn run_batch(&self, jobs: &[Job]) -> Vec<JobOutcome> {
        self.run_batch_since(jobs, Instant::now())
    }

    /// [`Service::run_batch`] with an explicit submission instant: the
    /// network ingress admits a request *before* it reaches the pool,
    /// and queue-wait accounting should start at admission, not at the
    /// moment the worker shard begins.
    pub fn run_batch_since(&self, jobs: &[Job], submitted: Instant) -> Vec<JobOutcome> {
        par_map_supervised(self.cfg.workers, jobs, &self.chaos, |job| {
            self.run_job(job, submitted)
        })
    }

    /// Run one job under supervision (used by `run_batch` and by the
    /// line-at-a-time `slo serve` front end): transient failures are
    /// retried with deterministic backoff, deterministic failures
    /// return immediately, and a job that stays transient through its
    /// whole retry budget is quarantined. `submitted` is when the job
    /// entered the queue; the gap to pickup is reported as queue wait.
    pub fn run_job(&self, job: &Job, submitted: Instant) -> JobOutcome {
        let started = Instant::now();
        let mut span = self.trace.span("service", format!("job:{}", job.id));
        // Per-job backoff seed: distinct jobs never thunder in
        // lockstep, and reruns of a batch replay the same schedule.
        let mut schedule = self.retry.schedule(fnv1a(job.id.as_bytes()));
        let mut attempts: u32 = 1;
        let mut quarantined = false;
        let mut acc = JobMetrics::default();
        let (status, jm) = loop {
            let (status, jm) = self.attempt_job(job, submitted);
            acc.fe += jm.fe;
            acc.ipa += jm.ipa;
            acc.be += jm.be;
            acc.exec += jm.exec;
            let transient = matches!(
                &status,
                JobStatus::Advisory { reason, .. } if reason.is_transient()
            );
            if !transient {
                break (status, jm);
            }
            match schedule.next_delay_ms() {
                Some(delay_ms) => {
                    self.metrics.retries.fetch_add(1, Ordering::Relaxed);
                    self.trace.instant(
                        "service",
                        "retry",
                        vec![
                            ("job", job.id.as_str().into()),
                            ("attempt", i64::from(attempts).into()),
                            ("backoff_ms", (delay_ms as i64).into()),
                        ],
                    );
                    self.clock.sleep_ms(delay_ms);
                    attempts += 1;
                }
                None => {
                    // `max_attempts` transient failures: quarantine.
                    // The last advisory outcome is still returned —
                    // quarantine never demotes a job to `Failed`.
                    quarantined = true;
                    self.metrics.quarantined.fetch_add(1, Ordering::Relaxed);
                    self.trace.instant(
                        "service",
                        "quarantine",
                        vec![
                            ("job", job.id.as_str().into()),
                            ("attempts", i64::from(attempts).into()),
                        ],
                    );
                    break (status, jm);
                }
            }
        };
        // Fold the per-attempt phase costs back in; queue wait and
        // cache attribution come from the final attempt.
        let jm = JobMetrics {
            fe: acc.fe,
            ipa: acc.ipa,
            be: acc.be,
            exec: acc.exec,
            total: started.elapsed(),
            ..jm
        };
        let outcome = self.finish(job, status, jm, attempts, quarantined);
        span.arg("status", outcome.status.kind());
        if let JobStatus::Advisory { reason, .. } = &outcome.status {
            span.arg("reason", reason.kind());
        }
        span.arg("cache_hit", outcome.metrics.cache_hit);
        span.arg("attempts", i64::from(outcome.attempts));
        if outcome.quarantined {
            span.arg("quarantined", true);
        }
        outcome
    }

    /// One attempt: parse, analyze, transform, verify — panic-isolated,
    /// with no retry logic of its own.
    fn attempt_job(&self, job: &Job, submitted: Instant) -> (JobStatus, JobMetrics) {
        let start = Instant::now();
        let mut jm = JobMetrics {
            queue_wait: start.duration_since(submitted),
            ..JobMetrics::default()
        };
        let deadline = job.budget.wall.map(|w| start + w);

        // Unusable input fails fast — there is nothing to advise on.
        let prog = match self.load_input(&job.input) {
            Ok(p) => p,
            Err(msg) => {
                jm.total = start.elapsed();
                return (JobStatus::Failed(msg), jm);
            }
        };

        // Everything from here on is panic-isolated. The slots let the
        // unwind path reach the analysis (for the advisory fallback)
        // and the partially filled metrics.
        let analysis_slot: RefCell<Option<Arc<Analysis>>> = RefCell::new(None);
        let jm_cell = RefCell::new(jm);
        let body =
            AssertUnwindSafe(|| self.job_body(job, &prog, deadline, &analysis_slot, &jm_cell));
        let status = match quiet_catch_unwind(body) {
            Ok(status) => status,
            Err(payload) => {
                self.metrics.panics.fetch_add(1, Ordering::Relaxed);
                let report = analysis_slot
                    .borrow()
                    .as_ref()
                    .map(|a| advisory_report(&prog, a));
                JobStatus::Advisory {
                    reason: Degradation::Panic(panic_message(payload)),
                    report,
                }
            }
        };
        let mut jm = jm_cell.into_inner();
        jm.total = start.elapsed();
        (status, jm)
    }

    fn load_input(&self, input: &JobInput) -> Result<Program, String> {
        let _s = self.trace.span("pipeline", "parse");
        let prog = match input {
            JobInput::Program(p) => p.clone(),
            JobInput::Source(src) => {
                slo_ir::parser::parse(src).map_err(|e| format!("parse: {e}"))?
            }
        };
        let errs = slo_ir::verify::verify(&prog);
        if !errs.is_empty() {
            return Err(format!("invalid IR: {}", errs[0]));
        }
        Ok(prog)
    }

    #[allow(clippy::too_many_lines)]
    fn job_body(
        &self,
        job: &Job,
        prog: &Program,
        deadline: Option<Instant>,
        analysis_slot: &RefCell<Option<Arc<Analysis>>>,
        jm: &RefCell<JobMetrics>,
    ) -> JobStatus {
        if job.fault == Some(Fault::PanicBeforeAnalysis) {
            panic!("injected fault: panic before analysis");
        }

        // --- profile (PBO only) --------------------------------------
        let owned_fb: Option<Feedback> = match &job.scheme {
            SchemeSpec::Pbo => {
                let opts = VmOptions::builder()
                    .collect_edges(true)
                    .sample_dcache(true)
                    .step_limit(job.budget.steps)
                    .trace(self.trace.clone())
                    .faults(self.chaos.clone())
                    .build();
                let t = Instant::now();
                let run = {
                    let mut s = self.trace.span("pipeline", "profile");
                    s.arg("instrumented", true);
                    slo_vm::run(prog, &opts)
                };
                jm.borrow_mut().exec += t.elapsed();
                match run {
                    Ok(out) => Some(out.feedback),
                    Err(ExecError::StepLimit) => {
                        return JobStatus::Advisory {
                            reason: Degradation::Budget(
                                "profile collection exceeded the step budget".into(),
                            ),
                            report: None,
                        }
                    }
                    Err(ExecError::Injected(what)) => {
                        return JobStatus::Advisory {
                            reason: Degradation::Fault(format!("profiling run: {what}")),
                            report: None,
                        }
                    }
                    Err(e) => return JobStatus::Failed(format!("profiling run: {e}")),
                }
            }
            SchemeSpec::PboProfile(text) => match Feedback::from_text(text) {
                Ok(fb) => Some(fb),
                Err(e) => return JobStatus::Failed(format!("profile: {e}")),
            },
            _ => None,
        };
        let scheme = match (&job.scheme, &owned_fb) {
            (SchemeSpec::Pbo | SchemeSpec::PboProfile(_), Some(fb)) => WeightScheme::Pbo(fb),
            (SchemeSpec::Spbo, _) => WeightScheme::Spbo,
            (SchemeSpec::IspboNo, _) => WeightScheme::IspboNo,
            (SchemeSpec::IspboW, _) => WeightScheme::IspboW,
            _ => WeightScheme::Ispbo,
        };

        if let Some(d) = over_deadline(deadline) {
            return JobStatus::Advisory {
                reason: d,
                report: None,
            };
        }

        // --- FE + IPA, memoized by content hash ----------------------
        let key = slo::analysis_cache_key(prog, &scheme, &job.config);
        let cached = self.cache.lock().expect("cache lock").get_checked(key);
        if matches!(cached, Lookup::Corrupt) {
            // A poisoned entry failed fingerprint re-verification: it
            // has been dropped; recompute below as on a plain miss.
            self.trace.instant(
                "service",
                "cache-reverify",
                vec![("job", job.id.as_str().into())],
            );
        }
        let analysis = match cached {
            Lookup::Hit(a) => {
                self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                self.trace.instant(
                    "service",
                    "cache-hit",
                    vec![("job", job.id.as_str().into())],
                );
                jm.borrow_mut().cache_hit = true;
                a
            }
            Lookup::Corrupt | Lookup::Miss => {
                self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
                // The durable tier: an LRU miss falls through to the
                // persistent store before recomputing. A store hit is
                // promoted into the LRU; a corrupt or absent record is
                // a miss and the fresh computation is written back.
                let stored = self
                    .store
                    .as_ref()
                    .and_then(|s| s.lock().expect("store lock").get(key));
                let a = match stored {
                    Some(a) => {
                        self.trace.instant(
                            "service",
                            "store-hit",
                            vec![("job", job.id.as_str().into())],
                        );
                        jm.borrow_mut().cache_hit = true;
                        a
                    }
                    None => {
                        let a =
                            Arc::new(slo::analyze_with(prog, &scheme, &job.config, &self.trace));
                        {
                            let mut m = jm.borrow_mut();
                            m.fe = a.fe;
                            m.ipa = a.ipa_time;
                        }
                        if let Some(s) = &self.store {
                            if let Err(e) = s.lock().expect("store lock").put(key, &a) {
                                // A failed write only costs durability:
                                // the job itself proceeds from memory.
                                self.trace.instant(
                                    "service",
                                    "store-put-error",
                                    vec![("error", e.to_string().into())],
                                );
                            }
                        }
                        a
                    }
                };
                self.cache.lock().expect("cache lock").insert_chaotic(
                    key,
                    Arc::clone(&a),
                    &self.chaos,
                );
                a
            }
        };
        *analysis_slot.borrow_mut() = Some(Arc::clone(&analysis));

        if let Some(d) = over_deadline(deadline) {
            return JobStatus::Advisory {
                reason: d,
                report: Some(advisory_report(prog, &analysis)),
            };
        }
        if job.fault == Some(Fault::PanicInBe) {
            panic!("injected fault: panic in BE");
        }

        // --- BE ------------------------------------------------------
        let t = Instant::now();
        let compiled = slo::apply_with(prog, &analysis, &self.trace);
        jm.borrow_mut().be = t.elapsed();
        let res = match compiled {
            Ok(res) => res,
            Err(e) => {
                return JobStatus::Advisory {
                    reason: Degradation::Transform(e.to_string()),
                    report: Some(advisory_report(prog, &analysis)),
                }
            }
        };

        // --- differential verification + evaluation ------------------
        let opts = VmOptions::builder()
            .step_limit(job.budget.steps)
            .trace(self.trace.clone())
            .faults(self.chaos.clone())
            .build();
        let degrade = |reason: Degradation| JobStatus::Advisory {
            reason,
            report: Some(advisory_report(prog, &analysis)),
        };
        let t = Instant::now();
        let base = slo_vm::run(prog, &opts);
        jm.borrow_mut().exec += t.elapsed();
        let base = match base {
            Ok(o) => o,
            Err(ExecError::StepLimit) => {
                return degrade(Degradation::Budget(
                    "baseline run exceeded the step budget".into(),
                ))
            }
            Err(ExecError::Injected(what)) => {
                return degrade(Degradation::Fault(format!("baseline run: {what}")))
            }
            Err(e) => {
                return degrade(Degradation::Verification(format!(
                    "baseline run faulted: {e}"
                )))
            }
        };
        if let Some(d) = over_deadline(deadline) {
            return degrade(d);
        }
        let t = Instant::now();
        let opt = slo_vm::run(&res.program, &opts);
        jm.borrow_mut().exec += t.elapsed();
        let opt = match opt {
            Ok(o) => o,
            Err(ExecError::StepLimit) => {
                return degrade(Degradation::Budget(
                    "transformed run exceeded the step budget".into(),
                ))
            }
            Err(ExecError::Injected(what)) => {
                return degrade(Degradation::Fault(format!("transformed run: {what}")))
            }
            Err(e) => {
                return degrade(Degradation::Verification(format!(
                    "transformed run faulted: {e}"
                )))
            }
        };
        if base.exit != opt.exit {
            return degrade(Degradation::Verification(format!(
                "exit mismatch: baseline {:?}, transformed {:?}",
                base.exit, opt.exit
            )));
        }

        JobStatus::Optimized(Optimized {
            transformed: print_program(&res.program),
            num_transformed: res.plan.num_transformed(),
            eval: Evaluation {
                baseline_cycles: base.stats.cycles,
                optimized_cycles: opt.stats.cycles,
                baseline_instructions: base.stats.instructions,
                optimized_instructions: opt.stats.instructions,
            },
            ipa_fingerprint: ipa_fingerprint(&analysis.ipa),
        })
    }

    /// Tally counters and assemble the outcome.
    fn finish(
        &self,
        job: &Job,
        status: JobStatus,
        jm: JobMetrics,
        attempts: u32,
        quarantined: bool,
    ) -> JobOutcome {
        self.metrics.jobs.fetch_add(1, Ordering::Relaxed);
        let slot = match &status {
            JobStatus::Optimized(_) => &self.metrics.optimized,
            JobStatus::Advisory { .. } => &self.metrics.degraded,
            JobStatus::Failed(_) => &self.metrics.failed,
        };
        slot.fetch_add(1, Ordering::Relaxed);
        if let JobStatus::Advisory { reason, .. } = &status {
            let slot = match reason {
                Degradation::Transform(_) => &self.metrics.degraded_transform,
                Degradation::Verification(_) => &self.metrics.degraded_verification,
                Degradation::Budget(_) => &self.metrics.degraded_budget,
                Degradation::Panic(_) => &self.metrics.degraded_panic,
                Degradation::Fault(_) => &self.metrics.degraded_fault,
            };
            slot.fetch_add(1, Ordering::Relaxed);
        }
        ServiceMetrics::add_duration(&self.metrics.queue_wait_ns, jm.queue_wait);
        ServiceMetrics::add_duration(&self.metrics.fe_ns, jm.fe);
        ServiceMetrics::add_duration(&self.metrics.ipa_ns, jm.ipa);
        ServiceMetrics::add_duration(&self.metrics.be_ns, jm.be);
        ServiceMetrics::add_duration(&self.metrics.exec_ns, jm.exec);
        if let Ok(c) = self.cache.lock() {
            // Evictions and re-verification drops are bookkept inside
            // the cache; mirror them into the exported counters
            // (hits/misses are tallied directly).
            self.metrics
                .cache_evictions
                .store(c.counters().2, Ordering::Relaxed);
            self.metrics
                .cache_reverified
                .store(c.corrupt_drops(), Ordering::Relaxed);
        }
        JobOutcome {
            id: job.id.clone(),
            status,
            metrics: jm,
            attempts,
            quarantined,
        }
    }
}

thread_local! {
    // Set while a job body runs under `catch_unwind`, so the process
    // panic hook stays silent for panics the service absorbs.
    static SUPPRESS_PANIC_OUTPUT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// `catch_unwind` without the default hook's stderr backtrace: the hook
/// is wrapped once (chaining to whatever was installed before) to skip
/// printing when the panicking thread is inside a guarded job body.
/// Panics on other threads are reported exactly as before.
fn quiet_catch_unwind<R>(
    body: AssertUnwindSafe<impl FnOnce() -> R>,
) -> Result<R, Box<dyn std::any::Any + Send>> {
    static WRAP_HOOK: std::sync::Once = std::sync::Once::new();
    WRAP_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(|s| s.get()) {
                prev(info);
            }
        }));
    });
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
    let result = catch_unwind(body);
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    result
}

/// `Some(Degradation::Budget)` once `deadline` has passed.
fn over_deadline(deadline: Option<Instant>) -> Option<Degradation> {
    match deadline {
        Some(d) if Instant::now() > d => {
            Some(Degradation::Budget("wall-clock budget exhausted".into()))
        }
        _ => None,
    }
}

/// The §3 advisory report for a program whose transform was abandoned.
fn advisory_report(prog: &Program, analysis: &Analysis) -> String {
    let input = slo_advisor::AdvisorInput {
        prog,
        ipa: &analysis.ipa,
        graphs: &analysis.graphs,
        counts: &analysis.counts,
        dcache: analysis.dcache.as_ref(),
        strides: None,
        plan: Some(&analysis.plan),
    };
    slo_advisor::render_report(&input)
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
