//! The TCP ingress: a newline-framed socket front end multiplexing
//! many concurrent clients onto one [`Service`].
//!
//! Design constraints, in order:
//!
//! * **Bounded admission, never unbounded buffering.** Every job line
//!   must win an admission permit before it reaches the worker pool.
//!   At most [`NetConfig::max_inflight`] lines run concurrently and at
//!   most [`NetConfig::queue_capacity`] wait; anything beyond that is
//!   *shed* with a `status:"shed"` reply carrying `retry_after_ms`
//!   (scaled by current queue depth), so an overloaded server degrades
//!   into polite rejections instead of an ever-growing queue.
//! * **Per-client fairness.** Permits are accounted per client IP: one
//!   chatty client (even over many connections) can hold at most
//!   [`NetConfig::per_client_inflight`] admitted-or-waiting lines, so
//!   it saturates its own share, not the whole queue.
//! * **Slow-client defense.** A partial frame older than
//!   [`NetConfig::read_timeout_ms`] (a slow-loris client) gets a
//!   `slow-read` error and the connection is closed; a frame that
//!   exceeds `MAX_LINE_LEN` without a newline is rejected the same way
//!   — the server never buffers an unbounded or immortal line.
//! * **Graceful drain.** [`NetServer::request_shutdown`] stops the
//!   accept loop, wakes queued waiters (they close cleanly), and
//!   [`NetServer::run`] joins every connection thread before
//!   returning, so in-flight requests finish and their outcomes are
//!   journaled (the WAL flushes on every record) before the listener
//!   goes away.
//! * **One protocol.** Connections speak exactly the
//!   [`crate::proto`] wire format via the same [`Session`] used by
//!   stdin serve — there is no TCP-specific parser to drift.
//!
//! Chaos sites ([`slo_chaos::Site`]) are threaded through the
//! service's fault plan: `NetSlowLoris` stalls a read mid-frame,
//! `NetDisconnect` drops a connection after a request ran but before
//! its reply was written (the acked-vs-journaled window), and
//! `NetAcceptStorm` forces a just-accepted connection through the
//! over-capacity rejection path.

use crate::journal::Journal;
use crate::manifest::MAX_LINE_LEN;
use crate::proto::{Reply, Response, Session, WireError};
use crate::service::Service;
use slo_chaos::Site;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration for [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Directory job-line `.sir`/`.prof` paths resolve against.
    pub dir: PathBuf,
    /// Maximum concurrently connected clients; further connections get
    /// a `busy` reply and are closed.
    pub max_clients: usize,
    /// Maximum job lines running on the worker pool at once.
    pub max_inflight: usize,
    /// Maximum admitted-but-waiting job lines; beyond this the server
    /// sheds with `retry_after_ms` instead of queueing.
    pub queue_capacity: usize,
    /// Per-client-IP ceiling on admitted-or-waiting job lines.
    pub per_client_inflight: usize,
    /// Close a connection whose partial frame is older than this.
    pub read_timeout_ms: u64,
    /// Base retry hint for shed replies; the actual hint is
    /// `base * (1 + queue_depth)`.
    pub retry_after_ms: u64,
    /// Reply in the pre-protocol legacy line format instead of JSON.
    pub legacy: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            dir: PathBuf::from("."),
            max_clients: 64,
            max_inflight: 4,
            queue_capacity: 16,
            per_client_inflight: 8,
            read_timeout_ms: 5_000,
            retry_after_ms: 50,
            legacy: false,
        }
    }
}

/// Admission verdict for one job line.
enum Admit {
    /// Run it (the caller must release the permit when done).
    Permit,
    /// Queue full (or client over its fairness share): shed.
    Shed {
        /// Suggested client backoff.
        retry_after_ms: u64,
    },
    /// The server is draining; no new work.
    Closed,
}

#[derive(Default)]
struct AdmInner {
    inflight: usize,
    waiting: usize,
    /// Admitted-or-waiting lines per client IP.
    per_client: HashMap<String, usize>,
    closed: bool,
}

/// The bounded admission queue: a counting semaphore with a waiting
/// cap, per-client accounting, and drain support.
struct Admission {
    max_inflight: usize,
    queue_capacity: usize,
    per_client_max: usize,
    retry_base_ms: u64,
    inner: Mutex<AdmInner>,
    cv: Condvar,
    depth_peak: AtomicU64,
}

impl Admission {
    fn new(cfg: &NetConfig) -> Admission {
        Admission {
            max_inflight: cfg.max_inflight.max(1),
            queue_capacity: cfg.queue_capacity,
            per_client_max: cfg.per_client_inflight.max(1),
            retry_base_ms: cfg.retry_after_ms.max(1),
            inner: Mutex::new(AdmInner::default()),
            cv: Condvar::new(),
            depth_peak: AtomicU64::new(0),
        }
    }

    fn retry_hint(&self, waiting: usize) -> u64 {
        self.retry_base_ms * (1 + waiting as u64)
    }

    /// Try to admit one job line for `client`. Blocks (bounded by the
    /// queue capacity and drain) when the pool is saturated.
    fn acquire(&self, client: &str) -> Admit {
        let mut g = self.inner.lock().expect("admission lock");
        if g.closed {
            return Admit::Closed;
        }
        let held = g.per_client.get(client).copied().unwrap_or(0);
        if held >= self.per_client_max {
            // Fairness: this client already holds its full share.
            return Admit::Shed {
                retry_after_ms: self.retry_hint(g.waiting),
            };
        }
        if g.inflight < self.max_inflight {
            g.inflight += 1;
            *g.per_client.entry(client.to_string()).or_insert(0) += 1;
            return Admit::Permit;
        }
        if g.waiting >= self.queue_capacity {
            return Admit::Shed {
                retry_after_ms: self.retry_hint(g.waiting),
            };
        }
        g.waiting += 1;
        *g.per_client.entry(client.to_string()).or_insert(0) += 1;
        self.depth_peak
            .fetch_max(g.waiting as u64, Ordering::Relaxed);
        loop {
            g = self
                .cv
                .wait_timeout(g, Duration::from_millis(50))
                .expect("admission wait")
                .0;
            if g.closed {
                g.waiting -= 1;
                release_client(&mut g, client);
                return Admit::Closed;
            }
            if g.inflight < self.max_inflight {
                g.waiting -= 1;
                g.inflight += 1;
                return Admit::Permit;
            }
        }
    }

    /// Release a permit returned by [`Admission::acquire`].
    fn release(&self, client: &str) {
        let mut g = self.inner.lock().expect("admission lock");
        g.inflight = g.inflight.saturating_sub(1);
        release_client(&mut g, client);
        drop(g);
        self.cv.notify_one();
    }

    /// Current number of waiting (admitted-queue) lines.
    fn depth(&self) -> usize {
        self.inner.lock().expect("admission lock").waiting
    }

    /// Wake every waiter and refuse all future admissions.
    fn close(&self) {
        self.inner.lock().expect("admission lock").closed = true;
        self.cv.notify_all();
    }
}

fn release_client(g: &mut AdmInner, client: &str) {
    if let Some(n) = g.per_client.get_mut(client) {
        *n -= 1;
        if *n == 0 {
            g.per_client.remove(client);
        }
    }
}

/// How many distinct client IPs the per-client request counters track
/// before folding the tail into `"other"`.
const MAX_TRACKED_CLIENTS: usize = 32;

#[derive(Default)]
struct NetMetrics {
    accepted: AtomicU64,
    rejected: AtomicU64,
    requests: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    disconnects: AtomicU64,
    slow_closes: AtomicU64,
    per_client: Mutex<HashMap<String, u64>>,
}

impl NetMetrics {
    fn count_client(&self, client: &str) {
        let mut m = self.per_client.lock().expect("client metrics lock");
        let key = if m.contains_key(client) || m.len() < MAX_TRACKED_CLIENTS {
            client
        } else {
            "other"
        };
        *m.entry(key.to_string()).or_insert(0) += 1;
    }
}

/// A point-in-time copy of the ingress counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    /// Connections accepted into a session.
    pub accepted: u64,
    /// Connections rejected at accept time (over capacity).
    pub rejected: u64,
    /// Request lines received (all kinds).
    pub requests: u64,
    /// Job lines shed by admission control.
    pub shed: u64,
    /// Protocol-level error replies written.
    pub errors: u64,
    /// Connections dropped before their reply was written (chaos's
    /// acked-vs-journaled window, plus client resets mid-write).
    pub disconnects: u64,
    /// Connections closed by the slow-read / overlong-frame defense.
    pub slow_closes: u64,
    /// Job lines waiting in the admission queue right now.
    pub queue_depth: u64,
    /// High-water mark of the admission queue.
    pub queue_depth_peak: u64,
    /// Requests per client IP (bounded; the tail folds into `other`),
    /// sorted by client for deterministic exposition.
    pub per_client: Vec<(String, u64)>,
}

impl NetSnapshot {
    /// The ingress counters in the Prometheus text exposition format
    /// (appended to the service exposition for TCP `metrics prom`;
    /// validated by `slo_obs::conform::check_prometheus`).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "# HELP slo_net_connections_total Ingress connections by event.\n\
             # TYPE slo_net_connections_total counter\n\
             slo_net_connections_total{{event=\"accepted\"}} {}\n\
             slo_net_connections_total{{event=\"rejected\"}} {}\n\
             slo_net_connections_total{{event=\"disconnected\"}} {}\n\
             slo_net_connections_total{{event=\"slow_closed\"}} {}\n\
             # HELP slo_net_requests_total Request lines received.\n\
             # TYPE slo_net_requests_total counter\n\
             slo_net_requests_total {}\n\
             # HELP slo_net_shed_total Job lines shed by admission control.\n\
             # TYPE slo_net_shed_total counter\n\
             slo_net_shed_total {}\n\
             # HELP slo_net_errors_total Protocol error replies written.\n\
             # TYPE slo_net_errors_total counter\n\
             slo_net_errors_total {}\n\
             # HELP slo_net_queue_depth Job lines waiting for admission.\n\
             # TYPE slo_net_queue_depth gauge\n\
             slo_net_queue_depth {}\n\
             # HELP slo_net_queue_depth_peak Admission queue high-water mark.\n\
             # TYPE slo_net_queue_depth_peak gauge\n\
             slo_net_queue_depth_peak {}\n\
             # HELP slo_net_client_requests_total Requests per client IP.\n\
             # TYPE slo_net_client_requests_total counter\n",
            self.accepted,
            self.rejected,
            self.disconnects,
            self.slow_closes,
            self.requests,
            self.shed,
            self.errors,
            self.queue_depth,
            self.queue_depth_peak,
        );
        for (client, n) in &self.per_client {
            let _ = writeln!(
                s,
                "slo_net_client_requests_total{{client=\"{client}\"}} {n}"
            );
        }
        s
    }
}

/// The TCP front end. Bind with [`NetServer::bind`], serve with
/// [`NetServer::run`] (blocks until [`NetServer::request_shutdown`]),
/// observe with [`NetServer::metrics`].
pub struct NetServer {
    listener: TcpListener,
    cfg: NetConfig,
    shutdown: AtomicBool,
    admission: Admission,
    metrics: NetMetrics,
}

impl NetServer {
    /// Bind the listener (nonblocking accept; `run` polls it so the
    /// shutdown flag is honored promptly).
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O errors.
    pub fn bind(cfg: NetConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        Ok(NetServer {
            listener,
            admission: Admission::new(&cfg),
            cfg,
            shutdown: AtomicBool::new(false),
            metrics: NetMetrics::default(),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    ///
    /// # Errors
    ///
    /// Propagates the socket query error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Begin a graceful drain: stop accepting, wake queued waiters,
    /// let in-flight requests finish. [`NetServer::run`] returns once
    /// every connection thread has exited.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.admission.close();
    }

    /// Whether a drain has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// A point-in-time copy of the ingress counters.
    pub fn metrics(&self) -> NetSnapshot {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut per_client: Vec<(String, u64)> = self
            .metrics
            .per_client
            .lock()
            .expect("client metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        per_client.sort();
        NetSnapshot {
            accepted: ld(&self.metrics.accepted),
            rejected: ld(&self.metrics.rejected),
            requests: ld(&self.metrics.requests),
            shed: ld(&self.metrics.shed),
            errors: ld(&self.metrics.errors),
            disconnects: ld(&self.metrics.disconnects),
            slow_closes: ld(&self.metrics.slow_closes),
            queue_depth: self.admission.depth() as u64,
            queue_depth_peak: self.admission.depth_peak.load(Ordering::Relaxed),
            per_client,
        }
    }

    /// Serve until [`NetServer::request_shutdown`]: accept clients,
    /// spawn one scoped thread per connection, and drain on shutdown
    /// (the scope join waits for in-flight requests; outcomes are
    /// journaled before their replies are acknowledged).
    ///
    /// # Errors
    ///
    /// Propagates non-transient accept errors.
    pub fn run(&self, service: &Service, journal: Option<&Mutex<Journal>>) -> std::io::Result<()> {
        let active = AtomicUsize::new(0);
        let result = std::thread::scope(|scope| {
            loop {
                if self.is_shutdown() {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, peer)) => {
                        let storm = service.fault_plan().should_fire(Site::NetAcceptStorm);
                        if storm || active.load(Ordering::SeqCst) >= self.cfg.max_clients {
                            // Over capacity (or a chaos-injected storm
                            // forcing that path): busy-reject politely.
                            self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                            service.trace().instant(
                                "net",
                                "reject",
                                vec![
                                    ("client", peer.ip().to_string().into()),
                                    ("storm", storm.into()),
                                ],
                            );
                            self.write_busy(stream);
                            continue;
                        }
                        self.metrics.accepted.fetch_add(1, Ordering::Relaxed);
                        service.trace().instant(
                            "net",
                            "accept",
                            vec![("client", peer.ip().to_string().into())],
                        );
                        active.fetch_add(1, Ordering::SeqCst);
                        let active = &active;
                        scope.spawn(move || {
                            self.serve_conn(stream, peer, service, journal);
                            active.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            Ok(())
            // Scope join: every connection thread finishes its current
            // request (journaling before acking) and exits.
        });
        service.trace().instant(
            "net",
            "drain",
            vec![(
                "requests",
                self.metrics.requests.load(Ordering::Relaxed).into(),
            )],
        );
        result
    }

    /// Best-effort busy reply on an over-capacity accept.
    fn write_busy(&self, mut stream: TcpStream) {
        let retry = self.admission.retry_hint(self.admission.depth());
        let reply = if self.cfg.legacy {
            format!("error: server busy, retry in {retry} ms\n")
        } else {
            let mut r = Response::shed("", retry);
            r.code = Some("busy".to_string());
            r.message = Some("connection limit reached".to_string());
            format!("{}\n", r.to_json())
        };
        let _ = stream.write_all(reply.as_bytes());
    }

    /// One connection: newline-framed read loop with the slow-client
    /// defense, admission control per job line, and the shared
    /// [`Session`] protocol loop.
    fn serve_conn(
        &self,
        mut stream: TcpStream,
        peer: SocketAddr,
        service: &Service,
        journal: Option<&Mutex<Journal>>,
    ) {
        let client = peer.ip().to_string();
        let _ = stream.set_nonblocking(false);
        // Short poll so shutdown and the slow-read deadline are
        // honored while the client is idle.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        let session = Session::new(service, journal, self.cfg.dir.clone(), self.cfg.legacy);
        let read_timeout = Duration::from_millis(self.cfg.read_timeout_ms.max(1));

        let mut buf: Vec<u8> = Vec::new();
        let mut tmp = [0u8; 1024];
        let mut partial_since: Option<Instant> = None;
        loop {
            // Drain complete frames before reading more.
            while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                let frame: Vec<u8> = buf.drain(..=pos).collect();
                partial_since = if buf.is_empty() {
                    None
                } else {
                    Some(Instant::now())
                };
                let line = String::from_utf8_lossy(&frame[..frame.len() - 1]).into_owned();
                if !self.handle_frame(&mut stream, &client, &line, &session, service) {
                    return;
                }
            }
            if self.is_shutdown() {
                return; // drain: no new frames, current ones finished
            }
            if buf.len() > MAX_LINE_LEN {
                // An unterminated frame longer than any legal line:
                // reject and close rather than buffer without bound.
                self.close_slow(&mut stream, "frame exceeds MAX_LINE_LEN without newline");
                return;
            }
            if let Some(since) = partial_since {
                let stalled = since.elapsed() > read_timeout
                    || service.fault_plan().should_fire(Site::NetSlowLoris);
                if stalled {
                    self.close_slow(&mut stream, "partial frame stalled past the read timeout");
                    return;
                }
            }
            match stream.read(&mut tmp) {
                Ok(0) => return, // EOF
                Ok(n) => {
                    buf.extend_from_slice(&tmp[..n]);
                    if !buf.is_empty() && partial_since.is_none() {
                        partial_since = Some(Instant::now());
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                    ) => {}
                Err(_) => {
                    self.metrics.disconnects.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
    }

    /// Slow-read defense: error reply, count, close.
    fn close_slow(&self, stream: &mut TcpStream, why: &str) {
        self.metrics.slow_closes.fetch_add(1, Ordering::Relaxed);
        let err = WireError {
            code: "slow-read",
            message: why.to_string(),
        };
        let reply = if self.cfg.legacy {
            format!("error: {why}\n")
        } else {
            format!("{}\n", Response::error("", &err).to_json())
        };
        let _ = stream.write_all(reply.as_bytes());
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }

    /// Handle one complete frame; `false` ends the connection.
    fn handle_frame(
        &self,
        stream: &mut TcpStream,
        client: &str,
        line: &str,
        session: &Session<'_>,
        service: &Service,
    ) -> bool {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return true;
        }
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        self.metrics.count_client(client);

        // Control verbs bypass admission — they are cheap and must
        // work *especially* when the server is saturated.
        let control = matches!(trimmed, "quit" | "exit" | "metrics" | "metrics prom")
            || trimmed == "hello"
            || trimmed.starts_with("hello ");
        let permit = if control {
            None
        } else {
            match self.admission.acquire(client) {
                Admit::Permit => Some(()),
                Admit::Shed { retry_after_ms } => {
                    self.metrics.shed.fetch_add(1, Ordering::Relaxed);
                    service.trace().instant(
                        "net",
                        "shed",
                        vec![
                            ("client", client.into()),
                            ("retry_after_ms", (retry_after_ms as i64).into()),
                        ],
                    );
                    let id = trimmed.split_whitespace().next().unwrap_or("");
                    let reply = if self.cfg.legacy {
                        format!("error: overloaded, retry in {retry_after_ms} ms\n")
                    } else {
                        format!("{}\n", Response::shed(id, retry_after_ms).to_json())
                    };
                    return stream.write_all(reply.as_bytes()).is_ok();
                }
                Admit::Closed => return false,
            }
        };
        let reply = session.handle_line(line);
        if permit.is_some() {
            self.admission.release(client);
        }

        // The acked-vs-journaled window: the outcome is durable (the
        // session journals before returning), but the reply is dropped
        // on the floor — the client must reconnect and be answered
        // from the journal.
        if permit.is_some() && service.fault_plan().should_fire(Site::NetDisconnect) {
            self.metrics.disconnects.fetch_add(1, Ordering::Relaxed);
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return false;
        }

        match reply {
            Reply::Quit => {
                let _ = stream.shutdown(std::net::Shutdown::Both);
                false
            }
            Reply::Lines(lines) => {
                let mut out = String::new();
                for l in &lines {
                    if l.contains("\"status\":\"error\"") || l.starts_with("error: ") {
                        self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    }
                    out.push_str(l);
                    out.push('\n');
                }
                if stream.write_all(out.as_bytes()).is_err() {
                    self.metrics.disconnects.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                true
            }
            Reply::Text(mut text) => {
                // TCP `metrics prom` appends the ingress families to
                // the service exposition.
                if trimmed == "metrics prom" {
                    text.push_str(&self.metrics().to_prometheus());
                }
                if stream.write_all(text.as_bytes()).is_err() {
                    self.metrics.disconnects.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;
    use std::io::{BufRead, BufReader};

    const SIR: &str = "func main() -> i64 {\nbb0:\n  ret 7\n}\n";

    fn tmpdir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "slo-net-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    fn test_cfg(dir: PathBuf) -> NetConfig {
        NetConfig {
            dir,
            ..NetConfig::default()
        }
    }

    fn send_lines(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let mut conn = TcpStream::connect(addr).expect("connect");
        for l in lines {
            conn.write_all(format!("{l}\n").as_bytes()).expect("send");
        }
        conn.shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        BufReader::new(conn)
            .lines()
            .map(|l| l.expect("reply line"))
            .collect()
    }

    #[test]
    fn serves_jobs_and_handshake_over_tcp() {
        let dir = tmpdir();
        std::fs::write(dir.join("t.sir"), SIR).expect("write");
        let service = Service::new(ServiceConfig::builder().workers(1).build());
        let server = NetServer::bind(test_cfg(dir)).expect("bind");
        let addr = server.local_addr().expect("addr");
        std::thread::scope(|s| {
            s.spawn(|| server.run(&service, None).expect("run"));
            let replies = send_lines(addr, &["hello v=1", "t.sir scheme=ispbo", "quit"]);
            assert_eq!(replies.len(), 2, "{replies:?}");
            let hello = Response::parse(&replies[0]).expect("hello json");
            assert_eq!(hello.status, "ok");
            assert_eq!(hello.v, crate::proto::PROTO_VERSION);
            let job = Response::parse(&replies[1]).expect("job json");
            assert_eq!(job.status, "optimized");
            assert_eq!(job.id, "t");
            server.request_shutdown();
        });
        let m = server.metrics();
        assert_eq!(m.accepted, 1);
        assert_eq!(m.requests, 3);
        assert_eq!(m.shed, 0);
    }

    #[test]
    fn validator_is_shared_on_the_tcp_path() {
        let dir = tmpdir();
        std::fs::write(dir.join("v.sir"), SIR).expect("write");
        let service = Service::new(ServiceConfig::builder().workers(1).build());
        let server = NetServer::bind(test_cfg(dir)).expect("bind");
        let addr = server.local_addr().expect("addr");
        std::thread::scope(|s| {
            s.spawn(|| server.run(&service, None).expect("run"));
            let long = format!("v.sir {}", "x".repeat(MAX_LINE_LEN));
            let replies = send_lines(
                addr,
                &[&long, "v.sir steps=1 steps=2", "v.sir wat=1", "quit"],
            );
            assert_eq!(replies.len(), 3, "{replies:?}");
            let codes: Vec<String> = replies
                .iter()
                .map(|r| Response::parse(r).expect("json").code.expect("code"))
                .collect();
            assert_eq!(
                codes,
                ["line-too-long", "duplicate-attribute", "bad-request"]
            );
            server.request_shutdown();
        });
        assert_eq!(server.metrics().errors, 3);
    }

    #[test]
    fn overlong_unterminated_frame_is_closed() {
        let dir = tmpdir();
        let service = Service::new(ServiceConfig::builder().workers(1).build());
        let server = NetServer::bind(test_cfg(dir)).expect("bind");
        let addr = server.local_addr().expect("addr");
        std::thread::scope(|s| {
            s.spawn(|| server.run(&service, None).expect("run"));
            let mut conn = TcpStream::connect(addr).expect("connect");
            // No newline, ever: the server must give up, not buffer.
            conn.write_all(&vec![b'x'; MAX_LINE_LEN + 2]).expect("send");
            let mut reply = String::new();
            BufReader::new(&mut conn)
                .read_line(&mut reply)
                .expect("reply");
            let r = Response::parse(&reply).expect("json");
            assert_eq!(r.status, "error");
            assert_eq!(r.code.as_deref(), Some("slow-read"));
            server.request_shutdown();
        });
        assert_eq!(server.metrics().slow_closes, 1);
    }

    #[test]
    fn admission_sheds_per_client_share_and_recovers() {
        let adm = Admission::new(&NetConfig {
            max_inflight: 1,
            queue_capacity: 0,
            per_client_inflight: 1,
            retry_after_ms: 25,
            ..NetConfig::default()
        });
        assert!(matches!(adm.acquire("10.0.0.1"), Admit::Permit));
        // Same client: over its fairness share.
        let Admit::Shed { retry_after_ms } = adm.acquire("10.0.0.1") else {
            panic!("expected per-client shed");
        };
        assert_eq!(retry_after_ms, 25);
        // Different client: pool is saturated and the queue holds 0.
        assert!(matches!(adm.acquire("10.0.0.2"), Admit::Shed { .. }));
        adm.release("10.0.0.1");
        assert!(matches!(adm.acquire("10.0.0.2"), Admit::Permit));
        adm.close();
        assert!(matches!(adm.acquire("10.0.0.3"), Admit::Closed));
    }

    #[test]
    fn queued_acquire_wakes_when_a_permit_frees() {
        let adm = Admission::new(&NetConfig {
            max_inflight: 1,
            queue_capacity: 4,
            per_client_inflight: 8,
            ..NetConfig::default()
        });
        assert!(matches!(adm.acquire("a"), Admit::Permit));
        std::thread::scope(|s| {
            let waiter = s.spawn(|| adm.acquire("b"));
            // Give the waiter time to enqueue, then free the permit.
            while adm.depth() == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
            adm.release("a");
            assert!(matches!(waiter.join().expect("join"), Admit::Permit));
        });
        assert_eq!(adm.depth(), 0);
        assert_eq!(adm.depth_peak.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn net_prometheus_exposition_is_conformant() {
        let snap = NetSnapshot {
            accepted: 3,
            rejected: 1,
            requests: 9,
            shed: 2,
            errors: 1,
            disconnects: 1,
            slow_closes: 1,
            queue_depth: 0,
            queue_depth_peak: 4,
            per_client: vec![("127.0.0.1".to_string(), 8), ("other".to_string(), 1)],
        };
        let text = snap.to_prometheus();
        let s = slo_obs::conform::check_prometheus(&text).expect("valid exposition");
        for family in [
            "slo_net_connections_total",
            "slo_net_requests_total",
            "slo_net_shed_total",
            "slo_net_errors_total",
            "slo_net_queue_depth",
            "slo_net_queue_depth_peak",
            "slo_net_client_requests_total",
        ] {
            assert!(s.has(family), "missing family {family}");
        }
        assert!(text.contains("slo_net_shed_total 2"));
        assert!(text.contains("slo_net_client_requests_total{client=\"127.0.0.1\"} 8"));
    }

    #[test]
    fn graceful_drain_finishes_inflight_and_stops_accepting() {
        let dir = tmpdir();
        std::fs::write(dir.join("d.sir"), SIR).expect("write");
        let service = Service::new(ServiceConfig::builder().workers(1).build());
        let server = NetServer::bind(test_cfg(dir)).expect("bind");
        let addr = server.local_addr().expect("addr");
        std::thread::scope(|s| {
            let runner = s.spawn(|| server.run(&service, None));
            let replies = send_lines(addr, &["d.sir", "quit"]);
            assert_eq!(replies.len(), 1);
            server.request_shutdown();
            assert!(runner.join().expect("join").is_ok());
        });
        assert_eq!(server.metrics().accepted, 1);
        assert_eq!(service.metrics().jobs, 1, "in-flight job finished");
        // Post-drain: the listener is gone, so new connections are
        // refused (or land in a dead backlog and are never served).
        drop(server);
        assert!(TcpStream::connect(addr).is_err());
    }
}
