//! # slo-service — the concurrent batch-optimization service
//!
//! The paper's pipeline is a one-shot FE → IPA → BE pass over a single
//! program. This crate turns it into a service: [`Service`] accepts
//! many optimization jobs (program source or parsed IR + scheme +
//! config), shards them across a bounded worker pool, and returns
//! structured [`JobOutcome`]s.
//!
//! * **Per-request budgets** ([`Budget`]): wall-clock + VM step limits,
//!   with `catch_unwind` panic isolation per job.
//! * **Graceful degradation**: a job whose transform fails differential
//!   verification, exhausts its budget, or panics downgrades to the §3
//!   advisory report instead of failing the batch.
//! * **Content-hash caching** ([`cache::AnalysisCache`]): the FE + IPA
//!   half of the pipeline is memoized under a stable digest of the
//!   normalized IR + scheme + config, with an LRU bound — repeated
//!   analysis over near-identical inputs is the dominant batch cost.
//! * **Phase metrics** ([`MetricsSnapshot`]): queue wait, per-phase
//!   timings, cache hit/miss, degradation, retry/quarantine and
//!   fault-injection counters, exportable as JSON and Prometheus text.
//! * **Supervision** ([`Service::run_job`]): transient failures
//!   (panics, exhausted budgets, injected faults) are retried with a
//!   bounded deterministic backoff; deterministic failures never are;
//!   jobs that stay transient are quarantined without losing their
//!   advisory output.
//! * **Fault injection** ([`slo_chaos::FaultPlan`] via
//!   [`service::Service::with_chaos`]): deterministic seed-driven
//!   faults in the VM, cache, pool and manifest reader, zero-cost when
//!   disabled.
//! * **Crash recovery** ([`journal::Journal`]): `slo serve` appends
//!   every outcome to a JSONL write-ahead journal and replays it on
//!   restart, so a killed session never recomputes completed jobs.
//! * **Persistent analysis store** ([`store::AnalysisStore`]): an
//!   append-only, crash-safe, checksummed segment store layered under
//!   the LRU (`slo batch/serve --store <dir>`) — analyses survive
//!   restarts and SIGKILL, corrupt records are dropped, counted and
//!   recomputed, never served, and compaction reclaims dead bytes
//!   under a stale-safe lock.
//! * **One wire protocol** ([`proto`]): versioned [`Request`] /
//!   [`Response`] types — manifest attribute syntax in, one-line JSON
//!   out — shared verbatim by stdin serve, the TCP ingress and
//!   `slo batch --wire`, with the WAL key folded into
//!   [`proto::Request::fingerprint`] so wire and journal never drift.
//! * **Network ingress** ([`net::NetServer`]): a newline-framed TCP
//!   listener multiplexing many clients onto the worker pool, with a
//!   bounded admission queue, load shedding (`retry_after_ms` replies,
//!   never unbounded buffering), per-client fairness, slow-client
//!   read timeouts and graceful drain-on-shutdown.
//!
//! # Examples
//!
//! ```
//! use slo_service::{Job, Service, ServiceConfig};
//!
//! let src = "func main() -> i64 {\nbb0:\n  ret 42\n}\n";
//! let service = Service::new(ServiceConfig::builder().workers(2).build());
//! let jobs = vec![Job::from_source("a", src), Job::from_source("b", src)];
//! let outcomes = service.run_batch(&jobs);
//! assert_eq!(outcomes.len(), 2);
//! // same content -> the second job hits the analysis cache
//! assert_eq!(service.metrics().cache_hits + service.metrics().cache_misses, 2);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod job;
pub mod journal;
pub mod manifest;
pub mod metrics;
pub mod net;
pub mod pool;
pub mod proto;
pub mod service;
pub mod store;

pub use job::{
    Budget, Degradation, Fault, Job, JobInput, JobMetrics, JobOutcome, JobStatus, Optimized,
    SchemeSpec,
};
pub use journal::{job_key, Journal, JournalEntry};
pub use manifest::{chaos_line, load_manifest, parse_job_line, MAX_LINE_LEN};
pub use metrics::{MetricsSnapshot, ServiceMetrics};
pub use net::{NetConfig, NetServer, NetSnapshot};
pub use pool::{par_map_bounded, par_map_supervised};
pub use proto::{legacy_line, Reply, Request, Response, Session, WireError, PROTO_VERSION};
pub use service::{Service, ServiceConfig, ServiceConfigBuilder};
pub use store::{AnalysisStore, StoreCounters};

// The chaos vocabulary the service API speaks, re-exported so CLI and
// bench consumers need no direct `slo-chaos` dependency.
pub use slo_chaos::{ChaosConfig, Clock, FaultPlan, RetryPolicy, Site};
