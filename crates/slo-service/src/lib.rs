//! # slo-service — the concurrent batch-optimization service
//!
//! The paper's pipeline is a one-shot FE → IPA → BE pass over a single
//! program. This crate turns it into a service: [`Service`] accepts
//! many optimization jobs (program source or parsed IR + scheme +
//! config), shards them across a bounded worker pool, and returns
//! structured [`JobOutcome`]s.
//!
//! * **Per-request budgets** ([`Budget`]): wall-clock + VM step limits,
//!   with `catch_unwind` panic isolation per job.
//! * **Graceful degradation**: a job whose transform fails differential
//!   verification, exhausts its budget, or panics downgrades to the §3
//!   advisory report instead of failing the batch.
//! * **Content-hash caching** ([`cache::AnalysisCache`]): the FE + IPA
//!   half of the pipeline is memoized under a stable digest of the
//!   normalized IR + scheme + config, with an LRU bound — repeated
//!   analysis over near-identical inputs is the dominant batch cost.
//! * **Phase metrics** ([`MetricsSnapshot`]): queue wait, per-phase
//!   timings, cache hit/miss and degradation counters, exportable as
//!   JSON.
//!
//! # Examples
//!
//! ```
//! use slo_service::{Job, Service, ServiceConfig};
//!
//! let src = "func main() -> i64 {\nbb0:\n  ret 42\n}\n";
//! let service = Service::new(ServiceConfig::builder().workers(2).build());
//! let jobs = vec![Job::from_source("a", src), Job::from_source("b", src)];
//! let outcomes = service.run_batch(&jobs);
//! assert_eq!(outcomes.len(), 2);
//! // same content -> the second job hits the analysis cache
//! assert_eq!(service.metrics().cache_hits + service.metrics().cache_misses, 2);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod job;
pub mod manifest;
pub mod metrics;
pub mod pool;
pub mod service;

pub use job::{
    Budget, Degradation, Fault, Job, JobInput, JobMetrics, JobOutcome, JobStatus, Optimized,
    SchemeSpec,
};
pub use manifest::{load_manifest, parse_job_line};
pub use metrics::{MetricsSnapshot, ServiceMetrics};
pub use pool::par_map_bounded;
pub use service::{Service, ServiceConfig, ServiceConfigBuilder};
