//! The crash-recoverable serve journal: an append-only JSONL
//! write-ahead log of completed job outcomes.
//!
//! `slo serve --journal <path>` records one line per finished job, keyed
//! by a stable digest of the wire line that requested it, the job id
//! and the program source it resolved to ([`job_key`]). On restart the
//! journal is replayed: a job whose key is already present is served
//! from the journal summary instead of being recomputed, so a serve
//! process killed mid-batch resumes where it left off — completed work
//! is never redone, in-flight work (started but not journaled) simply
//! reruns.
//!
//! The format is deliberately dumb: one self-contained JSON object per
//! line, flushed after every append. Replay tolerates a torn final
//! line (the crash may have landed mid-write); anything that does not
//! parse as a complete record is ignored. There is no compaction —
//! journals are per-serve-session artifacts, not databases.
//!
//! Every record carries a trailing `"c"` field: an FNV-1a checksum of
//! the record body, verified on replay. An interior line whose frame is
//! intact but whose checksum does not match (bit rot, a concurrent
//! writer, hand edits) is skipped and counted
//! ([`Journal::corrupt_skipped`]) instead of being trusted. Records
//! written before the checksum existed have no `"c"` field and still
//! replay — the field is versioning by presence.

use crate::job::{Job, JobStatus};
use crate::proto;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// A replayable journal entry: what a prior serve session recorded for
/// a completed job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// The job's caller-visible id.
    pub id: String,
    /// `optimized` / `advisory` / `failed` (see [`JobStatus::kind`]).
    pub status: String,
    /// The one-line reply summary the session printed for the job.
    pub summary: String,
}

/// The append-only outcome journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    completed: HashMap<u64, JournalEntry>,
    recovered: usize,
    corrupt_skipped: usize,
}

/// Stable identity of "this request line produced this job over this
/// source". The derivation lives in [`proto::Request::fingerprint`] —
/// the wire protocol and the WAL key are the same bits by
/// construction, so they can never drift; this is a convenience alias
/// for journal-facing callers.
pub fn job_key(line: &str, job: &Job) -> u64 {
    proto::Request::fingerprint(line, job)
}

impl Journal {
    /// Open (or create) the journal at `path`, replaying any complete
    /// records already present. The number of recovered outcomes is
    /// available via [`Journal::recovered`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from opening or reading the file; torn or
    /// malformed records are skipped, never fatal.
    pub fn open(path: &Path) -> std::io::Result<Journal> {
        let mut completed = HashMap::new();
        let mut corrupt_skipped = 0;
        if let Ok(f) = File::open(path) {
            for line in BufReader::new(f).lines() {
                let line = line?;
                match parse_record(&line) {
                    Parsed::Entry(key, entry) => {
                        completed.insert(key, entry);
                    }
                    Parsed::Corrupt => corrupt_skipped += 1,
                    Parsed::Torn => {}
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let recovered = completed.len();
        Ok(Journal {
            path: path.to_path_buf(),
            file,
            completed,
            recovered,
            corrupt_skipped,
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// How many completed outcomes the journal replayed at open time.
    pub fn recovered(&self) -> usize {
        self.recovered
    }

    /// How many interior records were skipped at open time because
    /// their checksum did not match their content. A torn final line
    /// (an interrupted append) is expected crash damage and is *not*
    /// counted here — this counts records that were fully written and
    /// then changed.
    pub fn corrupt_skipped(&self) -> usize {
        self.corrupt_skipped
    }

    /// The replayed (or since-recorded) entry for `key`, if any.
    pub fn lookup(&self, key: u64) -> Option<&JournalEntry> {
        self.completed.get(&key)
    }

    /// Append one completed outcome and flush it to disk before
    /// returning — a crash after `record` never loses the entry.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the append or flush.
    pub fn record(
        &mut self,
        key: u64,
        id: &str,
        status: &JobStatus,
        summary: &str,
    ) -> std::io::Result<()> {
        let body = format!(
            "{{\"key\":\"{key:016x}\",\"id\":\"{}\",\"status\":\"{}\",\"summary\":\"{}\"",
            escape(id),
            status.kind(),
            escape(summary),
        );
        // The checksum covers everything before its own field, so a
        // replayer can verify without re-canonicalizing.
        let line = format!(
            "{body},\"c\":\"{:016x}\"}}",
            slo_chaos::fnv1a(body.as_bytes())
        );
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        self.completed.insert(
            key,
            JournalEntry {
                id: id.to_string(),
                status: status.kind().to_string(),
                summary: summary.to_string(),
            },
        );
        Ok(())
    }
}

// JSON escaping and field extraction are shared with the wire protocol
// (`proto`): the journal stores reply lines, so the two must agree on
// the encoding anyway.
use proto::{escape, field_str};

enum Parsed {
    /// A complete, (when checksummed) verified record.
    Entry(u64, JournalEntry),
    /// An intact frame whose checksum disagrees with its content.
    Corrupt,
    /// Not a complete record at all: a torn tail or a foreign line.
    Torn,
}

fn parse_record(line: &str) -> Parsed {
    let line = line.trim();
    if !line.starts_with('{') || !line.ends_with('}') {
        return Parsed::Torn;
    }
    // A `"c"` field makes the record self-verifying; its absence marks
    // a pre-checksum record, which replays untested (versioning by
    // presence). `escape` turns every interior quote into `\"`, so an
    // unescaped `,"c":"` can only be the real field.
    if let Some(at) = line.rfind(",\"c\":\"") {
        let Some(sum) = field_str(line, "c").and_then(|s| u64::from_str_radix(&s, 16).ok()) else {
            return Parsed::Corrupt;
        };
        if slo_chaos::fnv1a(&line.as_bytes()[..at]) != sum {
            return Parsed::Corrupt;
        }
    }
    let fields = (|| {
        let key = u64::from_str_radix(&field_str(line, "key")?, 16).ok()?;
        Some((
            key,
            JournalEntry {
                id: field_str(line, "id")?,
                status: field_str(line, "status")?,
                summary: field_str(line, "summary")?,
            },
        ))
    })();
    match fields {
        Some((key, entry)) => Parsed::Entry(key, entry),
        None => Parsed::Torn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "slo-journal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).expect("mkdir");
        d.join(name)
    }

    fn failed(msg: &str) -> JobStatus {
        JobStatus::Failed(msg.to_string())
    }

    #[test]
    fn record_then_reopen_recovers() {
        let p = tmp("roundtrip.jsonl");
        let _ = std::fs::remove_file(&p);
        {
            let mut j = Journal::open(&p).expect("open");
            assert_eq!(j.recovered(), 0);
            j.record(0xabc, "a", &failed("x"), "a\tfailed \"quoted\"")
                .expect("record");
            j.record(0xdef, "b", &failed("y"), "b optimized")
                .expect("record");
        }
        let j = Journal::open(&p).expect("reopen");
        assert_eq!(j.recovered(), 2);
        let e = j.lookup(0xabc).expect("entry");
        assert_eq!(e.id, "a");
        assert_eq!(e.status, "failed");
        assert_eq!(e.summary, "a\tfailed \"quoted\"", "escapes round-trip");
        assert!(j.lookup(0x123).is_none());
    }

    #[test]
    fn torn_last_line_is_skipped() {
        let p = tmp("torn.jsonl");
        let _ = std::fs::remove_file(&p);
        {
            let mut j = Journal::open(&p).expect("open");
            j.record(1, "a", &failed("x"), "s1").expect("record");
            j.record(2, "b", &failed("x"), "s2").expect("record");
        }
        // Simulate a crash mid-append: chop the file mid-record.
        let text = std::fs::read_to_string(&p).expect("read");
        let torn = &text[..text.len() - 25];
        let mut f = File::create(&p).expect("truncate");
        f.write_all(torn.as_bytes()).expect("write");
        drop(f);

        let j = Journal::open(&p).expect("reopen");
        assert_eq!(
            j.recovered(),
            1,
            "complete record survives, torn one dropped"
        );
        assert!(j.lookup(1).is_some());
        assert!(j.lookup(2).is_none());
        assert_eq!(
            j.corrupt_skipped(),
            0,
            "a torn tail is crash damage, not corruption"
        );
    }

    #[test]
    fn corrupted_interior_line_is_skipped_and_counted() {
        let p = tmp("corrupt.jsonl");
        let _ = std::fs::remove_file(&p);
        {
            let mut j = Journal::open(&p).expect("open");
            j.record(1, "a", &failed("x"), "s1").expect("record");
            j.record(2, "b", &failed("x"), "summary-two")
                .expect("record");
            j.record(3, "c", &failed("x"), "s3").expect("record");
        }
        // Flip a byte inside the middle record's summary; the line
        // still parses, but the checksum no longer matches.
        let text = std::fs::read_to_string(&p).expect("read");
        let tampered = text.replace("summary-two", "summary-2wo");
        assert_ne!(text, tampered, "the tamper target must exist");
        std::fs::write(&p, tampered).expect("write");

        let j = Journal::open(&p).expect("reopen");
        assert_eq!(j.recovered(), 2, "the tampered record is not trusted");
        assert!(j.lookup(1).is_some());
        assert!(j.lookup(2).is_none(), "corrupt entry never replays");
        assert!(j.lookup(3).is_some(), "records after the damage replay");
        assert_eq!(j.corrupt_skipped(), 1);
    }

    #[test]
    fn pre_checksum_records_still_replay() {
        let p = tmp("legacy.jsonl");
        let _ = std::fs::remove_file(&p);
        // A record exactly as the pre-checksum writer emitted it.
        std::fs::write(
            &p,
            "{\"key\":\"000000000000002a\",\"id\":\"old\",\"status\":\"failed\",\"summary\":\"s\"}\n",
        )
        .expect("write");
        let j = Journal::open(&p).expect("open");
        assert_eq!(j.recovered(), 1, "the checksum field is optional");
        assert_eq!(j.corrupt_skipped(), 0);
        assert_eq!(j.lookup(0x2a).expect("entry").id, "old");
    }

    #[test]
    fn summary_containing_a_fake_checksum_field_is_not_misparsed() {
        let p = tmp("fakefield.jsonl");
        let _ = std::fs::remove_file(&p);
        {
            let mut j = Journal::open(&p).expect("open");
            // The escaped quotes keep this from looking like a real
            // `"c"` field to the verifier.
            j.record(7, "a", &failed("x"), "tricky,\"c\":\"0000\" tail")
                .expect("record");
        }
        let j = Journal::open(&p).expect("reopen");
        assert_eq!(j.recovered(), 1);
        assert_eq!(j.corrupt_skipped(), 0);
        assert_eq!(
            j.lookup(7).expect("entry").summary,
            "tricky,\"c\":\"0000\" tail"
        );
    }

    #[test]
    fn job_key_tracks_line_id_and_source() {
        let job = |src: &str, id: &str| Job {
            id: id.to_string(),
            ..Job::from_source(id, src)
        };
        let k = job_key("a.sir steps=10", &job("ret 0", "a"));
        assert_eq!(k, job_key("a.sir steps=10", &job("ret 0", "a")));
        assert_ne!(k, job_key("a.sir steps=20", &job("ret 0", "a")));
        assert_ne!(k, job_key("a.sir steps=10", &job("ret 1", "a")));
        assert_ne!(k, job_key("a.sir steps=10", &job("ret 0", "a#1")));
    }
}
