//! The bounded worker pool the service shards jobs across.
//!
//! A scoped-thread work queue (the container has no rayon): workers
//! pull item indices off a shared atomic counter, compute results
//! locally, and the caller reassembles them in input order — so a
//! parallel batch is a permutation-free, bit-identical replay of the
//! sequential one. `bench::par` delegates here; this crate owns the
//! implementation because the service is its primary consumer.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Map `f` over `items` on at most `workers` threads, preserving input
/// order. `workers == 0` means "all available cores". Falls back to a
/// sequential map for empty/singleton inputs or a single worker.
/// Panics in `f` propagate to the caller (the service wraps job bodies
/// in `catch_unwind` *before* they reach the pool).
pub fn par_map_bounded<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = if workers == 0 { hw } else { workers }.min(items.len());
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(local) => local,
                // re-raise the worker's own payload so callers (and
                // `should_panic` tests) see the original message
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_bounded() {
        let items: Vec<u64> = (0..257).collect();
        for workers in [0, 1, 2, 8] {
            let out = par_map_bounded(workers, &items, |&x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u32> = vec![];
        assert!(par_map_bounded(4, &none, |&x| x).is_empty());
        assert_eq!(par_map_bounded(4, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        par_map_bounded(4, &items, |&x| {
            assert!(x != 42, "boom");
            x
        });
    }
}
