//! The bounded worker pool the service shards jobs across.
//!
//! A scoped-thread work queue (the container has no rayon): workers
//! pull item indices off a shared atomic counter, compute results
//! locally, and the caller reassembles them in input order — so a
//! parallel batch is a permutation-free, bit-identical replay of the
//! sequential one. `bench::par` delegates here; this crate owns the
//! implementation because the service is its primary consumer.
//!
//! The supervised variant ([`par_map_supervised`]) adds the chaos
//! plan's `PoolWorkerPanic` site: a firing query kills the pulling
//! worker mid-queue (it stops draining work, orphaning the item it
//! just claimed). Surviving workers keep pulling, and after the scope
//! joins, the caller's thread — the supervisor — completes every
//! orphaned item itself, so the batch result is identical to the
//! fault-free run no matter how many workers die.

use slo_chaos::{FaultPlan, Site};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` on at most `workers` threads, preserving input
/// order. `workers == 0` means "all available cores". Falls back to a
/// sequential map for empty/singleton inputs or a single worker.
/// Panics in `f` propagate to the caller (the service wraps job bodies
/// in `catch_unwind` *before* they reach the pool).
pub fn par_map_bounded<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_supervised(workers, items, &FaultPlan::disabled(), f)
}

/// [`par_map_bounded`] with worker-death injection: each queue pull
/// queries the plan's `PoolWorkerPanic` site, and a firing query makes
/// that worker die on the spot, orphaning its claimed item. Orphans
/// are recomputed by the supervising caller after the pool joins —
/// output order and content match the fault-free map exactly.
pub fn par_map_supervised<T, R, F>(workers: usize, items: &[T], faults: &FaultPlan, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = if workers == 0 { hw } else { workers }.min(items.len());
    if workers <= 1 {
        // No pool, nothing to kill: the caller *is* the supervisor.
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let orphans: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        if faults.should_fire(Site::PoolWorkerPanic) {
                            // This worker dies; the claimed item is
                            // orphaned for the supervisor sweep.
                            orphans.lock().expect("orphan list").push(i);
                            break;
                        }
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(local) => local,
                // re-raise the worker's own payload so callers (and
                // `should_panic` tests) see the original message
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    // Supervisor sweep: every worker may have died, but the caller's
    // thread completes whatever they dropped — both the items workers
    // claimed and abandoned, and the queue tail nobody lived to pull.
    for i in orphans.into_inner().expect("orphan list") {
        tagged.push((i, f(&items[i])));
    }
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(item) = items.get(i) else { break };
        tagged.push((i, f(item)));
    }
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_bounded() {
        let items: Vec<u64> = (0..257).collect();
        for workers in [0, 1, 2, 8] {
            let out = par_map_bounded(workers, &items, |&x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u32> = vec![];
        assert!(par_map_bounded(4, &none, |&x| x).is_empty());
        assert_eq!(par_map_bounded(4, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn all_workers_dying_still_completes_every_item() {
        use slo_chaos::ChaosConfig;
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3).collect();
        // Every pull kills the worker: each worker orphans its first
        // item and dies, and the supervisor computes everything.
        let always =
            FaultPlan::with_config(11, ChaosConfig::never().rate(Site::PoolWorkerPanic, 1024));
        let out = par_map_supervised(4, &items, &always, |&x| x * 3);
        assert_eq!(out, expect);
        assert!(always.injected(Site::PoolWorkerPanic) >= 1);

        // A probabilistic plan also preserves the exact result.
        let some = FaultPlan::seeded(5);
        let out = par_map_supervised(4, &items, &some, |&x| x * 3);
        assert_eq!(out, expect);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        par_map_bounded(4, &items, |&x| {
            assert!(x != 42, "boom");
            x
        });
    }
}
