//! The persistent analysis store: an append-only, crash-safe segment
//! store for serialized [`Analysis`] records, keyed by the same FNV
//! content fingerprints as the in-memory cache
//! ([`slo::analysis_cache_key`]).
//!
//! The store is the durable tier beneath [`crate::cache::AnalysisCache`]:
//! an LRU miss falls through to disk before recomputing, and a fresh
//! computation is written back, so analysis results survive process
//! restarts and SIGKILL — the warm-start half of ROADMAP item 2.
//!
//! # On-disk format
//!
//! A store directory holds numbered segment files. The active segment
//! (`seg-NNNNNN.open`) receives appends; once it reaches the seal
//! threshold it is fsync'd and atomically renamed to `seg-NNNNNN.seg`,
//! so a sealed segment is always a complete, durable prefix and a kill
//! at any point leaves at worst a torn tail on the active segment.
//! Each record is self-describing:
//!
//! ```text
//! [4B magic "SLOR"] [8B key LE] [4B payload len LE] [payload] [8B FNV-1a LE]
//! ```
//!
//! The trailing checksum covers the header *and* the payload, and is
//! verified on every read — including re-reads of records that scanned
//! clean at open time, because bit rot does not schedule itself around
//! `open`. A record that fails the checksum (or fails
//! [`slo::decode_analysis`]'s structural validation) is dropped from
//! the index, counted in [`StoreCounters::corrupt_drops`], and the
//! caller recomputes: a corrupt record is never served. This extends
//! the cache's `get_checked` re-verification discipline to disk, where
//! the fingerprint alone would not suffice ([`ipa_fingerprint`] digests
//! only the planner-relevant subset of an analysis).
//!
//! # Replay
//!
//! Opening scans every segment in order. A record whose checksum fails
//! but whose frame is intact is skipped and counted (interior bit rot);
//! a frame that no longer parses — bad magic, impossible length,
//! missing bytes — ends the scan of that segment (torn tail). Later
//! segments still replay: damage is contained to the segment it
//! happened in.
//!
//! # Compaction
//!
//! [`AnalysisStore::compact`] rewrites live records into a fresh sealed
//! segment and deletes the old files, reclaiming space held by dead
//! (superseded or corrupt) records. It runs under an exclusive
//! `store.lock` file carrying the owner's pid; a lock whose owner is no
//! longer alive is stale and is reclaimed, so a compactor killed
//! mid-pass never wedges the store.
//!
//! # Fault injection
//!
//! Three [`Site`]s prove the robustness claims deterministically:
//! [`Site::StoreTornWrite`] truncates a put mid-body (and rolls the
//! segment, as a crash would), [`Site::StoreBitRot`] flips one byte of
//! a just-written record on disk, and [`Site::StoreLockStale`] plants a
//! dead compactor's lock file before compaction acquires it.
//!
//! [`ipa_fingerprint`]: slo::analysis::ipa_fingerprint

use slo::Analysis;
use slo_chaos::{fnv1a, FaultPlan, Site};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic prefix of one store record frame.
const RECORD_MAGIC: [u8; 4] = *b"SLOR";
/// Frame header bytes before the payload (magic + key + len).
const HEADER_BYTES: usize = 4 + 8 + 4;
/// Frame trailer bytes after the payload (checksum).
const TRAILER_BYTES: usize = 8;
/// Upper bound on one record's payload — a length field beyond this is
/// frame damage, not data.
const MAX_PAYLOAD_BYTES: u32 = 256 * 1024 * 1024;
/// Default seal threshold for the active segment.
const DEFAULT_SEGMENT_BYTES: u64 = 4 * 1024 * 1024;

/// Point-in-time store counters, mirrored into the service metrics as
/// the `slo_store_*` Prometheus families.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Reads that verified and decoded.
    pub hits: u64,
    /// Reads of keys the store does not hold.
    pub misses: u64,
    /// Records dropped by checksum or structural verification — at
    /// open-time scan, on read, or during compaction.
    pub corrupt_drops: u64,
    /// Completed compaction passes.
    pub compactions: u64,
    /// Bytes appended to segments since open (live + since-dead).
    pub bytes_written: u64,
}

#[derive(Debug, Clone, Copy)]
struct Loc {
    seg: u64,
    offset: u64,
    /// Whole frame length (header + payload + trailer).
    frame: u32,
}

/// The append-only segment store. See the module docs for the format
/// and the crash-safety story.
#[derive(Debug)]
pub struct AnalysisStore {
    dir: PathBuf,
    index: HashMap<u64, Loc>,
    active: File,
    active_id: u64,
    active_len: u64,
    seal_bytes: u64,
    counters: StoreCounters,
    trace: slo_obs::Recorder,
    faults: FaultPlan,
}

impl AnalysisStore {
    /// Open (creating if needed) the store at `dir`, replaying every
    /// segment into the in-memory index. Any active segment left by a
    /// dead process is sealed as-is — its valid prefix replays, its
    /// torn tail (if any) is skipped.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or segment reads;
    /// damaged *records* are never fatal, only counted.
    pub fn open(dir: &Path, trace: slo_obs::Recorder, faults: FaultPlan) -> std::io::Result<Self> {
        let rec = trace.clone();
        let mut span = rec.span("store", "open");
        fs::create_dir_all(dir)?;
        // Orphaned active segments (a previous process died holding
        // one) become sealed segments: rename first so the scan below
        // only ever sees one namespace.
        let mut ids = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if let Some(id) = segment_id(&name, ".open") {
                let sealed = dir.join(segment_name(id, ".seg"));
                fs::rename(entry.path(), sealed)?;
                ids.push(id);
            } else if let Some(id) = segment_id(&name, ".seg") {
                ids.push(id);
            }
        }
        ids.sort_unstable();

        let mut index = HashMap::new();
        let mut counters = StoreCounters::default();
        for &id in &ids {
            scan_segment(
                &dir.join(segment_name(id, ".seg")),
                id,
                &mut index,
                &mut counters,
            )?;
        }

        let active_id = ids.last().map_or(0, |m| m + 1);
        let active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(segment_name(active_id, ".open")))?;
        span.arg("records", index.len() as i64);
        span.arg("segments", ids.len() as i64);
        Ok(AnalysisStore {
            dir: dir.to_path_buf(),
            index,
            active,
            active_id,
            active_len: 0,
            seal_bytes: DEFAULT_SEGMENT_BYTES,
            counters,
            trace,
            faults,
        })
    }

    /// Override the active-segment seal threshold (tests and compaction
    /// experiments use small segments to force frequent seals).
    pub fn set_segment_bytes(&mut self, bytes: u64) {
        self.seal_bytes = bytes.max(1);
    }

    /// Number of live (indexed) records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no live records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// A copy of the counters.
    pub fn counters(&self) -> StoreCounters {
        self.counters
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Read the record for `key`, re-verifying its checksum against the
    /// bytes on disk and structurally decoding it. A record that fails
    /// either check is dropped from the index and counted — the caller
    /// sees a miss and recomputes; corrupt data is never returned.
    pub fn get(&mut self, key: u64) -> Option<Arc<Analysis>> {
        let mut span = self.trace.span("store", "get");
        let Some(loc) = self.index.get(&key).copied() else {
            self.counters.misses += 1;
            span.arg("outcome", "miss");
            return None;
        };
        match self.read_frame(key, loc) {
            Some(analysis) => {
                self.counters.hits += 1;
                span.arg("outcome", "hit");
                Some(Arc::new(analysis))
            }
            None => {
                // Checksum or decode failure: drop, count, let the
                // caller recompute (and re-put a healthy copy).
                self.index.remove(&key);
                self.counters.corrupt_drops += 1;
                self.counters.misses += 1;
                span.arg("outcome", "corrupt-drop");
                None
            }
        }
    }

    /// Append the record for `key`. A key already present is left alone
    /// (the stored copy is content-addressed — equal by construction).
    /// Seals and rolls the active segment past the size threshold.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the append, flush, or seal.
    pub fn put(&mut self, key: u64, analysis: &Analysis) -> std::io::Result<()> {
        if self.index.contains_key(&key) {
            return Ok(());
        }
        let rec = self.trace.clone();
        let mut span = rec.span("store", "put");
        let frame = encode_frame(key, &slo::encode_analysis(analysis));
        span.arg("bytes", frame.len() as i64);

        if self.faults.should_fire(Site::StoreTornWrite) {
            // A torn write: only a prefix of the frame reaches disk, as
            // if the process died mid-append. The record is not
            // indexed, and the segment rolls so the damage sits where
            // real crash damage sits — at a sealed segment's tail.
            let cut = 1 + self
                .faults
                .magnitude(Site::StoreTornWrite, frame.len() as u64 - 2)
                as usize;
            self.active.write_all(&frame[..cut])?;
            self.active.flush()?;
            self.active_len += cut as u64;
            self.counters.bytes_written += cut as u64;
            span.arg("fault", "torn-write");
            return self.roll_segment();
        }

        let offset = self.active_len;
        self.active.write_all(&frame)?;
        self.active.flush()?;
        self.active_len += frame.len() as u64;
        self.counters.bytes_written += frame.len() as u64;
        self.index.insert(
            key,
            Loc {
                seg: self.active_id,
                offset,
                frame: frame.len() as u32,
            },
        );

        if self.faults.should_fire(Site::StoreBitRot) {
            // Flip one bit of the just-written frame on disk. The index
            // keeps pointing at it: the *read* path must catch this.
            let at = offset
                + self
                    .faults
                    .magnitude(Site::StoreBitRot, frame.len() as u64 - 1);
            let path = self.dir.join(segment_name(self.active_id, ".open"));
            let mut f = OpenOptions::new().read(true).write(true).open(path)?;
            let mut byte = [0u8; 1];
            f.seek(SeekFrom::Start(at))?;
            f.read_exact(&mut byte)?;
            byte[0] ^= 1 << (at % 8);
            f.seek(SeekFrom::Start(at))?;
            f.write_all(&byte)?;
            span.arg("fault", "bit-rot");
        }

        if self.active_len >= self.seal_bytes {
            self.roll_segment()?;
        }
        Ok(())
    }

    /// Rewrite live records into a fresh sealed segment and delete the
    /// old segment files, under the stale-safe exclusive lock. Records
    /// that fail verification during the rewrite are dropped and
    /// counted, like any other read.
    ///
    /// # Errors
    ///
    /// [`std::io::ErrorKind::WouldBlock`] when another live process
    /// holds the compaction lock; otherwise propagates I/O errors.
    pub fn compact(&mut self) -> std::io::Result<()> {
        let rec = self.trace.clone();
        let mut span = rec.span("store", "compact");
        if self.faults.should_fire(Site::StoreLockStale) {
            // Plant a dead compactor's lock: a pid that cannot be
            // alive. Acquisition below must treat it as stale.
            fs::write(self.lock_path(), format!("{}\n", u32::MAX))?;
            span.arg("fault", "lock-stale");
        }
        self.acquire_lock()?;
        let result = self.compact_locked(&mut span);
        let _ = fs::remove_file(self.lock_path());
        result
    }

    fn compact_locked(&mut self, span: &mut slo_obs::SpanGuard<'_>) -> std::io::Result<()> {
        // Everything live moves into one fresh segment; seal the active
        // one first so the old namespace is all `.seg`.
        self.roll_segment()?;
        let old_segments: Vec<u64> = {
            let mut ids: Vec<u64> = self
                .index
                .values()
                .map(|l| l.seg)
                .chain(existing_segments(&self.dir)?)
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids.retain(|&id| id != self.active_id);
            ids
        };

        // Survivors re-verify on the way through — compaction never
        // copies damage forward.
        let mut keys: Vec<u64> = self.index.keys().copied().collect();
        keys.sort_unstable();
        let new_id = self.active_id + 1;
        let tmp = self.dir.join(segment_name(new_id, ".cpt"));
        let mut out = File::create(&tmp)?;
        let mut new_index = HashMap::new();
        let mut offset = 0u64;
        for key in keys {
            let loc = self.index[&key];
            match self.read_frame_bytes(key, loc) {
                Some(frame) => {
                    out.write_all(&frame)?;
                    new_index.insert(
                        key,
                        Loc {
                            seg: new_id,
                            offset,
                            frame: frame.len() as u32,
                        },
                    );
                    offset += frame.len() as u64;
                    self.counters.bytes_written += frame.len() as u64;
                }
                None => self.counters.corrupt_drops += 1,
            }
        }
        out.sync_all()?;
        drop(out);
        fs::rename(&tmp, self.dir.join(segment_name(new_id, ".seg")))?;

        for id in old_segments {
            let _ = fs::remove_file(self.dir.join(segment_name(id, ".seg")));
        }
        self.index = new_index;
        self.counters.compactions += 1;

        // Fresh active segment above the compacted one.
        self.active_id = new_id + 1;
        self.active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(segment_name(self.active_id, ".open")))?;
        self.active_len = 0;
        span.arg("live_records", self.index.len() as i64);
        span.arg("live_bytes", offset as i64);
        Ok(())
    }

    fn lock_path(&self) -> PathBuf {
        self.dir.join("store.lock")
    }

    /// Take the exclusive compaction lock, reclaiming it if its owner
    /// is dead (stale). `WouldBlock` if a live owner holds it.
    fn acquire_lock(&self) -> std::io::Result<()> {
        for _ in 0..2 {
            match OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(self.lock_path())
            {
                Ok(mut f) => {
                    writeln!(f, "{}", std::process::id())?;
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let owner = fs::read_to_string(self.lock_path())
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    if owner.is_some_and(pid_alive) {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::WouldBlock,
                            "compaction lock held by a live process",
                        ));
                    }
                    // Unreadable, unparseable or dead owner: stale.
                    let _ = fs::remove_file(self.lock_path());
                }
                Err(e) => return Err(e),
            }
        }
        Err(std::io::Error::new(
            std::io::ErrorKind::WouldBlock,
            "compaction lock contended",
        ))
    }

    /// Seal the active segment (flush, fsync, atomic rename to `.seg`)
    /// and open a fresh one. A kill between any two steps leaves either
    /// a replayable `.open` or a complete `.seg` — never a half-name.
    fn roll_segment(&mut self) -> std::io::Result<()> {
        self.active.flush()?;
        self.active.sync_all()?;
        let open = self.dir.join(segment_name(self.active_id, ".open"));
        let sealed = self.dir.join(segment_name(self.active_id, ".seg"));
        fs::rename(open, sealed)?;
        self.active_id += 1;
        self.active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(segment_name(self.active_id, ".open")))?;
        self.active_len = 0;
        Ok(())
    }

    /// Read and fully verify one indexed frame; `None` on any damage.
    fn read_frame(&self, key: u64, loc: Loc) -> Option<Analysis> {
        let frame = self.read_frame_bytes(key, loc)?;
        let payload = &frame[HEADER_BYTES..frame.len() - TRAILER_BYTES];
        slo::decode_analysis(payload).ok()
    }

    /// Read one frame's raw bytes and verify magic, key and checksum;
    /// `None` on any damage (including the file having vanished).
    fn read_frame_bytes(&self, key: u64, loc: Loc) -> Option<Vec<u8>> {
        let path = self.segment_path(loc.seg)?;
        let mut f = File::open(path).ok()?;
        f.seek(SeekFrom::Start(loc.offset)).ok()?;
        let mut frame = vec![0u8; loc.frame as usize];
        f.read_exact(&mut frame).ok()?;
        verify_frame(&frame, Some(key))?;
        Some(frame)
    }

    fn segment_path(&self, seg: u64) -> Option<PathBuf> {
        let sealed = self.dir.join(segment_name(seg, ".seg"));
        if sealed.exists() {
            return Some(sealed);
        }
        let open = self.dir.join(segment_name(seg, ".open"));
        open.exists().then_some(open)
    }
}

/// Whether `pid` names a live process (the stale-lock test). Outside
/// procfs platforms the conservative answer is "alive": a lock is then
/// only reclaimed when its content is damaged.
fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        // Our own pid on the lock can only be a leftover from a crashed
        // predecessor that recycled onto us: we never hold the lock
        // while acquiring it.
        return false;
    }
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

fn segment_name(id: u64, ext: &str) -> String {
    format!("seg-{id:06}{ext}")
}

fn segment_id(name: &str, ext: &str) -> Option<u64> {
    name.strip_prefix("seg-")?.strip_suffix(ext)?.parse().ok()
}

fn existing_segments(dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut ids = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        if let Some(id) = segment_id(&name.to_string_lossy(), ".seg") {
            ids.push(id);
        }
    }
    Ok(ids)
}

/// Build one record frame: header, payload, trailing checksum over
/// everything before it.
fn encode_frame(key: u64, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len() + TRAILER_BYTES);
    frame.extend_from_slice(&RECORD_MAGIC);
    frame.extend_from_slice(&key.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    let sum = fnv1a(&frame);
    frame.extend_from_slice(&sum.to_le_bytes());
    frame
}

/// Verify one complete frame's magic, length, checksum and (when the
/// caller knows it) key. Returns the record key on success.
fn verify_frame(frame: &[u8], expect_key: Option<u64>) -> Option<u64> {
    if frame.len() < HEADER_BYTES + TRAILER_BYTES || frame[..4] != RECORD_MAGIC {
        return None;
    }
    let key = u64::from_le_bytes(frame[4..12].try_into().unwrap());
    let len = u32::from_le_bytes(frame[12..16].try_into().unwrap()) as usize;
    if frame.len() != HEADER_BYTES + len + TRAILER_BYTES {
        return None;
    }
    let body = &frame[..HEADER_BYTES + len];
    let sum = u64::from_le_bytes(frame[HEADER_BYTES + len..].try_into().unwrap());
    if fnv1a(body) != sum || expect_key.is_some_and(|k| k != key) {
        return None;
    }
    Some(key)
}

/// Replay one sealed segment into the index. Interior records with an
/// intact frame but a bad checksum are skipped and counted; frame
/// damage (bad magic, impossible length, missing bytes) ends the scan
/// — the torn-tail case.
fn scan_segment(
    path: &Path,
    seg: u64,
    index: &mut HashMap<u64, Loc>,
    counters: &mut StoreCounters,
) -> std::io::Result<()> {
    let bytes = fs::read(path)?;
    let mut pos = 0usize;
    while bytes.len() - pos >= HEADER_BYTES + TRAILER_BYTES {
        let head = &bytes[pos..];
        if head[..4] != RECORD_MAGIC {
            counters.corrupt_drops += 1;
            break;
        }
        let len = u32::from_le_bytes(head[12..16].try_into().unwrap());
        if len > MAX_PAYLOAD_BYTES {
            counters.corrupt_drops += 1;
            break;
        }
        let frame_len = HEADER_BYTES + len as usize + TRAILER_BYTES;
        if bytes.len() - pos < frame_len {
            // Torn tail: the final append never finished.
            counters.corrupt_drops += 1;
            break;
        }
        let frame = &bytes[pos..pos + frame_len];
        match verify_frame(frame, None) {
            Some(key) => {
                index.insert(
                    key,
                    Loc {
                        seg,
                        offset: pos as u64,
                        frame: frame_len as u32,
                    },
                );
            }
            None => {
                // Checksum mismatch with an intact frame: interior bit
                // rot. Skip just this record; later ones still replay.
                counters.corrupt_drops += 1;
            }
        }
        pos += frame_len;
    }
    if pos < bytes.len() && bytes.len() - pos < HEADER_BYTES + TRAILER_BYTES && pos == 0 {
        // A tail too short to even hold a header on an otherwise empty
        // segment still counts as damage observed.
        counters.corrupt_drops += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo::analysis::WeightScheme;
    use slo::PipelineConfig;
    use slo_chaos::ChaosConfig;
    use slo_ir::parser::parse;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "slo-store-test-{}-{:?}-{name}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn analysis_for(ret: i64) -> Analysis {
        let src = format!("func main() -> i64 {{\nbb0:\n  ret {ret}\n}}\n");
        let p = parse(&src).expect("parse");
        slo::analyze(&p, &WeightScheme::Ispbo, &PipelineConfig::default())
    }

    fn open(dir: &Path) -> AnalysisStore {
        AnalysisStore::open(dir, slo_obs::Recorder::disabled(), FaultPlan::disabled())
            .expect("open store")
    }

    #[test]
    fn put_get_roundtrip_and_reopen() {
        let dir = tmp("roundtrip");
        let mut s = open(&dir);
        assert!(s.is_empty());
        s.put(1, &analysis_for(1)).expect("put");
        s.put(2, &analysis_for(2)).expect("put");
        assert_eq!(s.len(), 2);
        assert!(s.get(1).is_some());
        assert!(s.get(3).is_none());
        assert_eq!(s.counters().hits, 1);
        assert_eq!(s.counters().misses, 1);
        drop(s);

        // A second process sees both records (the active segment's
        // flushed prefix replays).
        let mut s = open(&dir);
        assert_eq!(s.len(), 2);
        assert!(s.get(1).is_some());
        assert!(s.get(2).is_some());
        assert_eq!(s.counters().corrupt_drops, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_skipped_on_replay() {
        let dir = tmp("torn");
        let mut s = open(&dir);
        s.put(1, &analysis_for(1)).expect("put");
        s.put(2, &analysis_for(2)).expect("put");
        drop(s);
        // Chop the (single) segment mid-record, as a kill would.
        let seg = fs::read_dir(&dir)
            .expect("dir")
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().starts_with("seg-"))
            .expect("segment")
            .path();
        let bytes = fs::read(&seg).expect("read");
        fs::write(&seg, &bytes[..bytes.len() - 20]).expect("truncate");

        let mut s = open(&dir);
        assert_eq!(s.len(), 1, "complete record survives, torn one dropped");
        assert!(s.get(1).is_some());
        assert!(s.get(2).is_none());
        assert_eq!(s.counters().corrupt_drops, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_rot_is_dropped_on_read_and_healed_by_reput() {
        let dir = tmp("bitrot");
        let mut s = open(&dir);
        s.put(1, &analysis_for(1)).expect("put");
        // Rot one payload byte on disk behind the index's back.
        let seg = s.segment_path(s.index[&1].seg).expect("segment path");
        let mut bytes = fs::read(&seg).expect("read");
        let at = HEADER_BYTES + 3;
        bytes[at] ^= 0x40;
        fs::write(&seg, &bytes).expect("write");

        assert!(s.get(1).is_none(), "rotted record must not be served");
        assert_eq!(s.counters().corrupt_drops, 1);
        // The recompute path re-puts; the key is live again.
        s.put(1, &analysis_for(1)).expect("re-put");
        assert!(s.get(1).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interior_bit_rot_spares_later_records_on_replay() {
        let dir = tmp("interior");
        let mut s = open(&dir);
        for k in 1..=3u64 {
            s.put(k, &analysis_for(k as i64)).expect("put");
        }
        let seg = s.segment_path(s.index[&1].seg).expect("segment path");
        let second = s.index[&2];
        drop(s);
        let mut bytes = fs::read(&seg).expect("read");
        let at = second.offset as usize + HEADER_BYTES + 1;
        bytes[at] ^= 0x01;
        fs::write(&seg, &bytes).expect("write");

        let mut s = open(&dir);
        assert_eq!(s.len(), 2, "only the rotted interior record is lost");
        assert!(s.get(1).is_some());
        assert!(s.get(2).is_none());
        assert!(s.get(3).is_some(), "records after the damage still replay");
        assert_eq!(s.counters().corrupt_drops, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_reclaims_dead_records_and_keeps_live_ones() {
        let dir = tmp("compact");
        let mut s = open(&dir);
        s.set_segment_bytes(1); // seal after every put: many segments
        for k in 1..=4u64 {
            s.put(k, &analysis_for(k as i64)).expect("put");
        }
        // Kill one record via simulated rot + drop; its bytes are dead.
        let seg = s.segment_path(s.index[&2].seg).expect("segment path");
        let mut bytes = fs::read(&seg).expect("read");
        bytes[HEADER_BYTES] ^= 0xff;
        fs::write(&seg, &bytes).expect("write");
        assert!(s.get(2).is_none());

        let disk_before: u64 = dir_bytes(&dir);
        s.compact().expect("compact");
        let disk_after: u64 = dir_bytes(&dir);
        assert!(
            disk_after < disk_before,
            "compaction must reclaim bytes ({disk_before} -> {disk_after})"
        );
        assert_eq!(s.counters().compactions, 1);
        for k in [1u64, 3, 4] {
            assert!(s.get(k).is_some(), "live record {k} survives compaction");
        }
        assert!(!s.lock_path().exists(), "lock released");
        drop(s);
        let mut s = open(&dir);
        assert_eq!(s.len(), 3, "compacted store replays");
        assert!(s.get(3).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    fn dir_bytes(dir: &Path) -> u64 {
        fs::read_dir(dir)
            .expect("dir")
            .filter_map(|e| e.ok())
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum()
    }

    #[test]
    fn stale_lock_is_reclaimed_live_lock_blocks() {
        let dir = tmp("lock");
        let mut s = open(&dir);
        s.put(1, &analysis_for(1)).expect("put");
        // Dead owner: u32::MAX can never be a live pid.
        fs::write(s.lock_path(), format!("{}\n", u32::MAX)).expect("plant stale lock");
        s.compact().expect("stale lock must be reclaimed");
        assert_eq!(s.counters().compactions, 1);

        if cfg!(target_os = "linux") {
            // Live owner: pid 1 always exists on Linux.
            fs::write(s.lock_path(), "1\n").expect("plant live lock");
            let err = s.compact().expect_err("live lock must block");
            assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
            let _ = fs::remove_file(s.lock_path());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_torn_write_never_indexes_and_replays_clean() {
        let dir = tmp("chaos-torn");
        let plan = FaultPlan::with_config(7, ChaosConfig::never().rate(Site::StoreTornWrite, 1024));
        let mut s =
            AnalysisStore::open(&dir, slo_obs::Recorder::disabled(), plan.clone()).expect("open");
        s.put(1, &analysis_for(1)).expect("torn put");
        assert_eq!(plan.injected(Site::StoreTornWrite), 1);
        assert!(s.get(1).is_none(), "a torn record is never indexed");
        drop(s);
        let mut s = open(&dir);
        assert!(s.is_empty());
        assert_eq!(
            s.counters().corrupt_drops,
            1,
            "the torn tail is observed and counted on replay"
        );
        assert!(s.get(1).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_bit_rot_is_caught_by_the_read_path() {
        let dir = tmp("chaos-rot");
        let plan = FaultPlan::with_config(9, ChaosConfig::never().rate(Site::StoreBitRot, 1024));
        let mut s =
            AnalysisStore::open(&dir, slo_obs::Recorder::disabled(), plan.clone()).expect("open");
        s.put(1, &analysis_for(1)).expect("put");
        assert_eq!(plan.injected(Site::StoreBitRot), 1);
        assert!(s.get(1).is_none(), "rotted record dropped, not served");
        assert_eq!(s.counters().corrupt_drops, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_stale_lock_site_exercises_takeover() {
        let dir = tmp("chaos-lock");
        let plan = FaultPlan::with_config(3, ChaosConfig::never().rate(Site::StoreLockStale, 1024));
        let mut s =
            AnalysisStore::open(&dir, slo_obs::Recorder::disabled(), plan.clone()).expect("open");
        s.put(1, &analysis_for(1)).expect("put");
        s.compact().expect("compact through the planted stale lock");
        assert_eq!(plan.injected(Site::StoreLockStale), 1);
        assert_eq!(s.counters().compactions, 1);
        assert!(s.get(1).is_some());
        let _ = fs::remove_dir_all(&dir);
    }
}
