//! The content-hash analysis cache.
//!
//! Repeated analysis over near-identical inputs dominates batch cost
//! (Chen & Kandemir's constraint-network observation; Marmoset's
//! many-layouts-per-program search has the same shape), so the service
//! memoizes the FE + IPA half of the pipeline — [`slo::Analysis`]:
//! legality verdicts, affinity graphs, field counts and the transform
//! plan — keyed by [`slo::analysis_cache_key`], a stable FNV-1a digest
//! of the *normalized* IR text plus the scheme (including any profile)
//! plus every config knob. The BE rewrite is cheap and re-runs per job.
//!
//! The cache is a bounded LRU: entries carry a logical use stamp and
//! the least-recently-used entry is evicted once `capacity` is
//! exceeded. Digest collisions are guarded by storing the key alongside
//! the entry (a collision would need equal 64-bit FNV digests *and*
//! land in the same map slot — we accept the standard content-hash
//! risk, as git does).
//!
//! **Re-verification.** Every entry also stores the IPA fingerprint of
//! the analysis it caches. Lookups recompute the fingerprint and drop
//! the entry on a mismatch ([`Lookup::Corrupt`]) — a poisoned entry is
//! recomputed, never served. Poisoning does not happen in healthy
//! operation; the chaos fault plan's `CachePoison` site corrupts the
//! stored fingerprint at insert time to prove the re-verification path
//! works, and its `CacheEvictStorm` site empties the whole cache on an
//! insert to prove the service survives total recall loss.

use slo::analysis::ipa_fingerprint;
use slo::Analysis;
use slo_chaos::{FaultPlan, Site};
use std::collections::HashMap;
use std::sync::Arc;

/// Result of a verified cache lookup.
#[derive(Debug)]
pub enum Lookup {
    /// The entry was present and its fingerprint verified.
    Hit(Arc<Analysis>),
    /// The entry was present but failed re-verification; it has been
    /// dropped and the caller must recompute.
    Corrupt,
    /// No entry.
    Miss,
}

/// Bounded LRU map from analysis cache key to a shared [`Analysis`].
#[derive(Debug)]
pub struct AnalysisCache {
    capacity: usize,
    stamp: u64,
    entries: HashMap<u64, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
    corrupt_drops: u64,
}

#[derive(Debug)]
struct Entry {
    analysis: Arc<Analysis>,
    last_used: u64,
    /// `ipa_fingerprint` of `analysis` at insert time; verified on
    /// every hit.
    fingerprint: u64,
}

impl AnalysisCache {
    /// A cache holding at most `capacity` entries (`0` disables
    /// caching: every lookup misses and nothing is stored).
    pub fn new(capacity: usize) -> Self {
        AnalysisCache {
            capacity,
            stamp: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            corrupt_drops: 0,
        }
    }

    /// Look up `key`, refreshing its recency on a hit. Equivalent to
    /// [`get_checked`] with corrupt entries folded into `None`.
    ///
    /// [`get_checked`]: AnalysisCache::get_checked
    pub fn get(&mut self, key: u64) -> Option<Arc<Analysis>> {
        match self.get_checked(key) {
            Lookup::Hit(a) => Some(a),
            Lookup::Corrupt | Lookup::Miss => None,
        }
    }

    /// Look up `key` with fingerprint re-verification: a present entry
    /// whose recomputed IPA fingerprint no longer matches the stored
    /// one is dropped and reported as [`Lookup::Corrupt`] (counted as a
    /// miss — the caller recomputes either way).
    pub fn get_checked(&mut self, key: u64) -> Lookup {
        self.stamp += 1;
        match self.entries.get_mut(&key) {
            Some(e) => {
                if ipa_fingerprint(&e.analysis.ipa) != e.fingerprint {
                    self.entries.remove(&key);
                    self.corrupt_drops += 1;
                    self.misses += 1;
                    Lookup::Corrupt
                } else {
                    e.last_used = self.stamp;
                    self.hits += 1;
                    Lookup::Hit(Arc::clone(&e.analysis))
                }
            }
            None => {
                self.misses += 1;
                Lookup::Miss
            }
        }
    }

    /// Insert `key -> analysis`, evicting the least-recently-used entry
    /// if the bound would be exceeded.
    pub fn insert(&mut self, key: u64, analysis: Arc<Analysis>) {
        self.insert_chaotic(key, analysis, &FaultPlan::disabled());
    }

    /// [`insert`] with fault injection: `CacheEvictStorm` empties the
    /// cache before the insert, `CachePoison` corrupts the stored
    /// fingerprint so the *next* lookup of `key` detects the mismatch
    /// and recomputes.
    ///
    /// [`insert`]: AnalysisCache::insert
    pub fn insert_chaotic(&mut self, key: u64, analysis: Arc<Analysis>, faults: &FaultPlan) {
        if self.capacity == 0 {
            return;
        }
        if faults.should_fire(Site::CacheEvictStorm) {
            self.evictions += self.entries.len() as u64;
            self.entries.clear();
        }
        self.stamp += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_used) {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        let mut fingerprint = ipa_fingerprint(&analysis.ipa);
        if faults.should_fire(Site::CachePoison) {
            fingerprint ^= 0xDEAD_BEEF_0BAD_CAFE;
        }
        self.entries.insert(
            key,
            Entry {
                analysis,
                last_used: self.stamp,
                fingerprint,
            },
        );
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses, evictions) counters since construction.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Entries dropped by fingerprint re-verification since
    /// construction.
    pub fn corrupt_drops(&self) -> u64 {
        self.corrupt_drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo::analysis::WeightScheme;
    use slo_chaos::ChaosConfig;
    use slo_ir::parser::parse;

    fn some_analysis() -> Arc<Analysis> {
        let p = parse("func main() -> i64 {\nbb0:\n  ret 0\n}\n").expect("parse");
        Arc::new(slo::analyze(
            &p,
            &WeightScheme::Ispbo,
            &slo::PipelineConfig::default(),
        ))
    }

    #[test]
    fn hit_miss_and_counters() {
        let mut c = AnalysisCache::new(4);
        assert!(c.get(1).is_none());
        c.insert(1, some_analysis());
        assert!(c.get(1).is_some());
        assert_eq!(c.counters(), (1, 1, 0));
        assert_eq!(c.corrupt_drops(), 0);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = AnalysisCache::new(2);
        let a = some_analysis();
        c.insert(1, Arc::clone(&a));
        c.insert(2, Arc::clone(&a));
        assert!(c.get(1).is_some()); // 2 is now the LRU entry
        c.insert(3, Arc::clone(&a));
        assert_eq!(c.len(), 2);
        assert!(c.get(2).is_none(), "LRU entry evicted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.counters().2, 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = AnalysisCache::new(0);
        c.insert(1, some_analysis());
        assert!(c.is_empty());
        assert!(c.get(1).is_none());
    }

    #[test]
    fn poisoned_insert_is_caught_on_lookup() {
        let poison = FaultPlan::with_config(1, ChaosConfig::never().rate(Site::CachePoison, 1024));
        let mut c = AnalysisCache::new(4);
        c.insert_chaotic(1, some_analysis(), &poison);
        match c.get_checked(1) {
            Lookup::Corrupt => {}
            other => panic!("expected corrupt entry, got {other:?}"),
        }
        assert_eq!(c.corrupt_drops(), 1);
        assert!(c.is_empty(), "corrupt entry must be dropped");
        // A clean re-insert heals the key.
        c.insert(1, some_analysis());
        assert!(matches!(c.get_checked(1), Lookup::Hit(_)));
    }

    #[test]
    fn evict_storm_clears_and_counts() {
        let storm =
            FaultPlan::with_config(1, ChaosConfig::never().rate(Site::CacheEvictStorm, 1024));
        let mut c = AnalysisCache::new(8);
        let a = some_analysis();
        c.insert(1, Arc::clone(&a));
        c.insert(2, Arc::clone(&a));
        c.insert_chaotic(3, Arc::clone(&a), &storm);
        assert_eq!(c.len(), 1, "storm clears everything before the insert");
        assert!(c.get(3).is_some());
        assert_eq!(c.counters().2, 2, "storm victims count as evictions");
    }
}
