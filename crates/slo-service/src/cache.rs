//! The content-hash analysis cache.
//!
//! Repeated analysis over near-identical inputs dominates batch cost
//! (Chen & Kandemir's constraint-network observation; Marmoset's
//! many-layouts-per-program search has the same shape), so the service
//! memoizes the FE + IPA half of the pipeline — [`slo::Analysis`]:
//! legality verdicts, affinity graphs, field counts and the transform
//! plan — keyed by [`slo::analysis_cache_key`], a stable FNV-1a digest
//! of the *normalized* IR text plus the scheme (including any profile)
//! plus every config knob. The BE rewrite is cheap and re-runs per job.
//!
//! The cache is a bounded LRU: entries carry a logical use stamp and
//! the least-recently-used entry is evicted once `capacity` is
//! exceeded. Digest collisions are guarded by storing the key alongside
//! the entry (a collision would need equal 64-bit FNV digests *and*
//! land in the same map slot — we accept the standard content-hash
//! risk, as git does).

use slo::Analysis;
use std::collections::HashMap;
use std::sync::Arc;

/// Bounded LRU map from analysis cache key to a shared [`Analysis`].
#[derive(Debug)]
pub struct AnalysisCache {
    capacity: usize,
    stamp: u64,
    entries: HashMap<u64, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug)]
struct Entry {
    analysis: Arc<Analysis>,
    last_used: u64,
}

impl AnalysisCache {
    /// A cache holding at most `capacity` entries (`0` disables
    /// caching: every lookup misses and nothing is stored).
    pub fn new(capacity: usize) -> Self {
        AnalysisCache {
            capacity,
            stamp: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<Arc<Analysis>> {
        self.stamp += 1;
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.last_used = self.stamp;
                self.hits += 1;
                Some(Arc::clone(&e.analysis))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert `key -> analysis`, evicting the least-recently-used entry
    /// if the bound would be exceeded.
    pub fn insert(&mut self, key: u64, analysis: Arc<Analysis>) {
        if self.capacity == 0 {
            return;
        }
        self.stamp += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_used) {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                analysis,
                last_used: self.stamp,
            },
        );
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses, evictions) counters since construction.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slo::analysis::WeightScheme;
    use slo_ir::parser::parse;

    fn some_analysis() -> Arc<Analysis> {
        let p = parse("func main() -> i64 {\nbb0:\n  ret 0\n}\n").expect("parse");
        Arc::new(slo::analyze(
            &p,
            &WeightScheme::Ispbo,
            &slo::PipelineConfig::default(),
        ))
    }

    #[test]
    fn hit_miss_and_counters() {
        let mut c = AnalysisCache::new(4);
        assert!(c.get(1).is_none());
        c.insert(1, some_analysis());
        assert!(c.get(1).is_some());
        assert_eq!(c.counters(), (1, 1, 0));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = AnalysisCache::new(2);
        let a = some_analysis();
        c.insert(1, Arc::clone(&a));
        c.insert(2, Arc::clone(&a));
        assert!(c.get(1).is_some()); // 2 is now the LRU entry
        c.insert(3, Arc::clone(&a));
        assert_eq!(c.len(), 2);
        assert!(c.get(2).is_none(), "LRU entry evicted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.counters().2, 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = AnalysisCache::new(0);
        c.insert(1, some_analysis());
        assert!(c.is_empty());
        assert!(c.get(1).is_none());
    }
}
