//! The versioned wire protocol shared by every service front end.
//!
//! Three consumers used to speak three ad-hoc line formats: `slo serve`
//! on stdin, the manifest loader behind `slo batch`, and whatever a
//! future socket ingress would have invented. This module collapses
//! them into one protocol:
//!
//! * **Requests** are the manifest attribute syntax, one job line per
//!   request (`<file.sir> [scheme=S] [budget-ms=N] ...`), plus the
//!   control verbs `hello [v=N]`, `metrics`, `metrics prom` and
//!   `quit`/`exit`. Parsing delegates to the one manifest validator
//!   ([`crate::manifest::parse_job_line`]), so `MAX_LINE_LEN` and
//!   duplicate-attribute rejection hold identically on every path.
//! * **Responses** are one-line JSON objects with a stable leading
//!   field set — `v`, `id`, `status`, `degradation`, `attempts`,
//!   `cached`, `retry_after_ms` — followed by status-specific detail
//!   (cycle counts for `optimized`, a machine-parseable `code` +
//!   `message` for `error`/`failed`, `replayed` for journal hits).
//! * **Version handshake**: a client may open with `hello v=1`; the
//!   server answers with its own `v` and rejects unsupported versions
//!   with code `unsupported-version` instead of guessing.
//!
//! [`Request::fingerprint`] is the single derivation of a request's
//! durable identity — the serve journal's WAL key (`job_key` delegates
//! here) — so the wire protocol and the journal can never drift.
//!
//! [`Session`] is the transport-agnostic request loop: stdin serve and
//! the TCP ingress both feed lines through [`Session::handle_line`],
//! and `slo batch --wire` emits the same [`Response`] lines, so there
//! is exactly one protocol implementation in the tree.

use crate::job::{Job, JobInput, JobStatus};
use crate::journal::Journal;
use crate::manifest::{chaos_line, parse_job_line};
use crate::service::Service;
use slo_chaos::fnv1a;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The protocol version this build speaks.
pub const PROTO_VERSION: u64 = 1;

/// A parsed wire request.
#[derive(Debug, Clone)]
pub enum Request {
    /// `hello [v=N]` — version handshake.
    Hello {
        /// The version the client asked for (defaults to ours).
        version: u64,
    },
    /// `metrics` — the service counters as one JSON object.
    Metrics,
    /// `metrics prom` — the Prometheus text exposition.
    MetricsProm,
    /// `quit` / `exit` — end the session.
    Quit,
    /// A job line in manifest attribute syntax (`repeat=` may expand
    /// one line into several jobs).
    Jobs(Vec<Job>),
}

/// A protocol-level rejection: a machine-parseable code plus a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Stable error code (`bad-request`, `line-too-long`,
    /// `duplicate-attribute`, `unsupported-version`, `slow-read`,
    /// `overload`, `busy`).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    fn new(code: &'static str, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
        }
    }
}

/// Classify a manifest-validator message into a stable wire code.
fn classify_parse_error(msg: &str) -> &'static str {
    if msg.contains("too long") {
        "line-too-long"
    } else if msg.contains("duplicate attribute") {
        "duplicate-attribute"
    } else {
        "bad-request"
    }
}

impl Request {
    /// Parse one wire line. Blank lines and `#` comments are the
    /// caller's concern (they are skipped, not requests). Relative
    /// `.sir`/`.prof` paths resolve against `dir`.
    ///
    /// # Errors
    ///
    /// A [`WireError`] with a stable code; job-line validation errors
    /// come verbatim from the shared manifest validator.
    pub fn parse(dir: &Path, line: &str) -> Result<Request, WireError> {
        let line = line.trim();
        match line {
            "quit" | "exit" => return Ok(Request::Quit),
            "metrics" => return Ok(Request::Metrics),
            "metrics prom" => return Ok(Request::MetricsProm),
            _ => {}
        }
        if line == "hello" || line.starts_with("hello ") {
            let mut version = PROTO_VERSION;
            for tok in line.split_whitespace().skip(1) {
                match tok.split_once('=') {
                    Some(("v", v)) => {
                        version = v.parse().map_err(|_| {
                            WireError::new("bad-request", format!("bad version `{v}`"))
                        })?;
                    }
                    _ => {
                        return Err(WireError::new(
                            "bad-request",
                            format!("unknown hello attribute `{tok}`"),
                        ))
                    }
                }
            }
            if version != PROTO_VERSION {
                return Err(WireError::new(
                    "unsupported-version",
                    format!("server speaks v={PROTO_VERSION}, client asked for v={version}"),
                ));
            }
            return Ok(Request::Hello { version });
        }
        let jobs =
            parse_job_line(dir, line).map_err(|e| WireError::new(classify_parse_error(&e), e))?;
        Ok(Request::Jobs(jobs))
    }

    /// The single derivation of a request's durable identity: FNV-1a
    /// over the wire line, the job id and the program text the line
    /// resolved to. The serve journal keys its WAL on this (see
    /// [`crate::journal::job_key`], which delegates here), so editing
    /// the `.sir` file or the line's attributes always changes the key
    /// and a recovered journal never serves stale results.
    pub fn fingerprint(line: &str, job: &Job) -> u64 {
        let mut h = fnv1a(line.trim().as_bytes());
        h ^= fnv1a(job.id.as_bytes()).rotate_left(17);
        if let JobInput::Source(src) = &job.input {
            h ^= fnv1a(src.as_bytes()).rotate_left(31);
        }
        h
    }
}

/// One wire reply: a flat JSON object serialized to a single line.
///
/// The leading seven fields are the protocol's stable contract and are
/// always present (with `null` where not applicable); later fields are
/// status-specific detail and may grow in future versions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Response {
    /// Protocol version of the sender.
    pub v: u64,
    /// The job id the reply answers (empty for protocol-level errors
    /// that never resolved to a job).
    pub id: String,
    /// `optimized` / `advisory` / `failed` / `error` / `shed` / `ok`.
    pub status: String,
    /// Degradation reason kind for `advisory` replies.
    pub degradation: Option<String>,
    /// Supervisor attempts (0 for non-job replies).
    pub attempts: u32,
    /// Whether the analysis came from the content-hash cache.
    pub cached: bool,
    /// For `shed` replies: when the client should retry.
    pub retry_after_ms: Option<u64>,
    /// Machine-parseable error code (`error`/`failed` replies).
    pub code: Option<String>,
    /// Human-readable detail.
    pub message: Option<String>,
    /// `optimized`: number of record types transformed.
    pub types: Option<u64>,
    /// `optimized`: simulated baseline cycles.
    pub baseline_cycles: Option<u64>,
    /// `optimized`: simulated optimized cycles.
    pub optimized_cycles: Option<u64>,
    /// `advisory`: whether the §3 report was produced.
    pub report_available: Option<bool>,
    /// Whether this reply was replayed from the serve journal.
    pub replayed: bool,
}

impl Response {
    /// The handshake reply.
    pub fn hello() -> Response {
        Response {
            v: PROTO_VERSION,
            id: "hello".to_string(),
            status: "ok".to_string(),
            ..Response::default()
        }
    }

    /// A protocol-level error reply (bad line, bad version, timeout).
    pub fn error(id: &str, err: &WireError) -> Response {
        Response {
            v: PROTO_VERSION,
            id: id.to_string(),
            status: "error".to_string(),
            code: Some(err.code.to_string()),
            message: Some(err.message.clone()),
            ..Response::default()
        }
    }

    /// A load-shed reply: the admission queue is full; retry after the
    /// given backoff instead of queueing unboundedly.
    pub fn shed(id: &str, retry_after_ms: u64) -> Response {
        Response {
            v: PROTO_VERSION,
            id: id.to_string(),
            status: "shed".to_string(),
            retry_after_ms: Some(retry_after_ms),
            code: Some("overload".to_string()),
            message: Some("admission queue full; retry after backoff".to_string()),
            ..Response::default()
        }
    }

    /// The reply for one completed job outcome.
    pub fn from_outcome(o: &crate::job::JobOutcome) -> Response {
        let mut r = Response {
            v: PROTO_VERSION,
            id: o.id.clone(),
            status: o.status.kind().to_string(),
            attempts: o.attempts,
            cached: o.metrics.cache_hit,
            ..Response::default()
        };
        match &o.status {
            JobStatus::Optimized(opt) => {
                r.types = Some(opt.num_transformed as u64);
                r.baseline_cycles = Some(opt.eval.baseline_cycles);
                r.optimized_cycles = Some(opt.eval.optimized_cycles);
            }
            JobStatus::Advisory { reason, report } => {
                r.degradation = Some(reason.kind().to_string());
                r.message = Some(reason.to_string());
                r.report_available = Some(report.is_some());
            }
            JobStatus::Failed(msg) => {
                r.code = Some("job-failed".to_string());
                r.message = Some(msg.lines().next().unwrap_or_default().to_string());
            }
        }
        r
    }

    /// Serialize as one JSON line (no trailing newline). Field order is
    /// fixed: the seven stable fields first, detail after.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str(&format!(
            "{{\"v\":{},\"id\":\"{}\",\"status\":\"{}\",",
            self.v,
            escape(&self.id),
            escape(&self.status)
        ));
        match &self.degradation {
            Some(d) => s.push_str(&format!("\"degradation\":\"{}\",", escape(d))),
            None => s.push_str("\"degradation\":null,"),
        }
        s.push_str(&format!(
            "\"attempts\":{},\"cached\":{},",
            self.attempts, self.cached
        ));
        match self.retry_after_ms {
            Some(ms) => s.push_str(&format!("\"retry_after_ms\":{ms}")),
            None => s.push_str("\"retry_after_ms\":null"),
        }
        if let Some(code) = &self.code {
            s.push_str(&format!(",\"code\":\"{}\"", escape(code)));
        }
        if let Some(msg) = &self.message {
            s.push_str(&format!(",\"message\":\"{}\"", escape(msg)));
        }
        if let Some(t) = self.types {
            s.push_str(&format!(",\"types\":{t}"));
        }
        if let Some(c) = self.baseline_cycles {
            s.push_str(&format!(",\"baseline_cycles\":{c}"));
        }
        if let Some(c) = self.optimized_cycles {
            s.push_str(&format!(",\"optimized_cycles\":{c}"));
        }
        if let Some(r) = self.report_available {
            s.push_str(&format!(",\"report_available\":{r}"));
        }
        if self.replayed {
            s.push_str(",\"replayed\":true");
        }
        s.push('}');
        s
    }

    /// Parse a reply line back into a [`Response`] — the client half of
    /// the protocol (bench drivers, chaos campaigns, conformance
    /// tests).
    ///
    /// # Errors
    ///
    /// A short message if the line is not a v1 reply object.
    pub fn parse(line: &str) -> Result<Response, String> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return Err("not a JSON object line".to_string());
        }
        let v = field_u64(line, "v").ok_or("missing `v`")?;
        let id = field_str(line, "id").ok_or("missing `id`")?;
        let status = field_str(line, "status").ok_or("missing `status`")?;
        Ok(Response {
            v,
            id,
            status,
            degradation: field_str(line, "degradation"),
            attempts: field_u64(line, "attempts").unwrap_or(0) as u32,
            cached: field_bool(line, "cached").unwrap_or(false),
            retry_after_ms: field_u64(line, "retry_after_ms"),
            code: field_str(line, "code"),
            message: field_str(line, "message"),
            types: field_u64(line, "types"),
            baseline_cycles: field_u64(line, "baseline_cycles"),
            optimized_cycles: field_u64(line, "optimized_cycles"),
            report_available: field_bool(line, "report_available"),
            replayed: field_bool(line, "replayed").unwrap_or(false),
        })
    }

    /// Mark a serialized reply line as replayed from the journal (the
    /// WAL stores the original reply verbatim; replay re-emits it with
    /// the `replayed` marker appended).
    pub fn mark_replayed(line: &str) -> String {
        let trimmed = line.trim_end();
        match trimmed.strip_suffix('}') {
            Some(head) if trimmed.starts_with('{') && !trimmed.contains("\"replayed\":") => {
                format!("{head},\"replayed\":true}}")
            }
            _ => format!("{trimmed} [journal]"),
        }
    }
}

/// The pre-protocol human-readable result line (one per outcome),
/// kept as `slo serve --legacy-lines` / `slo batch`'s display format
/// for one release.
pub fn legacy_line(o: &crate::job::JobOutcome) -> String {
    let cache = if o.metrics.cache_hit { " [cached]" } else { "" };
    match &o.status {
        JobStatus::Optimized(opt) => format!(
            "{:<24} optimized  {} type(s), cycles {} -> {} ({:+.1}%){}",
            o.id,
            opt.num_transformed,
            opt.eval.baseline_cycles,
            opt.eval.optimized_cycles,
            opt.eval.speedup_percent(),
            cache
        ),
        JobStatus::Advisory { reason, report } => format!(
            "{:<24} advisory   {reason}{}{}",
            o.id,
            if report.is_some() {
                " (report available)"
            } else {
                ""
            },
            cache
        ),
        JobStatus::Failed(msg) => {
            let first = msg.lines().next().unwrap_or_default();
            format!("{:<24} failed     {first}", o.id)
        }
    }
}

// --- minimal JSON escaping/field extraction ----------------------------
// The workspace is deliberately serde-free; these helpers are shared
// with the journal (which stores reply lines) and are just enough to
// round-trip the flat objects this module emits.

/// JSON-escape a string's contents (no surrounding quotes).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Undo [`escape`].
pub(crate) fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

/// Find `tag` (a `"name":`-shaped prefix) at *top level* of a flat
/// object line — never inside a quoted string value, where escaped
/// content can reproduce the byte sequence of any field tag (e.g. a
/// message containing `"types":999`). Returns the byte index just past
/// the tag. Sound because [`escape`] backslashes every interior quote:
/// a tag's unescaped leading quote can only occur where a string opens,
/// and a string value's body can never start with `name":` unescaped.
fn top_level_find(line: &str, tag: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut in_string = false;
    let mut escaped = false;
    for i in 0..bytes.len() {
        if in_string {
            if escaped {
                escaped = false;
            } else if bytes[i] == b'\\' {
                escaped = true;
            } else if bytes[i] == b'"' {
                in_string = false;
            }
        } else if bytes[i] == b'"' {
            if line[i..].starts_with(tag) {
                return Some(i + tag.len());
            }
            in_string = true;
        }
    }
    None
}

/// Extract the string value of `"name":"..."` from a flat object line,
/// honoring backslash escapes. `None` on absence, `null`, or
/// malformation.
pub(crate) fn field_str(line: &str, name: &str) -> Option<String> {
    let tag = format!("\"{name}\":\"");
    let start = top_level_find(line, &tag)?;
    let rest = &line[start..];
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return Some(unescape(&rest[..i]));
        }
    }
    None
}

/// Extract the unsigned-integer value of `"name":N`. `None` on absence
/// or `null`.
pub(crate) fn field_u64(line: &str, name: &str) -> Option<u64> {
    let tag = format!("\"{name}\":");
    let start = top_level_find(line, &tag)?;
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extract the boolean value of `"name":true|false`.
pub(crate) fn field_bool(line: &str, name: &str) -> Option<bool> {
    let tag = format!("\"{name}\":");
    let start = top_level_find(line, &tag)?;
    let rest = &line[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

// --- the transport-agnostic session ------------------------------------

/// What a handled line asks the transport to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Write these reply lines (one per job, or one error/handshake).
    Lines(Vec<String>),
    /// Write this multi-line text block verbatim (metrics expositions).
    Text(String),
    /// End the session.
    Quit,
}

/// One client's protocol session: the request loop shared verbatim by
/// stdin serve and the TCP ingress. Feed wire lines to
/// [`Session::handle_line`]; the session parses them through the
/// shared validator, answers journaled jobs from the WAL, runs the
/// rest on the service (journaling each outcome *before* it is
/// acknowledged), and renders replies in the JSON protocol or the
/// legacy line format.
pub struct Session<'a> {
    service: &'a Service,
    journal: Option<&'a Mutex<Journal>>,
    dir: PathBuf,
    legacy: bool,
    served: AtomicU64,
    replayed: AtomicU64,
}

impl<'a> Session<'a> {
    /// A session over `service`, resolving job-line paths against
    /// `dir`. `legacy` selects the pre-protocol line format.
    pub fn new(
        service: &'a Service,
        journal: Option<&'a Mutex<Journal>>,
        dir: PathBuf,
        legacy: bool,
    ) -> Session<'a> {
        Session {
            service,
            journal,
            dir,
            legacy,
            served: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
        }
    }

    /// Jobs this session computed (journal replays excluded).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Jobs this session answered from the journal.
    pub fn replayed(&self) -> u64 {
        self.replayed.load(Ordering::Relaxed)
    }

    /// Render a protocol error in the session's reply format.
    pub fn render_error(&self, err: &WireError) -> String {
        if self.legacy {
            format!("error: {}", err.message)
        } else {
            Response::error("", err).to_json()
        }
    }

    /// Handle one wire line end to end. Blank lines and comments yield
    /// an empty reply. The chaos plan's manifest ingress sites mangle
    /// the line before parsing (a disabled plan is the identity), the
    /// shared validator rejects malformed lines, journaled jobs are
    /// replayed, and fresh jobs run on the service worker pool.
    pub fn handle_line(&self, raw: &str) -> Reply {
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Reply::Lines(Vec::new());
        }
        let wire = chaos_line(trimmed, self.service.fault_plan());
        let req = match Request::parse(&self.dir, &wire) {
            Ok(req) => req,
            Err(e) => return Reply::Lines(vec![self.render_error(&e)]),
        };
        match req {
            Request::Quit => Reply::Quit,
            Request::Hello { .. } => Reply::Lines(vec![if self.legacy {
                format!("hello v={PROTO_VERSION}")
            } else {
                Response::hello().to_json()
            }]),
            Request::Metrics => Reply::Text(format!("{}\n", self.service.metrics().to_json())),
            Request::MetricsProm => Reply::Text(self.service.metrics().to_prometheus()),
            Request::Jobs(jobs) => Reply::Lines(self.run_jobs(&wire, jobs)),
        }
    }

    /// Answer journaled jobs from the WAL, run the rest, journal each
    /// fresh outcome before acknowledging it.
    fn run_jobs(&self, wire: &str, jobs: Vec<Job>) -> Vec<String> {
        // Preserve submission order across the replayed/fresh split.
        let mut slots: Vec<Option<String>> = vec![None; jobs.len()];
        let mut todo: Vec<(usize, u64, Job)> = Vec::new();
        for (i, job) in jobs.into_iter().enumerate() {
            let key = Request::fingerprint(wire, &job);
            let hit = self
                .journal
                .and_then(|j| j.lock().ok())
                .and_then(|j| j.lookup(key).map(|e| e.summary.clone()));
            match hit {
                Some(stored) => {
                    self.replayed.fetch_add(1, Ordering::Relaxed);
                    slots[i] = Some(Response::mark_replayed(&stored));
                }
                None => todo.push((i, key, job)),
            }
        }
        let fresh: Vec<Job> = todo.iter().map(|(_, _, j)| j.clone()).collect();
        let submitted = Instant::now();
        for (o, (i, key, _)) in self
            .service
            .run_batch_since(&fresh, submitted)
            .iter()
            .zip(&todo)
        {
            self.served.fetch_add(1, Ordering::Relaxed);
            let reply = if self.legacy {
                legacy_line(o)
            } else {
                Response::from_outcome(o).to_json()
            };
            // WAL order: make the outcome durable first, acknowledge
            // second — a kill between the two recomputes the job
            // instead of losing an acked reply.
            if let Some(j) = self.journal {
                if let Ok(mut j) = j.lock() {
                    let _ = j.record(*key, &o.id, &o.status, &reply);
                }
            }
            slots[*i] = Some(reply);
        }
        slots.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobOutcome;
    use crate::{Degradation, JobMetrics, Optimized};
    use slo::Evaluation;

    fn tmpdir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "slo-proto-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    const SIR: &str = "func main() -> i64 {\nbb0:\n  ret 7\n}\n";

    #[test]
    fn parses_control_verbs_and_handshake() {
        let d = tmpdir();
        assert!(matches!(Request::parse(&d, "quit"), Ok(Request::Quit)));
        assert!(matches!(Request::parse(&d, "exit"), Ok(Request::Quit)));
        assert!(matches!(
            Request::parse(&d, "metrics"),
            Ok(Request::Metrics)
        ));
        assert!(matches!(
            Request::parse(&d, "metrics prom"),
            Ok(Request::MetricsProm)
        ));
        assert!(matches!(
            Request::parse(&d, "hello"),
            Ok(Request::Hello {
                version: PROTO_VERSION
            })
        ));
        assert!(matches!(
            Request::parse(&d, "hello v=1"),
            Ok(Request::Hello { version: 1 })
        ));
        let err = Request::parse(&d, "hello v=99").expect_err("future version");
        assert_eq!(err.code, "unsupported-version");
        let err = Request::parse(&d, "hello wat").expect_err("bad attribute");
        assert_eq!(err.code, "bad-request");
    }

    #[test]
    fn job_lines_share_the_manifest_validator() {
        let d = tmpdir();
        std::fs::write(d.join("p.sir"), SIR).expect("write");
        let req = Request::parse(&d, "p.sir scheme=ispbo repeat=2").expect("job line");
        let Request::Jobs(jobs) = req else {
            panic!("expected jobs")
        };
        assert_eq!(jobs.len(), 2);

        let err = Request::parse(&d, "p.sir steps=1 steps=2").expect_err("dup");
        assert_eq!(err.code, "duplicate-attribute");
        let long = format!("p.sir {}", "x".repeat(crate::manifest::MAX_LINE_LEN));
        let err = Request::parse(&d, &long).expect_err("overlong");
        assert_eq!(err.code, "line-too-long");
        let err = Request::parse(&d, "p.sir wat=1").expect_err("unknown attr");
        assert_eq!(err.code, "bad-request");
    }

    #[test]
    fn fingerprint_tracks_line_id_and_source() {
        let job = |src: &str, id: &str| Job::from_source(id, src);
        let k = Request::fingerprint("a.sir steps=10", &job("ret 0", "a"));
        assert_eq!(
            k,
            Request::fingerprint("a.sir steps=10", &job("ret 0", "a"))
        );
        assert_ne!(
            k,
            Request::fingerprint("a.sir steps=20", &job("ret 0", "a"))
        );
        assert_ne!(
            k,
            Request::fingerprint("a.sir steps=10", &job("ret 1", "a"))
        );
        assert_ne!(
            k,
            Request::fingerprint("a.sir steps=10", &job("ret 0", "a#1"))
        );
    }

    fn optimized_outcome() -> JobOutcome {
        JobOutcome {
            id: "job-1".to_string(),
            status: JobStatus::Optimized(Optimized {
                transformed: String::new(),
                num_transformed: 2,
                eval: Evaluation {
                    baseline_cycles: 1000,
                    optimized_cycles: 800,
                    baseline_instructions: 500,
                    optimized_instructions: 500,
                },
                ipa_fingerprint: 7,
            }),
            metrics: JobMetrics {
                cache_hit: true,
                ..JobMetrics::default()
            },
            attempts: 1,
            quarantined: false,
        }
    }

    #[test]
    fn response_json_round_trips() {
        let r = Response::from_outcome(&optimized_outcome());
        let line = r.to_json();
        assert!(line.starts_with("{\"v\":1,\"id\":\"job-1\",\"status\":\"optimized\""));
        let back = Response::parse(&line).expect("parse back");
        assert_eq!(back, r);
        assert_eq!(back.types, Some(2));
        assert_eq!(back.baseline_cycles, Some(1000));
        assert!(back.cached);

        let advisory = JobOutcome {
            status: JobStatus::Advisory {
                reason: Degradation::Budget("out of time".to_string()),
                report: Some("report".to_string()),
            },
            ..optimized_outcome()
        };
        let back = Response::parse(&Response::from_outcome(&advisory).to_json()).expect("parse");
        assert_eq!(back.status, "advisory");
        assert_eq!(back.degradation.as_deref(), Some("budget"));
        assert_eq!(back.report_available, Some(true));

        let shed = Response::shed("x", 125);
        let back = Response::parse(&shed.to_json()).expect("parse shed");
        assert_eq!(back.retry_after_ms, Some(125));
        assert_eq!(back.code.as_deref(), Some("overload"));

        let err = Response::error("", &WireError::new("bad-request", "quoted \"msg\"\n"));
        let back = Response::parse(&err.to_json()).expect("parse error reply");
        assert_eq!(back.message.as_deref(), Some("quoted \"msg\"\n"));
    }

    #[test]
    fn mark_replayed_appends_marker_once() {
        let r = Response::hello().to_json();
        let marked = Response::mark_replayed(&r);
        assert!(marked.ends_with(",\"replayed\":true}"), "{marked}");
        let parsed = Response::parse(&marked).expect("still parseable");
        assert!(parsed.replayed);
        // legacy (non-JSON) summaries get the old suffix
        assert_eq!(
            Response::mark_replayed("a optimized 1"),
            "a optimized 1 [journal]"
        );
    }

    #[test]
    fn session_runs_jobs_and_replays_from_journal() {
        let d = tmpdir();
        std::fs::write(d.join("s.sir"), SIR).expect("write");
        let jpath = d.join(format!("session-{:?}.jsonl", std::thread::current().id()));
        let _ = std::fs::remove_file(&jpath);
        let service = Service::new(crate::ServiceConfig::builder().workers(1).build());
        let journal = Mutex::new(Journal::open(&jpath).expect("journal"));
        let session = Session::new(&service, Some(&journal), d.clone(), false);

        let Reply::Lines(lines) = session.handle_line("s.sir scheme=ispbo") else {
            panic!("expected lines")
        };
        assert_eq!(lines.len(), 1);
        let r = Response::parse(&lines[0]).expect("json reply");
        assert_eq!(r.status, "optimized");
        assert!(!r.replayed);
        assert_eq!(session.served(), 1);

        // Same line again: answered from the journal, not recomputed.
        let Reply::Lines(lines) = session.handle_line("s.sir scheme=ispbo") else {
            panic!("expected lines")
        };
        let r = Response::parse(&lines[0]).expect("json reply");
        assert!(r.replayed, "{lines:?}");
        assert_eq!(session.replayed(), 1);
        assert_eq!(session.served(), 1, "no recompute");

        assert_eq!(session.handle_line("quit"), Reply::Quit);
        assert_eq!(session.handle_line("   "), Reply::Lines(Vec::new()));
        let Reply::Text(metrics) = session.handle_line("metrics") else {
            panic!("expected text")
        };
        assert!(metrics.contains("\"jobs\": 1"));
    }
}
