//! Job-manifest parsing for `slo batch` / `slo serve` and the bench
//! load generator.
//!
//! A manifest is a line-oriented text file; blank lines and `#`
//! comments are skipped. Each remaining line describes one job:
//!
//! ```text
//! <file.sir> [scheme=S] [profile=<file.prof>] [budget-ms=N] [steps=N]
//!            [relax] [dcache] [repeat=N]
//! ```
//!
//! * `scheme` — `spbo | ispbo | ispbo.no | ispbo.w | pbo` (default
//!   `ispbo`; `pbo` without `profile=` collects one on the fly),
//! * `profile` — a feedback file collected with `slo profile`,
//! * `budget-ms` / `steps` — the per-request [`Budget`],
//! * `relax` — relaxed legality (Table 1's "Relax" column),
//! * `dcache` — attribute d-cache samples (profile schemes only),
//! * `repeat` — submit N copies of the job (load generation; copies
//!   share content, so N−1 of them hit the analysis cache).
//!
//! Relative `.sir`/`.prof` paths resolve against the manifest's
//! directory, so checked-in manifests work from any working directory.

use crate::job::{Budget, Job, JobInput, SchemeSpec};
use slo::{PipelineConfig, SloError};
use std::path::Path;

/// Parse the manifest at `path` into jobs.
///
/// # Errors
///
/// [`SloError::Io`] if the manifest or a referenced file cannot be
/// read, [`SloError::Usage`] on a malformed line.
pub fn load_manifest(path: &Path) -> Result<Vec<Job>, SloError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SloError::Io(format!("cannot read manifest `{}`: {e}", path.display())))?;
    let dir = path.parent().unwrap_or(Path::new("."));
    let mut jobs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parsed = parse_job_line(dir, line)
            .map_err(|e| SloError::Usage(format!("{}:{}: {e}", path.display(), lineno + 1)))?;
        jobs.extend(parsed);
    }
    Ok(jobs)
}

/// Parse one manifest line (also the `slo serve` wire format) into the
/// job(s) it describes (`repeat=` expands to several).
///
/// # Errors
///
/// A human-readable message naming the offending token.
pub fn parse_job_line(dir: &Path, line: &str) -> Result<Vec<Job>, String> {
    let mut tokens = line.split_whitespace();
    let file = tokens.next().ok_or("empty job line")?;
    let sir_path = dir.join(file);
    let source = std::fs::read_to_string(&sir_path)
        .map_err(|e| format!("cannot read `{}`: {e}", sir_path.display()))?;

    let mut scheme: Option<SchemeSpec> = None;
    let mut profile: Option<String> = None;
    let mut budget = Budget::default();
    let mut relax = false;
    let mut dcache = false;
    let mut repeat = 1usize;
    for tok in tokens {
        match tok.split_once('=') {
            Some(("scheme", v)) => {
                scheme = Some(SchemeSpec::parse(v).ok_or_else(|| format!("unknown scheme `{v}`"))?);
            }
            Some(("profile", v)) => {
                let p = dir.join(v);
                profile = Some(
                    std::fs::read_to_string(&p)
                        .map_err(|e| format!("cannot read profile `{}`: {e}", p.display()))?,
                );
            }
            Some(("budget-ms", v)) => {
                budget.wall = Some(std::time::Duration::from_millis(
                    v.parse().map_err(|_| format!("bad budget-ms `{v}`"))?,
                ));
            }
            Some(("steps", v)) => {
                budget.steps = v.parse().map_err(|_| format!("bad steps `{v}`"))?;
            }
            Some(("repeat", v)) => {
                repeat = v.parse().map_err(|_| format!("bad repeat `{v}`"))?;
            }
            None if tok == "relax" => relax = true,
            None if tok == "dcache" => dcache = true,
            _ => return Err(format!("unknown attribute `{tok}`")),
        }
    }
    let scheme = match (scheme, profile) {
        (_, Some(text)) => SchemeSpec::PboProfile(text),
        (Some(s), None) => s,
        (None, None) => SchemeSpec::default(),
    };
    let config = PipelineConfig::builder()
        .relax_cast_addr(relax)
        .attribute_dcache(dcache)
        .build();

    let stem = Path::new(file)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(file);
    Ok((0..repeat)
        .map(|k| {
            let id = if repeat == 1 {
                stem.to_string()
            } else {
                format!("{stem}#{k}")
            };
            Job {
                id,
                input: JobInput::Source(source.clone()),
                scheme: scheme.clone(),
                config: config.clone(),
                budget,
                fault: None,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "slo-manifest-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    const SIR: &str = "func main() -> i64 {\nbb0:\n  ret 7\n}\n";

    #[test]
    fn parses_attributes_and_repeat() {
        let d = tmpdir();
        std::fs::write(d.join("a.sir"), SIR).expect("write");
        let mut f = std::fs::File::create(d.join("m.manifest")).expect("create");
        writeln!(
            f,
            "# comment\n\na.sir scheme=spbo budget-ms=250 steps=1000 relax repeat=3"
        )
        .expect("write");
        let jobs = load_manifest(&d.join("m.manifest")).expect("load");
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].id, "a#0");
        assert_eq!(jobs[0].scheme, SchemeSpec::Spbo);
        assert_eq!(jobs[0].budget.steps, 1000);
        assert_eq!(
            jobs[0].budget.wall,
            Some(std::time::Duration::from_millis(250))
        );
        assert!(jobs[0].config.legality.relax_cast_addr);
    }

    #[test]
    fn rejects_unknown_tokens() {
        let d = tmpdir();
        std::fs::write(d.join("b.sir"), SIR).expect("write");
        assert!(parse_job_line(&d, "b.sir wat=1").is_err());
        assert!(parse_job_line(&d, "b.sir scheme=zzz").is_err());
        assert!(parse_job_line(&d, "missing.sir").is_err());
    }
}
