//! Job-manifest parsing for `slo batch` / `slo serve` and the bench
//! load generator.
//!
//! A manifest is a line-oriented text file; blank lines and `#`
//! comments are skipped. Each remaining line describes one job:
//!
//! ```text
//! <file.sir> [scheme=S] [profile=<file.prof>] [budget-ms=N] [steps=N]
//!            [relax] [dcache] [repeat=N]
//! ```
//!
//! * `scheme` — `spbo | ispbo | ispbo.no | ispbo.w | pbo` (default
//!   `ispbo`; `pbo` without `profile=` collects one on the fly),
//! * `profile` — a feedback file collected with `slo profile`,
//! * `budget-ms` / `steps` — the per-request [`Budget`],
//! * `relax` — relaxed legality (Table 1's "Relax" column),
//! * `dcache` — attribute d-cache samples (profile schemes only),
//! * `repeat` — submit N copies of the job (load generation; copies
//!   share content, so N−1 of them hit the analysis cache).
//!
//! Relative `.sir`/`.prof` paths resolve against the manifest's
//! directory, so checked-in manifests work from any working directory.

use crate::job::{Budget, Job, JobInput, SchemeSpec};
use slo::{PipelineConfig, SloError};
use slo_chaos::{FaultPlan, Site};
use std::path::Path;

/// Upper bound on one manifest/serve line in bytes. Longer lines are
/// rejected before tokenization — `slo serve` reads untrusted stdin,
/// and an unbounded line would otherwise buffer without limit.
pub const MAX_LINE_LEN: usize = 4096;

/// Parse the manifest at `path` into jobs.
///
/// # Errors
///
/// [`SloError::Io`] if the manifest or a referenced file cannot be
/// read, [`SloError::Usage`] on a malformed line.
pub fn load_manifest(path: &Path) -> Result<Vec<Job>, SloError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SloError::Io(format!("cannot read manifest `{}`: {e}", path.display())))?;
    let dir = path.parent().unwrap_or(Path::new("."));
    let mut jobs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parsed = parse_job_line(dir, line)
            .map_err(|e| SloError::Usage(format!("{}:{}: {e}", path.display(), lineno + 1)))?;
        jobs.extend(parsed);
    }
    Ok(jobs)
}

/// Parse one manifest line (also the `slo serve` wire format) into the
/// job(s) it describes (`repeat=` expands to several).
///
/// # Errors
///
/// A human-readable message naming the offending token.
pub fn parse_job_line(dir: &Path, line: &str) -> Result<Vec<Job>, String> {
    if line.len() > MAX_LINE_LEN {
        return Err(format!(
            "job line too long ({} bytes, limit {MAX_LINE_LEN})",
            line.len()
        ));
    }
    let mut tokens = line.split_whitespace();
    let file = tokens.next().ok_or("empty job line")?;
    let sir_path = dir.join(file);
    let source = std::fs::read_to_string(&sir_path)
        .map_err(|e| format!("cannot read `{}`: {e}", sir_path.display()))?;

    let mut scheme: Option<SchemeSpec> = None;
    let mut profile: Option<String> = None;
    let mut budget = Budget::default();
    let mut relax = false;
    let mut dcache = false;
    let mut repeat = 1usize;
    let mut seen: Vec<&str> = Vec::new();
    for tok in tokens {
        let attr = tok.split_once('=').map_or(tok, |(k, _)| k);
        if seen.contains(&attr) {
            return Err(format!("duplicate attribute `{attr}`"));
        }
        seen.push(attr);
        match tok.split_once('=') {
            Some(("scheme", v)) => {
                scheme = Some(SchemeSpec::parse(v).ok_or_else(|| format!("unknown scheme `{v}`"))?);
            }
            Some(("profile", v)) => {
                let p = dir.join(v);
                profile = Some(
                    std::fs::read_to_string(&p)
                        .map_err(|e| format!("cannot read profile `{}`: {e}", p.display()))?,
                );
            }
            Some(("budget-ms", v)) => {
                budget.wall = Some(std::time::Duration::from_millis(
                    v.parse().map_err(|_| format!("bad budget-ms `{v}`"))?,
                ));
            }
            Some(("steps", v)) => {
                budget.steps = v.parse().map_err(|_| format!("bad steps `{v}`"))?;
            }
            Some(("repeat", v)) => {
                repeat = v.parse().map_err(|_| format!("bad repeat `{v}`"))?;
            }
            None if tok == "relax" => relax = true,
            None if tok == "dcache" => dcache = true,
            _ => return Err(format!("unknown attribute `{tok}`")),
        }
    }
    let scheme = match (scheme, profile) {
        (_, Some(text)) => SchemeSpec::PboProfile(text),
        (Some(s), None) => s,
        (None, None) => SchemeSpec::default(),
    };
    let config = PipelineConfig::builder()
        .relax_cast_addr(relax)
        .attribute_dcache(dcache)
        .build();

    let stem = Path::new(file)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(file);
    Ok((0..repeat)
        .map(|k| {
            let id = if repeat == 1 {
                stem.to_string()
            } else {
                format!("{stem}#{k}")
            };
            Job {
                id,
                input: JobInput::Source(source.clone()),
                scheme: scheme.clone(),
                config: config.clone(),
                budget,
                fault: None,
            }
        })
        .collect())
}

/// Apply the chaos plan's manifest sites to a wire line before it is
/// parsed (`slo serve`'s ingress fault surface): `ManifestTruncate`
/// cuts the line at a deterministic offset, `ManifestGarble` replaces
/// a deterministic character with `U+FFFD`. Either way the result is
/// still valid UTF-8 — the damage surfaces as a parse error (an
/// `error:` reply), never as a crashed reader loop.
pub fn chaos_line(line: &str, faults: &FaultPlan) -> String {
    let mut line = line.to_string();
    if !line.is_empty() && faults.should_fire(Site::ManifestTruncate) {
        let mut cut = faults.magnitude(Site::ManifestTruncate, line.len() as u64 - 1) as usize;
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        line.truncate(cut);
    }
    if !line.is_empty() && faults.should_fire(Site::ManifestGarble) {
        let mut pos = faults.magnitude(Site::ManifestGarble, line.len() as u64 - 1) as usize;
        while !line.is_char_boundary(pos) {
            pos -= 1;
        }
        let end = pos + line[pos..].chars().next().map_or(1, char::len_utf8);
        line.replace_range(pos..end, "\u{fffd}");
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "slo-manifest-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    const SIR: &str = "func main() -> i64 {\nbb0:\n  ret 7\n}\n";

    #[test]
    fn parses_attributes_and_repeat() {
        let d = tmpdir();
        std::fs::write(d.join("a.sir"), SIR).expect("write");
        let mut f = std::fs::File::create(d.join("m.manifest")).expect("create");
        writeln!(
            f,
            "# comment\n\na.sir scheme=spbo budget-ms=250 steps=1000 relax repeat=3"
        )
        .expect("write");
        let jobs = load_manifest(&d.join("m.manifest")).expect("load");
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].id, "a#0");
        assert_eq!(jobs[0].scheme, SchemeSpec::Spbo);
        assert_eq!(jobs[0].budget.steps, 1000);
        assert_eq!(
            jobs[0].budget.wall,
            Some(std::time::Duration::from_millis(250))
        );
        assert!(jobs[0].config.legality.relax_cast_addr);
    }

    #[test]
    fn rejects_unknown_tokens() {
        let d = tmpdir();
        std::fs::write(d.join("b.sir"), SIR).expect("write");
        assert!(parse_job_line(&d, "b.sir wat=1").is_err());
        assert!(parse_job_line(&d, "b.sir scheme=zzz").is_err());
        assert!(parse_job_line(&d, "missing.sir").is_err());
    }

    #[test]
    fn rejects_overlong_lines_and_duplicate_attributes() {
        let d = tmpdir();
        std::fs::write(d.join("c.sir"), SIR).expect("write");
        let long = format!("c.sir {}", "x".repeat(MAX_LINE_LEN));
        let err = parse_job_line(&d, &long).expect_err("overlong line");
        assert!(err.contains("too long"), "{err}");

        let err = parse_job_line(&d, "c.sir steps=10 steps=20").expect_err("duplicate steps");
        assert!(err.contains("duplicate attribute `steps`"), "{err}");
        let err = parse_job_line(&d, "c.sir relax relax").expect_err("duplicate relax");
        assert!(err.contains("duplicate attribute `relax`"), "{err}");
        // distinct attributes still parse
        assert!(parse_job_line(&d, "c.sir steps=10 relax").is_ok());
    }

    #[test]
    fn chaos_line_mangles_deterministically_and_stays_parseable_shape() {
        use slo_chaos::ChaosConfig;
        let plan = || {
            FaultPlan::with_config(
                9,
                ChaosConfig::never()
                    .rate(Site::ManifestTruncate, 1024)
                    .rate(Site::ManifestGarble, 1024),
            )
        };
        let a = chaos_line("a.sir scheme=ispbo steps=100", &plan());
        let b = chaos_line("a.sir scheme=ispbo steps=100", &plan());
        assert_eq!(a, b, "mangling is a pure function of (seed, ordinal)");
        assert_ne!(a, "a.sir scheme=ispbo steps=100");
        assert!(a.len() <= "a.sir scheme=ispbo steps=100".len() + 2);
        // disabled plan: identity
        let c = chaos_line("a.sir", &FaultPlan::disabled());
        assert_eq!(c, "a.sir");
    }
}
