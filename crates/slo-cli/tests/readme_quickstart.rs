//! Keeps the README's Quickstart honest: extracts the exact textual-IR
//! program and the exact `$ slo …` command lines from `README.md`,
//! executes them against the real binary, and asserts every claim the
//! prose makes (legality, the split, equal exit values, fewer cycles).

use std::path::{Path, PathBuf};
use std::process::Command;

fn readme() -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // repo root
    p.push("README.md");
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read {}: {e}", p.display()))
}

/// The fenced code blocks of the `## Quickstart` section, in order.
fn quickstart_blocks(text: &str) -> Vec<String> {
    let section = text
        .split("## Quickstart")
        .nth(1)
        .expect("README has a Quickstart section");
    let section = section.split("\n## ").next().unwrap();
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in section.lines() {
        if line.starts_with("```") {
            match current.take() {
                Some(b) => blocks.push(b),
                None => current = Some(String::new()),
            }
        } else if let Some(b) = current.as_mut() {
            b.push_str(line);
            b.push('\n');
        }
    }
    blocks
}

fn run_slo(args: &[&str], dir: &Path) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_slo"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn slo");
    assert!(
        out.status.success(),
        "slo {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn field(output: &str, key: &str) -> i64 {
    output
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            (k.trim() == key).then(|| v.trim().parse().unwrap())
        })
        .unwrap_or_else(|| panic!("no `{key}` line in:\n{output}"))
}

#[test]
fn readme_quickstart_snippet_runs_verbatim() {
    let blocks = quickstart_blocks(&readme());
    assert!(
        blocks.len() >= 2,
        "expected the IR block and the console block"
    );
    let ir = &blocks[0];
    assert!(ir.starts_with("record item"), "first block must be the IR");
    let commands: Vec<Vec<String>> = blocks[1]
        .lines()
        .filter_map(|l| l.strip_prefix("$ slo "))
        .map(|l| l.split_whitespace().map(str::to_owned).collect())
        .collect();
    assert_eq!(commands.len(), 5, "README shows five slo commands");

    let dir = std::env::temp_dir().join(format!("slo-readme-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("hotcold.sir"), ir).unwrap();

    // Run the five commands exactly as the README shows them, from the
    // directory holding hotcold.sir.
    let mut outputs = Vec::new();
    for cmd in &commands {
        let args: Vec<&str> = cmd.iter().map(String::as_str).collect();
        outputs.push(run_slo(&args, &dir));
    }

    // …and check the prose's claims against what actually happened.
    let analyze = &outputs[0];
    assert!(analyze.contains("*OK*"), "item must be legal:\n{analyze}");

    let advise = &outputs[1];
    assert!(advise.contains("hot1") && advise.contains("100.0%"));

    let optimize = &outputs[2];
    assert!(
        optimize.contains("Split"),
        "optimize must split item:\n{optimize}"
    );
    let opt_ir = std::fs::read_to_string(dir.join("hotcold.opt.sir")).unwrap();
    assert!(opt_ir.contains("item_cold"), "split record must exist");

    let (orig, split) = (&outputs[3], &outputs[4]);
    assert_eq!(field(orig, "exit"), field(split, "exit"));
    assert!(
        field(split, "cycles") < field(orig, "cycles"),
        "split must be faster in simulated cycles"
    );
    assert!(
        field(split, "instrs") > field(orig, "instrs"),
        "the README claims the win comes despite extra instructions"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The fenced console block of a named README section, as `slo`
/// argument vectors.
fn section_commands(text: &str, heading: &str) -> Vec<Vec<String>> {
    let section = text
        .split(heading)
        .nth(1)
        .unwrap_or_else(|| panic!("README has a {heading} section"));
    let section = section.split("\n## ").next().unwrap();
    section
        .lines()
        .filter_map(|l| l.strip_prefix("$ slo "))
        .map(|l| l.split_whitespace().map(str::to_owned).collect())
        .collect()
}

/// Keeps `## Observability` honest the same way: the traced compile
/// and the trace-check run exactly as printed, and the checker accepts
/// the trace with every pipeline phase span present.
#[test]
fn readme_observability_snippet_runs_verbatim() {
    let text = readme();
    let commands = section_commands(&text, "## Observability");
    assert_eq!(
        commands.len(),
        2,
        "the Observability section shows two slo commands"
    );
    assert!(commands[0].contains(&"--trace-json".to_string()));
    assert_eq!(commands[1][0], "trace-check");

    // The snippet operates on the Quickstart's hotcold.sir.
    let ir = quickstart_blocks(&text)
        .into_iter()
        .next()
        .expect("quickstart IR block");
    let dir = std::env::temp_dir().join(format!("slo-readme-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("hotcold.sir"), ir).unwrap();

    let mut outputs = Vec::new();
    for cmd in &commands {
        let args: Vec<&str> = cmd.iter().map(String::as_str).collect();
        outputs.push(run_slo(&args, &dir));
    }

    assert!(
        std::fs::read_to_string(dir.join("hotcold.opt.sir"))
            .unwrap()
            .contains("item_cold"),
        "traced compile must still split"
    );
    let check = &outputs[1];
    assert!(
        check.contains("OK"),
        "trace-check rejected the trace:\n{check}"
    );
    for phase in [
        "parse",
        "legality",
        "escape",
        "profile",
        "plan",
        "transform",
        "verify",
        "compile",
    ] {
        assert!(check.contains(phase), "missing `{phase}` span:\n{check}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
