//! End-to-end tests of the installed `slo` binary (real process spawn,
//! real files) against the shipped sample program.

use std::path::PathBuf;
use std::process::Command;

fn slo() -> Command {
    Command::new(env!("CARGO_BIN_EXE_slo"))
}

fn sample() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // repo root
    p.push("examples/ir/interleaved.sir");
    assert!(p.exists(), "sample missing: {}", p.display());
    p
}

#[test]
fn analyze_sample_file() {
    let out = slo()
        .args(["analyze"])
        .arg(sample())
        .output()
        .expect("spawn slo");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 record types, 1 legal"));
    assert!(text.contains("item"));
}

#[test]
fn optimize_writes_output_file() {
    let dir = std::env::temp_dir();
    let out_path = dir.join(format!("slo-e2e-{}.sir", std::process::id()));
    let out = slo()
        .args(["optimize"])
        .arg(sample())
        .arg("-o")
        .arg(&out_path)
        .output()
        .expect("spawn slo");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = std::fs::read_to_string(&out_path).expect("output written");
    assert!(written.contains("record item"));
    assert!(written.contains("item_cold"), "split must have happened");
    // the emitted IR is itself runnable
    let run = slo()
        .args(["run"])
        .arg(&out_path)
        .output()
        .expect("spawn slo");
    assert!(run.status.success());
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn bad_input_exits_nonzero() {
    let out = slo()
        .args(["run", "/nonexistent.sir"])
        .output()
        .expect("spawn slo");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn help_exits_zero() {
    let out = slo().args(["help"]).output().expect("spawn slo");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: slo"));
}

/// Exit codes are per error domain: scripts can branch on *why*.
#[test]
fn exit_codes_distinguish_error_domains() {
    // usage error -> 2
    let out = slo().args(["bogus-command"]).output().expect("spawn slo");
    assert_eq!(out.status.code(), Some(2));

    // missing file (I/O) -> 8
    let out = slo()
        .args(["run", "/nonexistent.sir"])
        .output()
        .expect("spawn slo");
    assert_eq!(out.status.code(), Some(8));

    // unparseable IR -> 3
    let dir = std::env::temp_dir();
    let bad = dir.join(format!("slo-e2e-bad-{}.sir", std::process::id()));
    std::fs::write(&bad, "record broken {").expect("write temp");
    let out = slo().args(["run"]).arg(&bad).output().expect("spawn slo");
    assert_eq!(out.status.code(), Some(3));
    let _ = std::fs::remove_file(&bad);
}

fn smoke_manifest() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("examples/batch/smoke.txt");
    assert!(p.exists(), "manifest missing: {}", p.display());
    p
}

#[test]
fn batch_runs_the_smoke_manifest_strictly() {
    let out = slo()
        .args(["batch"])
        .arg(smoke_manifest())
        .args(["--workers", "2", "--strict", "--json"])
        .output()
        .expect("spawn slo");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("optimized"));
    assert!(text.contains("[cached]"), "repeats must hit the cache");
    assert!(text.contains("0 advisory, 0 failed"));
    assert!(text.contains("\"cache_hit_rate\""), "--json metrics block");
}

#[test]
fn batch_strict_fails_on_degraded_jobs() {
    let dir = std::env::temp_dir().join(format!("slo-e2e-batch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("bad.sir"), "record broken {").expect("write");
    std::fs::write(dir.join("jobs.txt"), "bad.sir\n").expect("write");

    let out = slo()
        .args(["batch"])
        .arg(dir.join("jobs.txt"))
        .args(["--strict"])
        .output()
        .expect("spawn slo");
    assert_eq!(
        out.status.code(),
        Some(2),
        "strict batch failure is a usage error"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("failed job"));

    // without --strict the same batch reports and exits zero
    let out = slo()
        .args(["batch"])
        .arg(dir.join("jobs.txt"))
        .output()
        .expect("spawn slo");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("failed"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_processes_jobs_from_stdin() {
    use std::io::Write as _;
    let mut child = slo()
        .args(["serve"])
        .current_dir(smoke_manifest().parent().expect("dir"))
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn slo serve");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(
            b"../ir/hotcold.sir scheme=ispbo\n../ir/hotcold.sir scheme=ispbo\nmetrics\nquit\n",
        )
        .expect("write jobs");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("optimized"));
    assert!(
        text.contains("[cached]"),
        "second identical job hits the cache"
    );
    assert!(
        text.contains("\"cache_hits\": 1"),
        "metrics command answers"
    );
    assert!(text.contains("served 2 job(s)"));
}

/// A malformed manifest line mid-stream must degrade to an `error:`
/// reply without killing the serve loop: jobs after it still run.
#[test]
fn serve_survives_malformed_manifest_lines_mid_stream() {
    use std::io::Write as _;
    let mut child = slo()
        .args(["serve"])
        .current_dir(smoke_manifest().parent().expect("dir"))
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn slo serve");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(
            b"../ir/hotcold.sir scheme=ispbo\n\
              /nonexistent-program.sir scheme=ispbo\n\
              ../ir/hotcold.sir scheme=bogus-scheme\n\
              ../ir/hotcold.sir repeat=zero\n\
              ../ir/hotcold.sir scheme=ispbo\n\
              quit\n",
        )
        .expect("write jobs");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success(), "malformed lines must not kill serve");
    let text = String::from_utf8_lossy(&out.stdout);
    let errors = text.lines().filter(|l| l.starts_with("error: ")).count();
    assert_eq!(errors, 3, "each bad line answers with one error:\n{text}");
    assert!(
        text.contains("served 2 job(s)"),
        "both good jobs (before and after the bad lines) ran:\n{text}"
    );
    assert!(
        text.contains("[cached]"),
        "the second good job still hits the cache:\n{text}"
    );
}

/// `--trace-json` writes a Chrome trace that the binary's own
/// conformance checker accepts, with every pipeline phase present —
/// and tracing does not change the compiled output.
#[test]
fn traced_compile_passes_trace_check_and_output_is_unchanged() {
    // Same output filename in two directories, so the `wrote ...` line
    // (and with it the whole stdout) is comparable byte-for-byte.
    let pid = std::process::id();
    let dir_plain = std::env::temp_dir().join(format!("slo-e2e-plain-{pid}"));
    let dir_traced = std::env::temp_dir().join(format!("slo-e2e-traced-{pid}"));
    std::fs::create_dir_all(&dir_plain).expect("mkdir");
    std::fs::create_dir_all(&dir_traced).expect("mkdir");
    let out_plain = dir_plain.join("out.sir");
    let out_traced = dir_traced.join("out.sir");
    let trace = std::env::temp_dir().join(format!("slo-e2e-trace-{pid}.json"));

    let plain = slo()
        .args(["optimize"])
        .arg(sample())
        .args(["-o", "out.sir"])
        .current_dir(&dir_plain)
        .output()
        .expect("spawn slo");
    assert!(plain.status.success());

    let traced = slo()
        .args(["compile"]) // the optimize alias
        .arg(sample())
        .args(["-o", "out.sir"])
        .arg("--trace-json")
        .arg(&trace)
        .current_dir(&dir_traced)
        .output()
        .expect("spawn slo");
    assert!(
        traced.status.success(),
        "{}",
        String::from_utf8_lossy(&traced.stderr)
    );
    assert_eq!(
        std::fs::read(&out_plain).expect("plain output"),
        std::fs::read(&out_traced).expect("traced output"),
        "tracing changed the compiled program"
    );
    assert_eq!(
        plain.stdout, traced.stdout,
        "tracing changed the human-readable report"
    );

    let check = slo()
        .args(["trace-check"])
        .arg(&trace)
        .output()
        .expect("spawn slo trace-check");
    assert!(
        check.status.success(),
        "{}",
        String::from_utf8_lossy(&check.stderr)
    );
    let text = String::from_utf8_lossy(&check.stdout);
    assert!(text.contains("OK"), "{text}");
    for phase in [
        "parse",
        "legality",
        "escape",
        "profile",
        "plan",
        "transform",
        "verify",
        "compile",
    ] {
        assert!(text.contains(phase), "missing `{phase}` span: {text}");
    }
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_dir_all(&dir_plain);
    let _ = std::fs::remove_dir_all(&dir_traced);
}

/// `trace-check` rejects a file that is not a conformant trace.
#[test]
fn trace_check_rejects_garbage() {
    let dir = std::env::temp_dir();
    let bad = dir.join(format!("slo-e2e-badtrace-{}.json", std::process::id()));
    std::fs::write(&bad, "{\"traceEvents\": 42}").expect("write temp");
    let out = slo()
        .args(["trace-check"])
        .arg(&bad)
        .output()
        .expect("spawn slo");
    assert_eq!(
        out.status.code(),
        Some(3),
        "non-conformant trace is a parse error"
    );
    let _ = std::fs::remove_file(&bad);
}

/// Kill-and-recover: a serve session with `--journal` is SIGKILLed
/// mid-stream after completing two jobs; the restarted session replays
/// them from the journal (answering without recomputation) and only
/// computes the genuinely new jobs.
#[test]
fn serve_journal_recovers_after_kill() {
    use std::io::{BufRead as _, BufReader, Write as _};
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("slo-e2e-journal-{pid}"));
    std::fs::create_dir_all(&dir).expect("mkdir");
    const SIR: &str = "func main() -> i64 {\nbb0:\n  ret 7\n}\n";
    for name in ["a.sir", "b.sir", "c.sir", "d.sir"] {
        std::fs::write(dir.join(name), SIR).expect("write sir");
    }
    let journal = dir.join("serve.jsonl");
    let _ = std::fs::remove_file(&journal);

    // Session 1: two jobs complete (journaled + flushed), then SIGKILL
    // — no EOF, no graceful shutdown.
    let mut child = slo()
        .args(["serve", "--journal"])
        .arg(&journal)
        .current_dir(&dir)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn slo serve");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"a.sir scheme=ispbo\nb.sir scheme=ispbo\n")
        .expect("write jobs");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout"));
    let mut seen = Vec::new();
    for _ in 0..3 {
        // "journal: recovered 0 ..." + one reply per job
        let mut line = String::new();
        reader.read_line(&mut line).expect("read reply");
        seen.push(line);
    }
    assert!(seen[0].contains("recovered 0"), "{seen:?}");
    assert!(
        seen[1].contains('a') && !seen[1].contains("[journal]"),
        "{seen:?}"
    );
    child.kill().expect("SIGKILL serve");
    let _ = child.wait();

    // Session 2: same two lines plus two new ones. The first two must
    // be answered from the journal, the new ones computed.
    let mut child = slo()
        .args(["serve", "--journal"])
        .arg(&journal)
        .current_dir(&dir)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("respawn slo serve");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(
            b"a.sir scheme=ispbo\nb.sir scheme=ispbo\n\
              c.sir scheme=ispbo\nd.sir scheme=ispbo\nquit\n",
        )
        .expect("write jobs");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("journal: recovered 2 completed job(s)"),
        "replay announced:\n{text}"
    );
    let replayed = text.lines().filter(|l| l.ends_with("[journal]")).count();
    assert_eq!(replayed, 2, "a and b answered from the journal:\n{text}");
    assert!(
        text.contains("served 2 job(s) (2 replayed from journal)"),
        "only c and d were computed:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An edited source invalidates its journal entry: the job key covers
/// the program text, so a recovered journal never serves stale results.
#[test]
fn serve_journal_does_not_replay_stale_sources() {
    use std::io::Write as _;
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("slo-e2e-journal-stale-{pid}"));
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(
        dir.join("x.sir"),
        "func main() -> i64 {\nbb0:\n  ret 1\n}\n",
    )
    .expect("write sir");
    let journal = dir.join("serve.jsonl");
    let _ = std::fs::remove_file(&journal);

    let serve_once = |dir: &std::path::Path, journal: &std::path::Path| {
        let mut child = slo()
            .args(["serve", "--journal"])
            .arg(journal)
            .current_dir(dir)
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn slo serve");
        child
            .stdin
            .as_mut()
            .expect("stdin")
            .write_all(b"x.sir scheme=ispbo\nquit\n")
            .expect("write jobs");
        let out = child.wait_with_output().expect("wait");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    let first = serve_once(&dir, &journal);
    assert!(first.contains("served 1 job(s)"), "{first}");

    // Edit the program: the restarted session must recompute.
    std::fs::write(
        dir.join("x.sir"),
        "func main() -> i64 {\nbb0:\n  ret 2\n}\n",
    )
    .expect("rewrite sir");
    let second = serve_once(&dir, &journal);
    assert!(
        !second.contains("[journal]"),
        "edited source must not replay:\n{second}"
    );
    assert!(second.contains("served 1 job(s)"), "{second}");
    let _ = std::fs::remove_dir_all(&dir);
}
